//! The footprint probe driver: one-shot abstract dry runs of each
//! operation on the [`SymMem`] recording backend.
//!
//! A probe builds the object under analysis on a fresh `SymMem`, takes
//! one handle per process, and then drives each process's planned
//! operations **sequentially** — no scheduler, no interleaving — with
//! a probe window around every single operation. The accesses recorded
//! in a window are that operation's footprint for that probe; unions
//! across probes (multiple passes, round-robin across processes so
//! later probes run against evolved state) form the *may* footprint
//! the certificate reasons about.
//!
//! # Concurrent pair schedules
//!
//! On top of the sequential passes, the driver replays every ordered
//! pair of planned cross-process operations under *contention*: op A
//! runs in a budgeted window truncated after `k` shared accesses
//! ([`SymMem::begin_probe_budget`] unwinds with a sentinel), op B then
//! runs a full window against A's partial effects, and A retries if it
//! was truncated. Sweeping `k` from 0 until A completes places B at
//! every pause boundary of A, so helping and handshake paths that only
//! execute under contention show up in the logs. The per-pair evidence
//! — sites either window touched, and sites both touched with at
//! least one writer — feeds the certificate's op-pair matrix; it is
//! *not* folded into the per-register classification.
//!
//! Sequential probing alone cannot witness contention-only code paths.
//! That is why the certificate still classifies every *written* site
//! as potentially racy and why the explorer validates every
//! dynamically observed race against the matrix, fail-closed — see the
//! `certificate` module docs.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};

use sl_api::sim::DriveOps;
use sl_api::SharedObject;
use sl_mem::{SymAccessKind, SymMem, SymProbeAbort, SymSite};
use sl_spec::{ProcId, SeqSpec};

use crate::certificate::{Certificate, OpFootprint, PairObs};

/// Truncation-budget ceiling for pair schedules: if op A still has not
/// completed after this many admitted shared accesses, the sweep stops
/// (the remaining boundaries add no new pause points that matter —
/// every site A touches was already seen).
const MAX_PAIR_BUDGET: usize = 32;

/// Derives a stable operation label from the op's `Debug` rendering:
/// the enum variant name without its arguments (`DWrite(3)` →
/// `DWrite`). Footprints of the same variant probed with different
/// arguments fold into one labelled may-set. Delegates to
/// [`sl_check::op_variant`] — the same splitter the event log uses to
/// intern runtime [`sl_check::OpSym`] tags, so certificate labels and
/// dynamic labels can never drift apart.
pub fn op_label(op: &impl std::fmt::Debug) -> String {
    sl_check::op_variant(&format!("{op:?}")).to_string()
}

#[derive(Default)]
struct OpAccum {
    /// site -> access classes seen there.
    kinds: BTreeMap<usize, BTreeSet<SymAccessKind>>,
    /// site -> distinct written images seen there.
    images: BTreeMap<usize, BTreeSet<String>>,
}

/// Probes an object whose handle drives spec ops via [`DriveOps`].
///
/// `plan` holds per-process op lists; `passes` repeats the whole plan
/// so later probes observe the state earlier ones left behind.
pub fn probe_object<S, O, F>(
    family: &str,
    substrate: &str,
    factory: F,
    plan: &[Vec<S::Op>],
    passes: usize,
) -> Certificate
where
    S: SeqSpec,
    O: SharedObject<SymMem>,
    O::Handle: DriveOps<S>,
    F: Fn(&SymMem) -> O,
{
    probe_object_with::<S, O, F, _>(family, substrate, factory, plan, passes, |h, op| {
        h.drive(op)
    })
}

/// [`probe_object`] with an explicit apply closure, for objects whose
/// operations don't map onto a spec via [`DriveOps`] (e.g. the §5
/// universal construction).
pub fn probe_object_with<S, O, F, A>(
    family: &str,
    substrate: &str,
    factory: F,
    plan: &[Vec<S::Op>],
    passes: usize,
    mut apply: A,
) -> Certificate
where
    S: SeqSpec,
    O: SharedObject<SymMem>,
    F: Fn(&SymMem) -> O,
    A: FnMut(&mut O::Handle, &S::Op) -> S::Resp,
{
    let mem = SymMem::new();
    let obj = factory(&mem);
    let mut handles: Vec<O::Handle> = (0..plan.len()).map(|p| obj.handle(ProcId(p))).collect();
    let mut accum: BTreeMap<(String, usize), OpAccum> = BTreeMap::new();
    let rounds = plan.iter().map(Vec::len).max().unwrap_or(0);
    for _pass in 0..passes.max(1) {
        // Round-robin across processes so every process's later probes
        // run against states other processes' operations produced — a
        // wider may-set than probing each process in isolation.
        for round in 0..rounds {
            for (p, ops) in plan.iter().enumerate() {
                let Some(op) = ops.get(round) else { continue };
                mem.begin_probe();
                let _ = apply(&mut handles[p], op);
                let log = mem.finish_probe();
                let acc = accum.entry((op_label(op), p)).or_default();
                for access in log {
                    acc.kinds
                        .entry(access.site)
                        .or_default()
                        .insert(access.kind);
                    if let Some(img) = access.wrote {
                        acc.images.entry(access.site).or_default().insert(img);
                    }
                }
            }
        }
    }
    let footprints = accum
        .into_iter()
        .map(|((op, proc), acc)| {
            let with_kind = |k: SymAccessKind| -> BTreeSet<usize> {
                acc.kinds
                    .iter()
                    .filter(|(_, ks)| ks.contains(&k))
                    .map(|(&s, _)| s)
                    .collect()
            };
            OpFootprint {
                op,
                proc,
                reads: with_kind(SymAccessKind::Read),
                writes: with_kind(SymAccessKind::Write),
                rmws: with_kind(SymAccessKind::Rmw),
                value_dependent: acc
                    .images
                    .iter()
                    .filter(|(_, imgs)| imgs.len() > 1)
                    .map(|(&s, _)| s)
                    .collect(),
            }
        })
        .collect();

    // Master site index space: the sequential probe's allocation
    // order, extended by anything only a pair schedule allocates.
    // Identity tuples keyed exactly like `RegSym::intern`, so a pair
    // run's fresh `SymMem` maps onto the same indices.
    let mut master = SiteMaster::new(mem.sites());
    let pair_evidence = probe_pairs::<S, O, F, A>(&factory, plan, &mut apply, &mut master);
    Certificate::build(
        family,
        substrate,
        plan.len(),
        master.sites,
        footprints,
        pair_evidence,
    )
}

/// The master site list plus the identity-tuple index used to fold
/// per-run site ids (each pair schedule allocates on a fresh
/// [`SymMem`]) into one shared index space.
struct SiteMaster {
    sites: Vec<SymSite>,
    index: HashMap<(String, &'static str, u32, u32), usize>,
}

impl SiteMaster {
    fn new(seed: Vec<SymSite>) -> SiteMaster {
        let mut m = SiteMaster {
            sites: Vec::new(),
            index: HashMap::new(),
        };
        for site in seed {
            // Duplicated identities keep their first index — the same
            // collapse `RegSym::intern` performs at runtime.
            let id = m.sites.len();
            m.index
                .entry((site.name.clone(), site.file, site.line, site.column))
                .or_insert(id);
            m.sites.push(site);
        }
        m
    }

    fn fold(&mut self, site: &SymSite) -> usize {
        let key = (site.name.clone(), site.file, site.line, site.column);
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = self.sites.len();
        self.sites.push(site.clone());
        self.index.insert(key, id);
        id
    }
}

/// One side of a pair schedule: master site id -> whether this side
/// ever wrote it inside the recorded window(s).
type SideLog = BTreeMap<usize, bool>;

/// Drives the concurrent pair schedules (module docs) and returns the
/// raw evidence keyed by the normalised label pair.
fn probe_pairs<S, O, F, A>(
    factory: &F,
    plan: &[Vec<S::Op>],
    apply: &mut A,
    master: &mut SiteMaster,
) -> BTreeMap<(String, String), PairObs>
where
    S: SeqSpec,
    O: SharedObject<SymMem>,
    F: Fn(&SymMem) -> O,
    A: FnMut(&mut O::Handle, &S::Op) -> S::Resp,
{
    let mut evidence: BTreeMap<(String, String), PairObs> = BTreeMap::new();
    let planned: Vec<(usize, &S::Op)> = plan
        .iter()
        .enumerate()
        .flat_map(|(p, ops)| ops.iter().map(move |op| (p, op)))
        .collect();
    for &(pa, op_a) in &planned {
        for &(pb, op_b) in &planned {
            if pa == pb {
                continue;
            }
            let (la, lb) = (op_label(op_a), op_label(op_b));
            let key = if la <= lb {
                (la.clone(), lb.clone())
            } else {
                (lb.clone(), la.clone())
            };
            // Cold (fresh object) and warm (state evolved by one full
            // unrecorded plan pass) variants of every schedule.
            for warm in [false, true] {
                for budget in 0..=MAX_PAIR_BUDGET {
                    let mem = SymMem::new();
                    let obj = factory(&mem);
                    let mut handles: Vec<O::Handle> =
                        (0..plan.len()).map(|p| obj.handle(ProcId(p))).collect();
                    if warm {
                        let rounds = plan.iter().map(Vec::len).max().unwrap_or(0);
                        for round in 0..rounds {
                            for (p, ops) in plan.iter().enumerate() {
                                if let Some(op) = ops.get(round) {
                                    let _ = apply(&mut handles[p], op);
                                }
                            }
                        }
                    }

                    // A: budgeted window, truncated after `budget`
                    // shared accesses by the sentinel unwind.
                    mem.begin_probe_budget(budget);
                    let outcome = {
                        let (ha, op) = (&mut handles[pa], op_a);
                        catch_unwind(AssertUnwindSafe(|| {
                            let _ = apply(ha, op);
                        }))
                    };
                    let truncated = match outcome {
                        Ok(()) => false,
                        Err(payload) if payload.downcast_ref::<SymProbeAbort>().is_some() => true,
                        // A genuine panic mid-op: keep the partial log
                        // as may-evidence, but stop sweeping budgets —
                        // later boundaries would hit the same panic.
                        Err(_) => false,
                    };
                    let mut side_a = fold_window(&mem.finish_probe(), &mem, master);

                    // B: full window against A's partial effects. A
                    // panic here (B tripping over A's in-flight state)
                    // truncates B's log, which stays valid evidence.
                    mem.begin_probe();
                    {
                        let (hb, op) = (&mut handles[pb], op_b);
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            let _ = apply(hb, op);
                        }));
                    }
                    let side_b = fold_window(&mem.finish_probe(), &mem, master);

                    // A retries to completion after B if it was cut
                    // off — the recovery/helping leg of the schedule.
                    if truncated {
                        mem.begin_probe();
                        let (ha, op) = (&mut handles[pa], op_a);
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            let _ = apply(ha, op);
                        }));
                        for (site, wrote) in fold_window(&mem.finish_probe(), &mem, master) {
                            *side_a.entry(site).or_insert(false) |= wrote;
                        }
                    }

                    let cell = evidence.entry(key.clone()).or_default();
                    cell.observed.extend(side_a.keys().copied());
                    cell.observed.extend(side_b.keys().copied());
                    for (&site, &wa) in &side_a {
                        if let Some(&wb) = side_b.get(&site) {
                            if wa || wb {
                                cell.conflict.insert(site);
                            }
                        }
                    }
                    if !truncated {
                        break;
                    }
                }
            }
        }
    }
    evidence
}

/// Folds one recorded window into (master site -> wrote?) form.
fn fold_window(log: &[sl_mem::SymAccess], mem: &SymMem, master: &mut SiteMaster) -> SideLog {
    let sites = mem.sites();
    let mut side = SideLog::new();
    for access in log {
        let id = master.fold(&sites[access.site]);
        *side.entry(id).or_insert(false) |= access.kind != SymAccessKind::Read;
    }
    side
}
