//! The placement-commutation certificate: per-op footprints, the
//! op × op may-conflict matrix, and the derived register
//! classifications the explorer consumes.
//!
//! A [`Certificate`] is built by the probe driver
//! ([`crate::probe_object`]) from the symbolic access logs of one-shot
//! dry runs. It has two consumers:
//!
//! * [`Certificate::static_conflicts`] produces the runtime form
//!   ([`sl_sim::StaticConflicts`]) consumed by
//!   `PruneMode::StaticDpor` and consulted by `PruneMode::OptimalDpor`
//!   when installed: the *licensed* register set (placement
//!   relaxation may fire) and the *racy* register set (the dynamic
//!   race detector validates every observed race against it,
//!   fail-closed).
//! * [`Certificate::to_json`] serialises the whole analysis — sites,
//!   footprints, conflict matrix, classifications — for the checked-in
//!   baseline artifact and the CI upload.
//!
//! # Classification rules
//!
//! *Licensed* = every site some probed operation touched. Probing is
//! the evidence that the analysis has a footprint for the register;
//! sites never seen inside a probe window are unlicensed, so an
//! incomplete analysis prunes nothing (fail-closed in the pruning
//! direction).
//!
//! *Racy* over-approximates in three layers, because `racy` drives
//! only validation — conservatism here costs no pruning:
//!
//! 1. every site in some op × op cross-process conflict (both ops
//!    touch it, at least one writes);
//! 2. every site any probed op *writes*, even without an observed
//!    cross-process reader — helping paths (Afek-style substrates)
//!    make other processes touch a written register only under
//!    contention, which a sequential probe cannot witness;
//! 3. every unprobed site (unknown classifies as top).
//!
//! The only registers predicted race-free are therefore the ones every
//! probe only ever *read*. If one of those does race dynamically, the
//! explorer aborts with the fail-closed diagnostic — the analysis is
//! never silently wrong.

use std::collections::{BTreeMap, BTreeSet};

use sl_check::RegSym;
use sl_mem::SymSite;
use sl_sim::StaticConflicts;

/// The certificate format version this crate produces and consumes.
/// Version 2 added the op list, the op-pair matrix (`pairs`), and the
/// `race_free_sites` placement set; loading any other version fails
/// closed with a named diagnostic ([`Certificate::from_json`]).
pub const CERT_VERSION: u64 = 2;

/// Raw concurrent-probe evidence for one unordered op pair, in master
/// site indices: every site either op touched in some pair schedule,
/// and the subset where the two windows collided with at least one
/// writer. Produced by the probe driver, folded by
/// [`Certificate::build`].
#[derive(Clone, Debug, Default)]
pub struct PairObs {
    /// Sites either op's window touched across the pair's schedules.
    pub observed: BTreeSet<usize>,
    /// Sites both windows touched with at least one writer.
    pub conflict: BTreeSet<usize>,
}

/// One cell of the certificate's op-pair may-conflict matrix.
/// `a` / `b` index [`Certificate::ops`] with `a <= b`; the matrix is
/// symmetric and stored once per unordered pair.
#[derive(Clone, Debug)]
pub struct PairEntry {
    /// Index of the first op label (`ops[a] <= ops[b]`).
    pub a: usize,
    /// Index of the second op label.
    pub b: usize,
    /// Sites the pair was observed touching: the union of both ops'
    /// sequential footprints and everything the concurrent pair
    /// schedules recorded. Licenses the per-op-pair placement
    /// relaxations on these registers.
    pub observed: BTreeSet<usize>,
    /// The subset the analysis predicts the pair may race on: observed
    /// sites that are racy in the per-register partition, plus every
    /// site with direct concurrent collision evidence. Always a subset
    /// of `observed`.
    pub conflict: BTreeSet<usize>,
}

/// The may-access footprint of one operation as probed from one
/// process. Sets hold indices into [`Certificate::sites`].
#[derive(Clone, Debug)]
pub struct OpFootprint {
    /// Operation label (the `Debug` variant name, e.g. `"DWrite"`).
    pub op: String,
    /// The probing process.
    pub proc: usize,
    /// Sites read at least once.
    pub reads: BTreeSet<usize>,
    /// Sites written at least once.
    pub writes: BTreeSet<usize>,
    /// Sites updated through an RMW at least once.
    pub rmws: BTreeSet<usize>,
    /// Written sites whose stored image varied across probes — the
    /// writes value-aware DPOR's same-value write/write refinement
    /// cannot be expected to commute.
    pub value_dependent: BTreeSet<usize>,
}

impl OpFootprint {
    /// Whether the op may access site `s` at all.
    pub fn touches(&self, s: usize) -> bool {
        self.reads.contains(&s) || self.may_write(s)
    }

    /// Whether the op may change site `s` (plain write or RMW).
    pub fn may_write(&self, s: usize) -> bool {
        self.writes.contains(&s) || self.rmws.contains(&s)
    }

    fn kinds_at(&self, s: usize) -> Vec<&'static str> {
        let mut ks = Vec::new();
        if self.reads.contains(&s) {
            ks.push("read");
        }
        if self.writes.contains(&s) {
            ks.push("write");
        }
        if self.rmws.contains(&s) {
            ks.push("rmw");
        }
        ks
    }
}

/// One cell of the op × op may-conflict matrix: operations `a` and
/// `b`, issued by distinct processes, may collide on `sites` with the
/// recorded access-class pairs.
#[derive(Clone, Debug)]
pub struct ConflictEntry {
    /// First operation label (`a <= b` lexicographically; the matrix
    /// is symmetric and stored once per unordered pair).
    pub a: String,
    /// Second operation label.
    pub b: String,
    /// Sites both operations may touch with at least one writer.
    pub sites: BTreeSet<usize>,
    /// Step-class pairs observed on those sites, `"<a-kind>/<b-kind>"`.
    pub kinds: BTreeSet<String>,
}

/// A full static analysis of one object configuration. See the module
/// docs for the classification rules.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Object family (`"aba"`, `"snapshot"`, `"counter"`, ...).
    pub family: String,
    /// Substrate name (`"double-collect"`, ..., or `"-"` for
    /// substrate-independent families).
    pub substrate: String,
    /// Format version ([`CERT_VERSION`] for freshly built ones).
    pub version: u64,
    /// Process count the probe ran with.
    pub procs: usize,
    /// Every register the object allocated, in allocation order.
    pub sites: Vec<SymSite>,
    /// Per-(op, process) footprints, sorted by (op, process).
    pub footprints: Vec<OpFootprint>,
    /// The op × op cross-process may-conflict matrix.
    pub conflicts: Vec<ConflictEntry>,
    /// Distinct op labels, sorted — the index space of `pairs`.
    pub ops: Vec<String>,
    /// The op-pair matrix, sorted by `(a, b)`, one entry per unordered
    /// pair the concurrent probe drove.
    pub pairs: Vec<PairEntry>,
    /// Sites licensed for invocation-placement relaxation (= probed).
    pub licensed_sites: BTreeSet<usize>,
    /// Sites the matrix predicts a data race on.
    pub racy_sites: BTreeSet<usize>,
    /// Allocated sites never seen inside a probe window.
    pub unprobed_sites: BTreeSet<usize>,
}

impl Certificate {
    /// Folds per-op footprints into the conflict matrix and the
    /// licensed / racy / unprobed classifications, and the concurrent
    /// pair evidence (keyed by normalised `(labelA, labelB)`) into the
    /// op-pair matrix. Concurrent evidence is deliberately *not*
    /// folded into the per-register sets — a pair cell records the
    /// pair it was observed on, nothing more.
    pub(crate) fn build(
        family: &str,
        substrate: &str,
        procs: usize,
        sites: Vec<SymSite>,
        footprints: Vec<OpFootprint>,
        pair_evidence: BTreeMap<(String, String), PairObs>,
    ) -> Certificate {
        let licensed_sites: BTreeSet<usize> = footprints
            .iter()
            .flat_map(|f| {
                f.reads
                    .iter()
                    .chain(f.writes.iter())
                    .chain(f.rmws.iter())
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        let unprobed_sites: BTreeSet<usize> = (0..sites.len())
            .filter(|s| !licensed_sites.contains(s))
            .collect();

        // Rule 1: cross-process overlap with at least one writer.
        let mut cells: BTreeMap<(String, String), (BTreeSet<usize>, BTreeSet<String>)> =
            BTreeMap::new();
        let mut racy_sites: BTreeSet<usize> = BTreeSet::new();
        for fa in &footprints {
            for fb in &footprints {
                if fa.proc == fb.proc {
                    continue;
                }
                for &s in licensed_sites.iter() {
                    if !(fa.touches(s) && fb.touches(s)) {
                        continue;
                    }
                    if !(fa.may_write(s) || fb.may_write(s)) {
                        continue;
                    }
                    racy_sites.insert(s);
                    let (first, second) = if fa.op <= fb.op { (fa, fb) } else { (fb, fa) };
                    let cell = cells
                        .entry((first.op.clone(), second.op.clone()))
                        .or_default();
                    cell.0.insert(s);
                    for ka in first.kinds_at(s) {
                        for kb in second.kinds_at(s) {
                            cell.1.insert(format!("{ka}/{kb}"));
                        }
                    }
                }
            }
        }
        // Rule 2: written sites may be helped/read by other processes
        // only under contention, invisible to a sequential probe.
        for f in &footprints {
            racy_sites.extend(f.writes.iter().copied());
            racy_sites.extend(f.rmws.iter().copied());
        }
        // Rule 3: unknown classifies as top.
        racy_sites.extend(unprobed_sites.iter().copied());

        let conflicts: Vec<ConflictEntry> = cells
            .into_iter()
            .map(|((a, b), (sites, kinds))| ConflictEntry { a, b, sites, kinds })
            .collect();

        // The op index space: every label with a footprint or pair
        // evidence, sorted (so normalised label pairs map to ordered
        // index pairs).
        let ops: Vec<String> = footprints
            .iter()
            .map(|f| f.op.clone())
            .chain(
                pair_evidence
                    .keys()
                    .flat_map(|(a, b)| [a.clone(), b.clone()]),
            )
            .collect::<BTreeSet<String>>()
            .into_iter()
            .collect();
        let op_idx =
            |label: &str| -> usize { ops.binary_search_by(|o| o.as_str().cmp(label)).unwrap() };

        // Fold the pair matrix: a cell exists for every concurrently
        // probed pair. `observed` widens with both ops' sequential
        // footprints (any proc); `conflict` is the racy projection of
        // `observed` plus direct collision evidence — over-approximate
        // in the same spirit as the per-register rules, but scoped to
        // the pair.
        let mut pair_map: BTreeMap<(usize, usize), PairObs> = BTreeMap::new();
        for ((la, lb), obs) in pair_evidence {
            let (ia, ib) = (op_idx(&la), op_idx(&lb));
            let key = (ia.min(ib), ia.max(ib));
            let cell = pair_map.entry(key).or_default();
            cell.observed.extend(obs.observed.iter().copied());
            cell.conflict.extend(obs.conflict.iter().copied());
        }
        for ((ia, ib), cell) in pair_map.iter_mut() {
            for f in &footprints {
                let fi = op_idx(&f.op);
                if fi != *ia && fi != *ib {
                    continue;
                }
                cell.observed.extend(f.reads.iter().copied());
                cell.observed.extend(f.writes.iter().copied());
                cell.observed.extend(f.rmws.iter().copied());
            }
            cell.conflict.extend(
                cell.observed
                    .iter()
                    .filter(|s| racy_sites.contains(s))
                    .copied()
                    .collect::<Vec<_>>(),
            );
        }
        let pairs: Vec<PairEntry> = pair_map
            .into_iter()
            .map(|((a, b), cell)| PairEntry {
                a,
                b,
                observed: cell.observed,
                conflict: cell.conflict,
            })
            .collect();

        Certificate {
            family: family.to_string(),
            substrate: substrate.to_string(),
            version: CERT_VERSION,
            procs,
            sites,
            footprints,
            conflicts,
            ops,
            pairs,
            licensed_sites,
            racy_sites,
            unprobed_sites,
        }
    }

    /// Interns site `s`'s identity as the [`RegSym`] the simulator
    /// would intern for the same allocation — byte-identical because
    /// `Mem::alloc` is `#[track_caller]` under both backends.
    pub fn site_sym(&self, s: usize) -> RegSym {
        let site = &self.sites[s];
        RegSym::intern(&site.name, site.file, site.line, site.column)
    }

    /// The licensed registers, interned.
    pub fn licensed_syms(&self) -> Vec<RegSym> {
        self.licensed_sites
            .iter()
            .map(|&s| self.site_sym(s))
            .collect()
    }

    /// The racy registers, interned.
    pub fn racy_syms(&self) -> Vec<RegSym> {
        self.racy_sites.iter().map(|&s| self.site_sym(s)).collect()
    }

    /// The ops touching site `s`, as `"DWrite@p0 writes"` fragments —
    /// the footprint note shown by fail-closed diagnostics.
    fn site_note(&self, s: usize) -> String {
        if self.unprobed_sites.contains(&s) {
            return "never touched inside a probe window (construction only); \
                    conservatively predicted racy"
                .to_string();
        }
        let mut parts = Vec::new();
        for f in &self.footprints {
            let ks = f.kinds_at(s);
            if !ks.is_empty() {
                parts.push(format!("{}@p{} {}", f.op, f.proc, ks.join("+")));
            }
        }
        parts.join(", ")
    }

    /// The runtime form of this certificate, ready for
    /// `sl_sim::Explorer::statics` / `SimExplore::statics`: the
    /// per-register partition plus one matrix cell per op pair.
    pub fn static_conflicts(&self) -> StaticConflicts {
        let mut st = StaticConflicts::new(self.licensed_syms(), self.racy_syms());
        for s in 0..self.sites.len() {
            st.set_note(self.site_sym(s), self.site_note(s));
        }
        for p in &self.pairs {
            st.add_pair(
                &self.ops[p.a],
                &self.ops[p.b],
                p.observed.iter().map(|&s| self.site_sym(s)),
                p.conflict.iter().map(|&s| self.site_sym(s)),
            );
        }
        st
    }

    /// The conflict sites of the pair `(a, b)` (order-insensitive),
    /// interned; `None` when the matrix has no cell for the pair.
    pub fn pair_conflict_syms(&self, a: &str, b: &str) -> Option<Vec<RegSym>> {
        let ia = self.ops.iter().position(|o| o == a)?;
        let ib = self.ops.iter().position(|o| o == b)?;
        let key = (ia.min(ib), ia.max(ib));
        let cell = self.pairs.iter().find(|p| (p.a, p.b) == key)?;
        Some(cell.conflict.iter().map(|&s| self.site_sym(s)).collect())
    }

    /// Serialises the certificate as a self-describing JSON object.
    /// The format is documented in the crate README and stable enough
    /// to diff across runs (all sets are sorted).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"family\": \"{}\",\n", esc(&self.family)));
        out.push_str(&format!("  \"substrate\": \"{}\",\n", esc(&self.substrate)));
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str(&format!("  \"procs\": {},\n", self.procs));
        out.push_str("  \"sites\": [\n");
        for (s, site) in self.sites.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {s}, \"name\": \"{}\", \"file\": \"{}\", \"line\": {}, \
                 \"column\": {}, \"licensed\": {}, \"racy\": {}, \"probed\": {}}}{}\n",
                esc(&site.name),
                esc(site.file),
                site.line,
                site.column,
                self.licensed_sites.contains(&s),
                self.racy_sites.contains(&s),
                !self.unprobed_sites.contains(&s),
                comma(s, self.sites.len()),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"footprints\": [\n");
        for (i, f) in self.footprints.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"op\": \"{}\", \"proc\": {}, \"reads\": {}, \"writes\": {}, \
                 \"rmws\": {}, \"value_dependent\": {}}}{}\n",
                esc(&f.op),
                f.proc,
                ids(&f.reads),
                ids(&f.writes),
                ids(&f.rmws),
                ids(&f.value_dependent),
                comma(i, self.footprints.len()),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"may_conflict\": [\n");
        for (i, c) in self.conflicts.iter().enumerate() {
            let kinds: Vec<String> = c.kinds.iter().map(|k| format!("\"{}\"", esc(k))).collect();
            out.push_str(&format!(
                "    {{\"a\": \"{}\", \"b\": \"{}\", \"sites\": {}, \"kinds\": [{}]}}{}\n",
                esc(&c.a),
                esc(&c.b),
                ids(&c.sites),
                kinds.join(", "),
                comma(i, self.conflicts.len()),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"ops\": [");
        let ops: Vec<String> = self.ops.iter().map(|o| format!("\"{}\"", esc(o))).collect();
        out.push_str(&ops.join(", "));
        out.push_str("],\n");
        out.push_str("  \"pairs\": [\n");
        for (i, p) in self.pairs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"a\": {}, \"b\": {}, \"observed\": {}, \"conflict\": {}}}{}\n",
                p.a,
                p.b,
                ids(&p.observed),
                ids(&p.conflict),
                comma(i, self.pairs.len()),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"placement\": {\n");
        out.push_str(&format!(
            "    \"licensed_sites\": {},\n",
            ids(&self.licensed_sites)
        ));
        let race_free: BTreeSet<usize> = self
            .licensed_sites
            .difference(&self.racy_sites)
            .copied()
            .collect();
        out.push_str(&format!("    \"race_free_sites\": {},\n", ids(&race_free)));
        out.push_str(
            "    \"guard\": \"a pause carrying at most an invocation marker commutes with a \
             marker-free data step on a licensed register; an op pair with a matrix cell \
             additionally commutes pause/pause and one-marked value-equal data steps on its \
             observed registers; every dynamically observed race is validated against the pair \
             cell or the racy set, fail-closed\"\n",
        );
        out.push_str("  }\n");
        out.push('}');
        out
    }
}

/// Serialises a sorted site-id set as a JSON array.
fn ids(set: &BTreeSet<usize>) -> String {
    let items: Vec<String> = set.iter().map(|s| s.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 == len {
        ""
    } else {
        ","
    }
}

/// Escapes a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// --- Strict fail-closed parsing -------------------------------------

/// A parsed JSON value. Only what the certificate format emits:
/// strings, unsigned integers, booleans, arrays, objects. Anything
/// else (null, floats, negatives) is rejected at parse time — the
/// format never produces them, so their presence means the artifact
/// was not written by this crate.
enum Json {
    Str(String),
    Num(u64),
    Bool(bool),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        format!("certificate JSON invalid at line {line}: {msg}")
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!(
                "expected '{}', found {:?}",
                b as char,
                self.bytes.get(self.pos).map(|&c| c as char)
            )))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => self.string().map(Json::Str),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b't') => self.literal("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| Json::Bool(false)),
            Some(b'0'..=b'9') => self.number().map(Json::Num),
            other => Err(self.err(&format!(
                "expected a value, found {:?} (null/float/negative are rejected)",
                other.map(|&c| c as char)
            ))),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected literal '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.bytes.get(self.pos), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("fractional numbers are not part of the format"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("unparseable integer"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 passes through byte-wise; the
                    // input is a &str so it is valid by construction.
                    let ch_len = match b {
                        0..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + ch_len])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key \"{key}\"")));
            }
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after the top-level value"));
    }
    Ok(v)
}

/// Leaks `file` strings once per distinct path so parsed sites carry
/// the `&'static str` [`SymSite`] requires. A process-wide dedup map
/// bounds the leak by the number of distinct source files.
fn static_file(file: &str) -> &'static str {
    use std::collections::HashMap;
    use std::sync::Mutex;
    static FILES: Mutex<Option<HashMap<String, &'static str>>> = Mutex::new(None);
    let mut map = FILES.lock().unwrap();
    let map = map.get_or_insert_with(HashMap::new);
    if let Some(&s) = map.get(file) {
        return s;
    }
    let leaked: &'static str = Box::leak(file.to_string().into_boxed_str());
    map.insert(file.to_string(), leaked);
    leaked
}

/// Strict-object helper: destructures `obj` against an exact key set.
struct Fields {
    ctx: String,
    fields: Vec<(String, Json)>,
}

impl Fields {
    fn new(v: Json, ctx: &str, keys: &[&str]) -> Result<Fields, String> {
        let Json::Obj(fields) = v else {
            return Err(format!("{ctx}: expected an object"));
        };
        for (k, _) in &fields {
            if !keys.contains(&k.as_str()) {
                return Err(format!(
                    "{ctx}: unknown field \"{k}\" (fail-closed: refusing to guess)"
                ));
            }
        }
        for k in keys {
            if !fields.iter().any(|(f, _)| f == k) {
                return Err(format!("{ctx}: missing required field \"{k}\""));
            }
        }
        Ok(Fields {
            ctx: ctx.to_string(),
            fields,
        })
    }

    fn take(&mut self, key: &str) -> Json {
        let i = self.fields.iter().position(|(k, _)| k == key).unwrap();
        self.fields.remove(i).1
    }

    fn str(&mut self, key: &str) -> Result<String, String> {
        match self.take(key) {
            Json::Str(s) => Ok(s),
            _ => Err(format!("{}: \"{key}\" must be a string", self.ctx)),
        }
    }

    fn num(&mut self, key: &str) -> Result<u64, String> {
        match self.take(key) {
            Json::Num(n) => Ok(n),
            _ => Err(format!(
                "{}: \"{key}\" must be an unsigned integer",
                self.ctx
            )),
        }
    }

    fn bool(&mut self, key: &str) -> Result<bool, String> {
        match self.take(key) {
            Json::Bool(b) => Ok(b),
            _ => Err(format!("{}: \"{key}\" must be a boolean", self.ctx)),
        }
    }

    fn arr(&mut self, key: &str) -> Result<Vec<Json>, String> {
        match self.take(key) {
            Json::Arr(items) => Ok(items),
            _ => Err(format!("{}: \"{key}\" must be an array", self.ctx)),
        }
    }

    fn id_set(&mut self, key: &str, site_count: usize) -> Result<BTreeSet<usize>, String> {
        let items = self.arr(key)?;
        let mut out = BTreeSet::new();
        for item in items {
            let Json::Num(n) = item else {
                return Err(format!("{}: \"{key}\" must hold site ids", self.ctx));
            };
            let id = n as usize;
            if id >= site_count {
                return Err(format!(
                    "{}: \"{key}\" references site {id} but only {site_count} sites exist",
                    self.ctx
                ));
            }
            if !out.insert(id) {
                return Err(format!("{}: duplicate site id {id} in \"{key}\"", self.ctx));
            }
        }
        Ok(out)
    }
}

impl Certificate {
    /// Parses one certificate from its [`Certificate::to_json`] form.
    ///
    /// The parser fails closed: unknown fields, missing fields,
    /// unsupported versions, out-of-range or duplicate site ids,
    /// duplicate site identities, and classification inconsistencies
    /// (e.g. `race_free_sites` disagreeing with `licensed - racy`) are
    /// all rejected with a named diagnostic rather than repaired. A
    /// certificate that parses re-serialises byte-identically.
    pub fn from_json(text: &str) -> Result<Certificate, String> {
        Self::from_value(parse_json(text)?, "certificate")
    }

    fn from_value(v: Json, ctx: &str) -> Result<Certificate, String> {
        let mut top = Fields::new(
            v,
            ctx,
            &[
                "family",
                "substrate",
                "version",
                "procs",
                "sites",
                "footprints",
                "may_conflict",
                "ops",
                "pairs",
                "placement",
            ],
        )?;
        let family = top.str("family")?;
        let substrate = top.str("substrate")?;
        let version = top.num("version")?;
        if version != CERT_VERSION {
            return Err(format!(
                "{ctx} ({family}/{substrate}): version {version} is not the supported \
                 version {CERT_VERSION} — the checked-in certificate is stale; regenerate it \
                 with `exp_sim_throughput --refresh-baseline`"
            ));
        }
        let procs = top.num("procs")? as usize;

        let site_items = top.arr("sites")?;
        let mut sites = Vec::new();
        let mut licensed_flags = BTreeSet::new();
        let mut racy_flags = BTreeSet::new();
        let mut probed_flags = BTreeSet::new();
        let mut identities = BTreeSet::new();
        for (i, item) in site_items.into_iter().enumerate() {
            let sctx = format!("{ctx}: sites[{i}]");
            let mut f = Fields::new(
                item,
                &sctx,
                &[
                    "id", "name", "file", "line", "column", "licensed", "racy", "probed",
                ],
            )?;
            let id = f.num("id")? as usize;
            if id != i {
                return Err(format!("{sctx}: id {id} is not dense (expected {i})"));
            }
            let name = f.str("name")?;
            let file = f.str("file")?;
            let line = f.num("line")? as u32;
            let column = f.num("column")? as u32;
            if !identities.insert((name.clone(), file.clone(), line, column)) {
                return Err(format!(
                    "{sctx}: duplicate site identity {name}@{file}:{line}:{column} — two sites \
                     would intern to the same register symbol"
                ));
            }
            if f.bool("licensed")? {
                licensed_flags.insert(i);
            }
            if f.bool("racy")? {
                racy_flags.insert(i);
            }
            if f.bool("probed")? {
                probed_flags.insert(i);
            }
            sites.push(SymSite {
                name,
                file: static_file(&file),
                line,
                column,
            });
        }
        if licensed_flags != probed_flags {
            return Err(format!(
                "{ctx} ({family}/{substrate}): licensed flags disagree with probed flags — \
                 licensing is defined as probing evidence"
            ));
        }
        let unprobed_sites: BTreeSet<usize> = (0..sites.len())
            .filter(|s| !probed_flags.contains(s))
            .collect();
        for &s in &unprobed_sites {
            if !racy_flags.contains(&s) {
                return Err(format!(
                    "{ctx} ({family}/{substrate}): site {s} is unprobed but not marked racy — \
                     unknown must classify as top"
                ));
            }
        }

        let fp_items = top.arr("footprints")?;
        let mut footprints = Vec::new();
        for (i, item) in fp_items.into_iter().enumerate() {
            let fctx = format!("{ctx}: footprints[{i}]");
            let mut f = Fields::new(
                item,
                &fctx,
                &["op", "proc", "reads", "writes", "rmws", "value_dependent"],
            )?;
            footprints.push(OpFootprint {
                op: f.str("op")?,
                proc: f.num("proc")? as usize,
                reads: f.id_set("reads", sites.len())?,
                writes: f.id_set("writes", sites.len())?,
                rmws: f.id_set("rmws", sites.len())?,
                value_dependent: f.id_set("value_dependent", sites.len())?,
            });
        }

        let conflict_items = top.arr("may_conflict")?;
        let mut conflicts = Vec::new();
        for (i, item) in conflict_items.into_iter().enumerate() {
            let cctx = format!("{ctx}: may_conflict[{i}]");
            let mut f = Fields::new(item, &cctx, &["a", "b", "sites", "kinds"])?;
            let a = f.str("a")?;
            let b = f.str("b")?;
            if a > b {
                return Err(format!("{cctx}: cell ({a}, {b}) is not label-normalised"));
            }
            let cell_sites = f.id_set("sites", sites.len())?;
            let mut kinds = BTreeSet::new();
            for k in f.arr("kinds")? {
                let Json::Str(k) = k else {
                    return Err(format!("{cctx}: \"kinds\" must hold strings"));
                };
                if !kinds.insert(k) {
                    return Err(format!("{cctx}: duplicate kind pair"));
                }
            }
            conflicts.push(ConflictEntry {
                a,
                b,
                sites: cell_sites,
                kinds,
            });
        }

        let mut ops: Vec<String> = Vec::new();
        for (i, item) in top.arr("ops")?.into_iter().enumerate() {
            let Json::Str(o) = item else {
                return Err(format!("{ctx}: ops[{i}] must be a string"));
            };
            if let Some(prev) = ops.last() {
                if *prev >= o {
                    return Err(format!(
                        "{ctx}: ops must be strictly sorted (\"{prev}\" before \"{o}\")"
                    ));
                }
            }
            ops.push(o);
        }

        let pair_items = top.arr("pairs")?;
        let mut pairs: Vec<PairEntry> = Vec::new();
        for (i, item) in pair_items.into_iter().enumerate() {
            let pctx = format!("{ctx}: pairs[{i}]");
            let mut f = Fields::new(item, &pctx, &["a", "b", "observed", "conflict"])?;
            let a = f.num("a")? as usize;
            let b = f.num("b")? as usize;
            if a > b || b >= ops.len() {
                return Err(format!(
                    "{pctx}: op indices ({a}, {b}) must satisfy a <= b < {} ops",
                    ops.len()
                ));
            }
            if let Some(prev) = pairs.last() {
                if (prev.a, prev.b) >= (a, b) {
                    return Err(format!(
                        "{pctx}: pair cells must be strictly sorted by (a, b) — duplicate or \
                         out-of-order cell ({a}, {b})"
                    ));
                }
            }
            let observed = f.id_set("observed", sites.len())?;
            let conflict = f.id_set("conflict", sites.len())?;
            if !conflict.is_subset(&observed) {
                return Err(format!(
                    "{pctx}: conflict sites must be a subset of observed sites"
                ));
            }
            pairs.push(PairEntry {
                a,
                b,
                observed,
                conflict,
            });
        }

        let mut placement = Fields::new(
            top.take("placement"),
            &format!("{ctx}: placement"),
            &["licensed_sites", "race_free_sites", "guard"],
        )?;
        let licensed_sites = placement.id_set("licensed_sites", sites.len())?;
        if licensed_sites != licensed_flags {
            return Err(format!(
                "{ctx} ({family}/{substrate}): placement.licensed_sites disagrees with the \
                 per-site licensed flags"
            ));
        }
        let race_free = placement.id_set("race_free_sites", sites.len())?;
        let expect_race_free: BTreeSet<usize> =
            licensed_sites.difference(&racy_flags).copied().collect();
        if race_free != expect_race_free {
            return Err(format!(
                "{ctx} ({family}/{substrate}): placement.race_free_sites is not \
                 licensed_sites minus racy sites — the partition is inconsistent"
            ));
        }
        placement.str("guard")?;

        Ok(Certificate {
            family,
            substrate,
            version,
            procs,
            sites,
            footprints,
            conflicts,
            ops,
            pairs,
            licensed_sites,
            racy_sites: racy_flags,
            unprobed_sites,
        })
    }
}

/// Parses a whole catalog ([`catalog_json`] output). Fails closed on
/// the first invalid certificate, naming its index.
pub fn catalog_from_json(text: &str) -> Result<Vec<Certificate>, String> {
    let Json::Arr(items) = parse_json(text)? else {
        return Err("certificate catalog: expected a top-level array".to_string());
    };
    items
        .into_iter()
        .enumerate()
        .map(|(i, v)| Certificate::from_value(v, &format!("certificate[{i}]")))
        .collect()
}

/// Serialises a set of certificates as one JSON array (the catalog
/// artifact sim-deep CI uploads).
pub fn catalog_json(certs: &[Certificate]) -> String {
    let mut out = String::from("[\n");
    for (i, c) in certs.iter().enumerate() {
        for line in c.to_json().lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        if i + 1 != certs.len() {
            out.truncate(out.trim_end().len());
            out.push_str(",\n");
        }
    }
    out.push(']');
    out
}
