//! The placement-commutation certificate: per-op footprints, the
//! op × op may-conflict matrix, and the derived register
//! classifications the explorer consumes.
//!
//! A [`Certificate`] is built by the probe driver
//! ([`crate::probe_object`]) from the symbolic access logs of one-shot
//! dry runs. It has two consumers:
//!
//! * [`Certificate::static_conflicts`] produces the runtime form
//!   ([`sl_sim::StaticConflicts`]) consumed by
//!   `PruneMode::StaticDpor` and consulted by `PruneMode::OptimalDpor`
//!   when installed: the *licensed* register set (placement
//!   relaxation may fire) and the *racy* register set (the dynamic
//!   race detector validates every observed race against it,
//!   fail-closed).
//! * [`Certificate::to_json`] serialises the whole analysis — sites,
//!   footprints, conflict matrix, classifications — for the checked-in
//!   baseline artifact and the CI upload.
//!
//! # Classification rules
//!
//! *Licensed* = every site some probed operation touched. Probing is
//! the evidence that the analysis has a footprint for the register;
//! sites never seen inside a probe window are unlicensed, so an
//! incomplete analysis prunes nothing (fail-closed in the pruning
//! direction).
//!
//! *Racy* over-approximates in three layers, because `racy` drives
//! only validation — conservatism here costs no pruning:
//!
//! 1. every site in some op × op cross-process conflict (both ops
//!    touch it, at least one writes);
//! 2. every site any probed op *writes*, even without an observed
//!    cross-process reader — helping paths (Afek-style substrates)
//!    make other processes touch a written register only under
//!    contention, which a sequential probe cannot witness;
//! 3. every unprobed site (unknown classifies as top).
//!
//! The only registers predicted race-free are therefore the ones every
//! probe only ever *read*. If one of those does race dynamically, the
//! explorer aborts with the fail-closed diagnostic — the analysis is
//! never silently wrong.

use std::collections::{BTreeMap, BTreeSet};

use sl_check::RegSym;
use sl_mem::SymSite;
use sl_sim::StaticConflicts;

/// The may-access footprint of one operation as probed from one
/// process. Sets hold indices into [`Certificate::sites`].
#[derive(Clone, Debug)]
pub struct OpFootprint {
    /// Operation label (the `Debug` variant name, e.g. `"DWrite"`).
    pub op: String,
    /// The probing process.
    pub proc: usize,
    /// Sites read at least once.
    pub reads: BTreeSet<usize>,
    /// Sites written at least once.
    pub writes: BTreeSet<usize>,
    /// Sites updated through an RMW at least once.
    pub rmws: BTreeSet<usize>,
    /// Written sites whose stored image varied across probes — the
    /// writes value-aware DPOR's same-value write/write refinement
    /// cannot be expected to commute.
    pub value_dependent: BTreeSet<usize>,
}

impl OpFootprint {
    /// Whether the op may access site `s` at all.
    pub fn touches(&self, s: usize) -> bool {
        self.reads.contains(&s) || self.may_write(s)
    }

    /// Whether the op may change site `s` (plain write or RMW).
    pub fn may_write(&self, s: usize) -> bool {
        self.writes.contains(&s) || self.rmws.contains(&s)
    }

    fn kinds_at(&self, s: usize) -> Vec<&'static str> {
        let mut ks = Vec::new();
        if self.reads.contains(&s) {
            ks.push("read");
        }
        if self.writes.contains(&s) {
            ks.push("write");
        }
        if self.rmws.contains(&s) {
            ks.push("rmw");
        }
        ks
    }
}

/// One cell of the op × op may-conflict matrix: operations `a` and
/// `b`, issued by distinct processes, may collide on `sites` with the
/// recorded access-class pairs.
#[derive(Clone, Debug)]
pub struct ConflictEntry {
    /// First operation label (`a <= b` lexicographically; the matrix
    /// is symmetric and stored once per unordered pair).
    pub a: String,
    /// Second operation label.
    pub b: String,
    /// Sites both operations may touch with at least one writer.
    pub sites: BTreeSet<usize>,
    /// Step-class pairs observed on those sites, `"<a-kind>/<b-kind>"`.
    pub kinds: BTreeSet<String>,
}

/// A full static analysis of one object configuration. See the module
/// docs for the classification rules.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Object family (`"aba"`, `"snapshot"`, `"counter"`, ...).
    pub family: String,
    /// Substrate name (`"double-collect"`, ..., or `"-"` for
    /// substrate-independent families).
    pub substrate: String,
    /// Process count the probe ran with.
    pub procs: usize,
    /// Every register the object allocated, in allocation order.
    pub sites: Vec<SymSite>,
    /// Per-(op, process) footprints, sorted by (op, process).
    pub footprints: Vec<OpFootprint>,
    /// The op × op cross-process may-conflict matrix.
    pub conflicts: Vec<ConflictEntry>,
    /// Sites licensed for invocation-placement relaxation (= probed).
    pub licensed_sites: BTreeSet<usize>,
    /// Sites the matrix predicts a data race on.
    pub racy_sites: BTreeSet<usize>,
    /// Allocated sites never seen inside a probe window.
    pub unprobed_sites: BTreeSet<usize>,
}

impl Certificate {
    /// Folds per-op footprints into the conflict matrix and the
    /// licensed / racy / unprobed classifications.
    pub(crate) fn build(
        family: &str,
        substrate: &str,
        procs: usize,
        sites: Vec<SymSite>,
        footprints: Vec<OpFootprint>,
    ) -> Certificate {
        let licensed_sites: BTreeSet<usize> = footprints
            .iter()
            .flat_map(|f| {
                f.reads
                    .iter()
                    .chain(f.writes.iter())
                    .chain(f.rmws.iter())
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        let unprobed_sites: BTreeSet<usize> = (0..sites.len())
            .filter(|s| !licensed_sites.contains(s))
            .collect();

        // Rule 1: cross-process overlap with at least one writer.
        let mut cells: BTreeMap<(String, String), (BTreeSet<usize>, BTreeSet<String>)> =
            BTreeMap::new();
        let mut racy_sites: BTreeSet<usize> = BTreeSet::new();
        for fa in &footprints {
            for fb in &footprints {
                if fa.proc == fb.proc {
                    continue;
                }
                for &s in licensed_sites.iter() {
                    if !(fa.touches(s) && fb.touches(s)) {
                        continue;
                    }
                    if !(fa.may_write(s) || fb.may_write(s)) {
                        continue;
                    }
                    racy_sites.insert(s);
                    let (first, second) = if fa.op <= fb.op { (fa, fb) } else { (fb, fa) };
                    let cell = cells
                        .entry((first.op.clone(), second.op.clone()))
                        .or_default();
                    cell.0.insert(s);
                    for ka in first.kinds_at(s) {
                        for kb in second.kinds_at(s) {
                            cell.1.insert(format!("{ka}/{kb}"));
                        }
                    }
                }
            }
        }
        // Rule 2: written sites may be helped/read by other processes
        // only under contention, invisible to a sequential probe.
        for f in &footprints {
            racy_sites.extend(f.writes.iter().copied());
            racy_sites.extend(f.rmws.iter().copied());
        }
        // Rule 3: unknown classifies as top.
        racy_sites.extend(unprobed_sites.iter().copied());

        let conflicts = cells
            .into_iter()
            .map(|((a, b), (sites, kinds))| ConflictEntry { a, b, sites, kinds })
            .collect();
        Certificate {
            family: family.to_string(),
            substrate: substrate.to_string(),
            procs,
            sites,
            footprints,
            conflicts,
            licensed_sites,
            racy_sites,
            unprobed_sites,
        }
    }

    /// Interns site `s`'s identity as the [`RegSym`] the simulator
    /// would intern for the same allocation — byte-identical because
    /// `Mem::alloc` is `#[track_caller]` under both backends.
    pub fn site_sym(&self, s: usize) -> RegSym {
        let site = &self.sites[s];
        RegSym::intern(&site.name, site.file, site.line, site.column)
    }

    /// The licensed registers, interned.
    pub fn licensed_syms(&self) -> Vec<RegSym> {
        self.licensed_sites
            .iter()
            .map(|&s| self.site_sym(s))
            .collect()
    }

    /// The racy registers, interned.
    pub fn racy_syms(&self) -> Vec<RegSym> {
        self.racy_sites.iter().map(|&s| self.site_sym(s)).collect()
    }

    /// The ops touching site `s`, as `"DWrite@p0 writes"` fragments —
    /// the footprint note shown by fail-closed diagnostics.
    fn site_note(&self, s: usize) -> String {
        if self.unprobed_sites.contains(&s) {
            return "never touched inside a probe window (construction only); \
                    conservatively predicted racy"
                .to_string();
        }
        let mut parts = Vec::new();
        for f in &self.footprints {
            let ks = f.kinds_at(s);
            if !ks.is_empty() {
                parts.push(format!("{}@p{} {}", f.op, f.proc, ks.join("+")));
            }
        }
        parts.join(", ")
    }

    /// The runtime form of this certificate, ready for
    /// `sl_sim::Explorer::statics` / `SimExplore::statics`.
    pub fn static_conflicts(&self) -> StaticConflicts {
        let mut st = StaticConflicts::new(self.licensed_syms(), self.racy_syms());
        for s in 0..self.sites.len() {
            st.set_note(self.site_sym(s), self.site_note(s));
        }
        st
    }

    /// Serialises the certificate as a self-describing JSON object.
    /// The format is documented in the crate README and stable enough
    /// to diff across runs (all sets are sorted).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"family\": \"{}\",\n", esc(&self.family)));
        out.push_str(&format!("  \"substrate\": \"{}\",\n", esc(&self.substrate)));
        out.push_str(&format!("  \"procs\": {},\n", self.procs));
        out.push_str("  \"sites\": [\n");
        for (s, site) in self.sites.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {s}, \"name\": \"{}\", \"file\": \"{}\", \"line\": {}, \
                 \"column\": {}, \"licensed\": {}, \"racy\": {}, \"probed\": {}}}{}\n",
                esc(&site.name),
                esc(site.file),
                site.line,
                site.column,
                self.licensed_sites.contains(&s),
                self.racy_sites.contains(&s),
                !self.unprobed_sites.contains(&s),
                comma(s, self.sites.len()),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"footprints\": [\n");
        for (i, f) in self.footprints.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"op\": \"{}\", \"proc\": {}, \"reads\": {}, \"writes\": {}, \
                 \"rmws\": {}, \"value_dependent\": {}}}{}\n",
                esc(&f.op),
                f.proc,
                ids(&f.reads),
                ids(&f.writes),
                ids(&f.rmws),
                ids(&f.value_dependent),
                comma(i, self.footprints.len()),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"may_conflict\": [\n");
        for (i, c) in self.conflicts.iter().enumerate() {
            let kinds: Vec<String> = c.kinds.iter().map(|k| format!("\"{}\"", esc(k))).collect();
            out.push_str(&format!(
                "    {{\"a\": \"{}\", \"b\": \"{}\", \"sites\": {}, \"kinds\": [{}]}}{}\n",
                esc(&c.a),
                esc(&c.b),
                ids(&c.sites),
                kinds.join(", "),
                comma(i, self.conflicts.len()),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"placement\": {\n");
        out.push_str(&format!(
            "    \"licensed_sites\": {},\n",
            ids(&self.licensed_sites)
        ));
        out.push_str(
            "    \"guard\": \"a pause carrying at most an invocation marker commutes with a \
             marker-free data step on a licensed register; every dynamically observed race is \
             validated against the racy set, fail-closed\"\n",
        );
        out.push_str("  }\n");
        out.push('}');
        out
    }
}

/// Serialises a sorted site-id set as a JSON array.
fn ids(set: &BTreeSet<usize>) -> String {
    let items: Vec<String> = set.iter().map(|s| s.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 == len {
        ""
    } else {
        ","
    }
}

/// Escapes a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialises a set of certificates as one JSON array (the catalog
/// artifact sim-deep CI uploads).
pub fn catalog_json(certs: &[Certificate]) -> String {
    let mut out = String::from("[\n");
    for (i, c) in certs.iter().enumerate() {
        for line in c.to_json().lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        if i + 1 != certs.len() {
            out.truncate(out.trim_end().len());
            out.push_str(",\n");
        }
    }
    out.push(']');
    out
}
