//! The matrix over-approximation suite (fail-closed validation,
//! exercised positively and negatively).
//!
//! For **every family × substrate** the builder exposes, exploring a
//! contended workload under `PruneMode::StaticDpor` runs the dynamic
//! race detector with the probed certificate installed: every observed
//! race is checked against the static may-conflict matrix, and an
//! unpredicted race panics. Each test below completing therefore *is*
//! the proof that the static matrix ⊇ the dynamically observed races
//! for that configuration — plus a verdict cross-check against
//! `ValueDpor`, and one test driving the fail-closed abort on purpose
//! with a doctored certificate.

use std::sync::Arc;

use sl_analyze::Certificate;
use sl_api::sim::{explore_object, explore_object_with, DriveOps, SimExplore};
use sl_api::{ObjectBuilder, SharedObject, UniversalOps};
use sl_sim::{PruneMode, SimMem, StaticConflicts};
use sl_spec::{
    AbaOp, AbaSpec, CounterOp, CounterSpec, MaxRegisterOp, MaxRegisterSpec, SeqSpec, SnapshotOp,
    SnapshotSpec,
};
use sl_universal::types::CounterType;

fn cfg(mode: PruneMode, statics: Option<Arc<StaticConflicts>>, budget: usize) -> SimExplore {
    SimExplore {
        mode,
        workers: 1,
        statics,
        max_runs: budget,
        ..SimExplore::default()
    }
}

/// Run budget for configurations whose full schedule space exhausts
/// quickly; such explorations also get the ValueDpor verdict
/// cross-check.
const FULL: usize = 200_000;
/// Run budget for the heavyweight wait-free substrates (helping makes
/// their 2-process spaces enormous). A bounded sample still arms the
/// fail-closed validator on every explored schedule, which is what
/// this suite is about; exhaustive verdicts for representative combos
/// live in the differential suite.
const SAMPLED: usize = 1_500;

/// Explores under StaticDpor — the fail-closed validator checks every
/// dynamically observed race against `cert`'s matrix, so completing
/// without a panic is the over-approximation proof — and cross-checks
/// the verdict against ValueDpor when the space was exhausted.
fn assert_overapproximates<S, O, F>(
    label: &str,
    spec: &S,
    factory: F,
    workload: &[Vec<S::Op>],
    cert: &Certificate,
    budget: usize,
) where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
    O::Handle: DriveOps<S>,
    F: Fn(&SimMem) -> O + Send + Sync + Copy,
{
    let st = Arc::new(cert.static_conflicts());
    st.enable_race_recording();
    let pruned = explore_object::<S, O, F>(
        factory,
        workload,
        &cfg(PruneMode::StaticDpor, Some(Arc::clone(&st)), budget),
    );
    assert!(pruned.outcome.runs > 0, "{label}: nothing explored");
    assert_pair_superset(label, cert, &st);
    if !pruned.outcome.exhausted {
        return;
    }
    let baseline =
        explore_object::<S, O, F>(factory, workload, &cfg(PruneMode::ValueDpor, None, budget));
    if baseline.outcome.exhausted {
        assert_eq!(
            baseline.check_strong(spec).holds,
            pruned.check_strong(spec).holds,
            "{label}: verdict diverged"
        );
    }
}

/// The op-pair leg of the over-approximation proof: every race the
/// dynamic detector attributed to a pair of *tagged* ops must sit in
/// that pair's conflict cell of the certificate matrix. Races with an
/// untagged side (steps before the first invocation marker) are
/// covered by the per-register leg alone.
fn assert_pair_superset(label: &str, cert: &Certificate, st: &StaticConflicts) {
    let mut checked = 0;
    for (oa, ob, reg) in st.recorded_races() {
        if oa.is_none() || ob.is_none() {
            continue;
        }
        let conflict = cert
            .pair_conflict_syms(oa.name(), ob.name())
            .unwrap_or_else(|| {
                panic!(
                    "{label}: dynamic race between {oa:?}/{ob:?} but the pair has no matrix cell"
                )
            });
        assert!(
            conflict.contains(&reg),
            "{label}: dynamic {oa:?}/{ob:?} race on {reg:?} missing from the pair's conflict cell"
        );
        checked += 1;
    }
    let _ = checked;
}

const W: u64 = 1;

fn aba_workload() -> Vec<Vec<AbaOp<u64>>> {
    vec![vec![AbaOp::DWrite(W)], vec![AbaOp::DRead]]
}

fn snapshot_workload() -> Vec<Vec<SnapshotOp<u64>>> {
    vec![vec![SnapshotOp::Update(W)], vec![SnapshotOp::Scan]]
}

fn counter_workload() -> Vec<Vec<CounterOp>> {
    vec![vec![CounterOp::Inc], vec![CounterOp::Read]]
}

fn max_workload() -> Vec<Vec<MaxRegisterOp>> {
    vec![
        vec![MaxRegisterOp::MaxWrite(W)],
        vec![MaxRegisterOp::MaxRead],
    ]
}

fn cert(certs: &[Certificate], family: &str, substrate: &str) -> Certificate {
    certs
        .iter()
        .find(|c| c.family == family && c.substrate == substrate)
        .unwrap_or_else(|| panic!("no certificate for {family}/{substrate}"))
        .clone()
}

#[test]
fn standalone_families_overapproximate() {
    let certs = sl_analyze::catalog(2);
    assert_overapproximates(
        "aba",
        &AbaSpec::new(2),
        |mem: &SimMem| ObjectBuilder::on(mem).processes(2).aba_register::<u64>(),
        &aba_workload(),
        &cert(&certs, "aba", "-"),
        FULL,
    );
    assert_overapproximates(
        "lin-aba",
        &AbaSpec::new(2),
        |mem: &SimMem| {
            ObjectBuilder::on(mem)
                .processes(2)
                .lin_aba_register::<u64>()
        },
        &aba_workload(),
        &cert(&certs, "lin-aba", "-"),
        FULL,
    );
    assert_overapproximates(
        "atomic-aba",
        &AbaSpec::new(2),
        |mem: &SimMem| {
            ObjectBuilder::on(mem)
                .processes(2)
                .atomic_aba_register::<u64>()
        },
        &aba_workload(),
        &cert(&certs, "atomic-aba", "-"),
        FULL,
    );
    assert_overapproximates(
        "atomic-snapshot",
        &SnapshotSpec::new(2),
        |mem: &SimMem| ObjectBuilder::on(mem).processes(2).atomic_snapshot::<u64>(),
        &snapshot_workload(),
        &cert(&certs, "atomic-snapshot", "-"),
        FULL,
    );
    assert_overapproximates(
        "trie-max-register",
        &MaxRegisterSpec,
        |mem: &SimMem| {
            ObjectBuilder::on(mem)
                .processes(2)
                .trie_max_register(sl_analyze::TRIE_CAPACITY)
        },
        &max_workload(),
        &cert(&certs, "trie-max-register", "-"),
        FULL,
    );
}

macro_rules! substrate_overapprox_test {
    ($test:ident, $sel:ident, $name:expr) => {
        #[test]
        fn $test() {
            let certs = sl_analyze::catalog(2);
            assert_overapproximates(
                concat!($name, " snapshot"),
                &SnapshotSpec::new(2),
                |mem: &SimMem| ObjectBuilder::on(mem).processes(2).$sel().snapshot::<u64>(),
                &snapshot_workload(),
                &cert(&certs, "snapshot", $name),
                SAMPLED,
            );
            assert_overapproximates(
                concat!($name, " counter"),
                &CounterSpec,
                |mem: &SimMem| ObjectBuilder::on(mem).processes(2).$sel().counter(),
                &counter_workload(),
                &cert(&certs, "counter", $name),
                SAMPLED,
            );
            assert_overapproximates(
                concat!($name, " max-register"),
                &MaxRegisterSpec,
                |mem: &SimMem| ObjectBuilder::on(mem).processes(2).$sel().max_register(),
                &max_workload(),
                &cert(&certs, "max-register", $name),
                SAMPLED,
            );
        }
    };
}

/// §5 universal construction (explicit apply closure): a bounded
/// StaticDpor sample with the validator armed.
macro_rules! universal_overapprox_test {
    ($test:ident, $sel:ident, $name:expr) => {
        #[test]
        fn $test() {
            let certs = sl_analyze::catalog(2);
            let uni_cert = cert(&certs, "universal-counter", $name);
            let st = Arc::new(uni_cert.static_conflicts());
            st.enable_race_recording();
            let pruned = explore_object_with::<CounterSpec, _, _, _>(
                |mem: &SimMem| {
                    ObjectBuilder::on(mem)
                        .processes(2)
                        .$sel()
                        .universal(CounterType)
                },
                &counter_workload(),
                |h, op| UniversalOps::execute(h, op.clone()),
                &cfg(PruneMode::StaticDpor, Some(Arc::clone(&st)), SAMPLED),
            );
            assert!(pruned.outcome.runs > 0);
            assert_pair_superset(concat!($name, " universal-counter"), &uni_cert, &st);
            if pruned.outcome.exhausted {
                assert!(pruned.check_strong(&CounterSpec).holds);
            }
        }
    };
}

universal_overapprox_test!(
    double_collect_universal_overapproximates,
    double_collect,
    "double-collect"
);
universal_overapprox_test!(afek_universal_overapproximates, afek, "afek");
universal_overapprox_test!(
    bounded_handshake_universal_overapproximates,
    bounded_handshake,
    "bounded-handshake"
);
universal_overapprox_test!(
    atomic_r_universal_overapproximates,
    atomic_r,
    "double-collect+atomic-R"
);
// The versioned pairing below used to die inside `sl_universal`'s
// linearization graph ("must be acyclic"): `UnaryMaxRegister` cached
// register handles it allocated *during* a run across replay-world
// resets, so a replayed schedule read views a previous schedule wrote
// and cross-execution `preceding` edges cycled the precedence graph.
// Fixed by `Mem::epoch`-based cache invalidation; the pairing now runs
// as a first-class member of the matrix.
universal_overapprox_test!(versioned_universal_overapproximates, versioned, "versioned");

substrate_overapprox_test!(
    double_collect_overapproximates,
    double_collect,
    "double-collect"
);
substrate_overapprox_test!(afek_overapproximates, afek, "afek");
substrate_overapprox_test!(
    bounded_handshake_overapproximates,
    bounded_handshake,
    "bounded-handshake"
);
substrate_overapprox_test!(versioned_overapproximates, versioned, "versioned");
substrate_overapprox_test!(
    atomic_r_overapproximates,
    atomic_r,
    "double-collect+atomic-R"
);

#[test]
fn lin_snapshots_overapproximate() {
    let certs = sl_analyze::catalog(2);
    assert_overapproximates(
        "double-collect lin-snapshot",
        &SnapshotSpec::new(2),
        |mem: &SimMem| {
            ObjectBuilder::on(mem)
                .processes(2)
                .double_collect()
                .lin_snapshot::<u64>()
        },
        &snapshot_workload(),
        &cert(&certs, "lin-snapshot", "double-collect"),
        SAMPLED,
    );
    assert_overapproximates(
        "afek lin-snapshot",
        &SnapshotSpec::new(2),
        |mem: &SimMem| {
            ObjectBuilder::on(mem)
                .processes(2)
                .afek()
                .lin_snapshot::<u64>()
        },
        &snapshot_workload(),
        &cert(&certs, "lin-snapshot", "afek"),
        SAMPLED,
    );
    assert_overapproximates(
        "bounded-handshake lin-snapshot",
        &SnapshotSpec::new(2),
        |mem: &SimMem| {
            ObjectBuilder::on(mem)
                .processes(2)
                .bounded_handshake()
                .lin_snapshot::<u64>()
        },
        &snapshot_workload(),
        &cert(&certs, "lin-snapshot", "bounded-handshake"),
        SAMPLED,
    );
}

/// The negative direction: a certificate whose racy set was emptied
/// must make the very first observed race abort the subtree with the
/// fail-closed diagnostic — proving the validator is actually armed on
/// this path. The explorer's panic quarantine converts the abort into
/// a *partial* (never silently passing) outcome carrying the message.
#[test]
fn doctored_certificate_fails_closed() {
    let cert = sl_analyze::aba_certificate(2);
    let st = Arc::new(StaticConflicts::new(cert.licensed_syms(), []));
    let explored = explore_object::<AbaSpec<u64>, _, _>(
        |mem: &SimMem| ObjectBuilder::on(mem).processes(2).aba_register::<u64>(),
        &aba_workload(),
        &cfg(PruneMode::StaticDpor, Some(st), FULL),
    );
    let out = &explored.outcome;
    assert!(
        out.partial && !out.exhausted,
        "an unpredicted race must abort"
    );
    assert!(out.quarantined > 0, "the aborting subtree is quarantined");
    let msg = &out.poisoned[0].message;
    assert!(
        msg.contains("not predicted"),
        "unexpected panic message: {msg}"
    );
}

/// The pair-cell variant of the negative direction: with the pair
/// matrix installed but every cell's conflict set emptied (and no
/// per-register fallback), the first attributed race must abort with a
/// diagnostic naming the licensing op pair — proving races really are
/// validated against the pair cell first.
#[test]
fn doctored_pair_cell_fails_closed() {
    let cert = sl_analyze::aba_certificate(2);
    let mut st = StaticConflicts::new(cert.licensed_syms(), []);
    for p in &cert.pairs {
        st.add_pair(
            &cert.ops[p.a],
            &cert.ops[p.b],
            p.observed.iter().map(|&s| cert.site_sym(s)),
            [], // conflict doctored away
        );
    }
    let st = Arc::new(st);
    let explored = explore_object::<AbaSpec<u64>, _, _>(
        |mem: &SimMem| ObjectBuilder::on(mem).processes(2).aba_register::<u64>(),
        &aba_workload(),
        &cfg(PruneMode::StaticDpor, Some(st), FULL),
    );
    let out = &explored.outcome;
    assert!(
        out.partial && !out.exhausted,
        "an unpredicted race must abort"
    );
    assert!(out.quarantined > 0, "the aborting subtree is quarantined");
    let msg = &out.poisoned[0].message;
    assert!(
        msg.contains("not predicted") && msg.contains("op pair"),
        "unexpected panic message: {msg}"
    );
}

/// Telemetry sanity: the aba exploration both relaxes placements and
/// validates observed races against the matrix.
#[test]
fn telemetry_counts_relaxations_and_validations() {
    let cert = sl_analyze::aba_certificate(2);
    let st = Arc::new(cert.static_conflicts());
    let explored = explore_object::<AbaSpec<u64>, _, _>(
        |mem: &SimMem| ObjectBuilder::on(mem).processes(2).aba_register::<u64>(),
        &[vec![AbaOp::DWrite(1), AbaOp::DWrite(2)], vec![AbaOp::DRead]],
        &cfg(PruneMode::StaticDpor, Some(Arc::clone(&st)), FULL),
    );
    assert!(explored.outcome.exhausted);
    let t = st.telemetry();
    assert!(t.relaxed > 0, "{t:?}");
    assert!(t.validated > 0, "{t:?}");
}
