//! The certificate-pruned exploration fuzz leg: random workloads
//! explored exhaustively under `ValueDpor` and under `StaticDpor` /
//! `OptimalDpor` with the probed certificate installed must agree on
//! the strong-linearizability verdict; any divergence is shrunk to a
//! locally minimal workload and reported. The fail-closed race
//! validator is armed the whole time, so this leg also stress-tests
//! the op-pair attribution on workload shapes the canned baselines
//! never run.
//!
//! Budgets are tier-1-sized; the `sim-deep` CI job rescales via the
//! same `SL_FUZZ_*` variables as the schedule fuzzer.

use std::sync::Arc;

use sl_api::fuzz::{fuzz_pruned_exploration, FuzzConfig};
use sl_api::ObjectBuilder;
use sl_mem::SmallRng;
use sl_sim::SimMem;
use sl_spec::types::{AbaSpec, MaxRegisterSpec, SnapshotSpec};
use sl_spec::{AbaOp, MaxRegisterOp, ProcId, SnapshotOp};

fn cfg() -> FuzzConfig {
    let mut cfg = FuzzConfig::from_env();
    // Tier-1 budget unless the environment rescales: each workload
    // costs three exhaustive explorations.
    if std::env::var("SL_FUZZ_WORKLOADS").is_err() {
        cfg.workloads = 4;
    }
    cfg
}

fn gen_aba_op(rng: &mut SmallRng, p: ProcId) -> AbaOp<u64> {
    if rng.gen_bool(0.5) {
        AbaOp::DWrite(p.index() as u64 * 10 + rng.gen_range(4) as u64)
    } else {
        AbaOp::DRead
    }
}

fn gen_snapshot_op(rng: &mut SmallRng, p: ProcId) -> SnapshotOp<u64> {
    if rng.gen_bool(0.5) {
        SnapshotOp::Update(p.index() as u64 * 100 + rng.gen_range(10) as u64)
    } else {
        SnapshotOp::Scan
    }
}

fn gen_max_op(rng: &mut SmallRng, _p: ProcId) -> MaxRegisterOp {
    if rng.gen_bool(0.5) {
        MaxRegisterOp::MaxWrite(rng.gen_range(4) as u64)
    } else {
        MaxRegisterOp::MaxRead
    }
}

#[test]
fn pruned_aba_verdicts_agree() {
    let cfg = cfg();
    let n = cfg.procs;
    let st = Arc::new(sl_analyze::aba_certificate(n).static_conflicts());
    fuzz_pruned_exploration(
        "aba/pruned",
        |mem: &SimMem| ObjectBuilder::on(mem).processes(n).aba_register::<u64>(),
        gen_aba_op,
        &AbaSpec::<u64>::new(n),
        st,
        &cfg,
    )
    .assert_clean();
}

#[test]
fn pruned_lin_aba_verdicts_agree() {
    let cfg = cfg();
    let n = cfg.procs;
    let st = Arc::new(sl_analyze::lin_aba_certificate(n).static_conflicts());
    fuzz_pruned_exploration(
        "lin-aba/pruned",
        |mem: &SimMem| {
            ObjectBuilder::on(mem)
                .processes(n)
                .lin_aba_register::<u64>()
        },
        gen_aba_op,
        &AbaSpec::<u64>::new(n),
        st,
        &cfg,
    )
    .assert_clean();
}

#[test]
fn pruned_atomic_aba_verdicts_agree() {
    let cfg = cfg();
    let n = cfg.procs;
    let st = Arc::new(sl_analyze::atomic_aba_certificate(n).static_conflicts());
    fuzz_pruned_exploration(
        "atomic-aba/pruned",
        |mem: &SimMem| {
            ObjectBuilder::on(mem)
                .processes(n)
                .atomic_aba_register::<u64>()
        },
        gen_aba_op,
        &AbaSpec::<u64>::new(n),
        st,
        &cfg,
    )
    .assert_clean();
}

#[test]
fn pruned_atomic_snapshot_verdicts_agree() {
    let cfg = cfg();
    let n = cfg.procs;
    let st = Arc::new(sl_analyze::atomic_snapshot_certificate(n).static_conflicts());
    fuzz_pruned_exploration(
        "atomic-snapshot/pruned",
        |mem: &SimMem| ObjectBuilder::on(mem).processes(n).atomic_snapshot::<u64>(),
        gen_snapshot_op,
        &SnapshotSpec::<u64>::new(n),
        st,
        &cfg,
    )
    .assert_clean();
}

#[test]
fn pruned_trie_max_register_verdicts_agree() {
    let cfg = cfg();
    let n = cfg.procs;
    let st = Arc::new(sl_analyze::trie_max_register_certificate(n).static_conflicts());
    fuzz_pruned_exploration(
        "trie-max-register/pruned",
        |mem: &SimMem| {
            ObjectBuilder::on(mem)
                .processes(n)
                .trie_max_register(sl_analyze::TRIE_CAPACITY)
        },
        gen_max_op,
        &MaxRegisterSpec,
        st,
        &cfg,
    )
    .assert_clean();
}
