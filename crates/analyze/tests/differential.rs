//! The pruned-mode differential suite: for representative family ×
//! substrate workloads, exploring under `PruneMode::StaticDpor` with a
//! probed certificate must
//!
//! 1. reach the **same strong-linearizability verdict and conflict
//!    depth** as `PruneMode::ValueDpor`,
//! 2. be **bit-identical across worker counts 1/2/4/8** (the
//!    certificate is consulted through an immutable shared reference;
//!    pruning decisions are schedule-local), and
//! 3. replay **no more schedules** than value-aware DPOR — strictly
//!    fewer wherever invocation-placement branching exists to prune.
//!
//! `PruneMode::OptimalDpor` rides the same skeleton with the same
//! obligations 1–2, plus the wakeup-sequence guarantees: **zero cut
//! replays** (no sleep-set-blocked run is ever initiated) and no more
//! *total* replays (runs + cuts) than value-aware DPOR. A randomized
//! sweep at the bottom cross-checks every prune mode, including the
//! unpruned reference, on generated workloads.

use std::sync::Arc;

use sl_api::sim::{explore_object, SimExplore};
use sl_api::ObjectBuilder;
use sl_sim::{ExploreOutcome, PruneMode, StaticConflicts};
use sl_spec::{AbaOp, AbaSpec, CounterOp, CounterSpec, SeqSpec, SnapshotOp, SnapshotSpec};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn cfg(mode: PruneMode, workers: usize, statics: Option<Arc<StaticConflicts>>) -> SimExplore {
    SimExplore {
        mode,
        workers,
        statics,
        max_runs: 2_000_000,
        ..SimExplore::default()
    }
}

/// Explores `workload`, asserts exhaustion, and returns the outcome
/// plus the strong-linearizability report.
fn run<S, O, F>(
    spec: &S,
    factory: F,
    workload: &[Vec<S::Op>],
    c: &SimExplore,
) -> (ExploreOutcome, sl_check::StrongLinReport)
where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: sl_api::SharedObject<sl_sim::SimMem>,
    O::Handle: sl_api::sim::DriveOps<S>,
    F: Fn(&sl_sim::SimMem) -> O + Send + Sync,
{
    let explored = explore_object::<S, O, F>(factory, workload, c);
    assert!(
        explored.outcome.exhausted,
        "budget too small: {:?}",
        explored.outcome
    );
    let report = explored.check_strong(spec);
    (explored.outcome, report)
}

/// The shared differential skeleton: ValueDpor baseline vs StaticDpor
/// with `cert`'s runtime form, across all worker counts.
fn differential<S, O, F>(
    label: &str,
    spec: &S,
    factory: F,
    workload: &[Vec<S::Op>],
    statics: StaticConflicts,
    expect_strictly_fewer: bool,
) where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: sl_api::SharedObject<sl_sim::SimMem>,
    O::Handle: sl_api::sim::DriveOps<S>,
    F: Fn(&sl_sim::SimMem) -> O + Send + Sync + Copy,
{
    let st = Arc::new(statics);
    let (value_out, value_rep) =
        run::<S, O, F>(spec, factory, workload, &cfg(PruneMode::ValueDpor, 1, None));
    let mut static_outs: Vec<(ExploreOutcome, sl_check::StrongLinReport)> = Vec::new();
    for &w in &WORKER_COUNTS {
        static_outs.push(run::<S, O, F>(
            spec,
            factory,
            workload,
            &cfg(PruneMode::StaticDpor, w, Some(Arc::clone(&st))),
        ));
    }
    let (static_out, static_rep) = &static_outs[0];
    for (i, (out, rep)) in static_outs.iter().enumerate() {
        assert_eq!(
            out, static_out,
            "{label}: StaticDpor not bit-identical at {} workers",
            WORKER_COUNTS[i]
        );
        assert_eq!(
            (rep.holds, rep.conflict_depth),
            (static_rep.holds, static_rep.conflict_depth),
            "{label}: verdict/conflict-depth diverged at {} workers",
            WORKER_COUNTS[i]
        );
    }
    assert_eq!(
        value_rep.holds, static_rep.holds,
        "{label}: StaticDpor changed the strong-lin verdict"
    );
    assert_eq!(
        value_rep.conflict_depth, static_rep.conflict_depth,
        "{label}: StaticDpor changed the conflict depth"
    );
    assert!(
        static_out.runs <= value_out.runs,
        "{label}: StaticDpor replayed more ({} > {})",
        static_out.runs,
        value_out.runs
    );
    if expect_strictly_fewer {
        assert!(
            static_out.runs < value_out.runs,
            "{label}: expected placement pruning, got {} = {}",
            static_out.runs,
            value_out.runs
        );
        assert!(
            st.telemetry().relaxed > 0,
            "{label}: no placement relaxation fired"
        );
    }

    // OptimalDpor leg: same verdict, bit-identical across workers,
    // structurally cut-free, and no more total replays than the
    // value-aware baseline. The certificate is handed over too —
    // optimal mode consults it opportunistically (placement
    // relaxation) without requiring it.
    let mut optimal_outs: Vec<(ExploreOutcome, sl_check::StrongLinReport)> = Vec::new();
    for &w in &WORKER_COUNTS {
        optimal_outs.push(run::<S, O, F>(
            spec,
            factory,
            workload,
            &cfg(PruneMode::OptimalDpor, w, Some(Arc::clone(&st))),
        ));
    }
    let (optimal_out, optimal_rep) = &optimal_outs[0];
    for (i, (out, rep)) in optimal_outs.iter().enumerate() {
        assert_eq!(
            out, optimal_out,
            "{label}: OptimalDpor not bit-identical at {} workers",
            WORKER_COUNTS[i]
        );
        assert_eq!(
            (rep.holds, rep.conflict_depth),
            (optimal_rep.holds, optimal_rep.conflict_depth),
            "{label}: optimal verdict diverged at {} workers",
            WORKER_COUNTS[i]
        );
    }
    assert_eq!(
        (value_rep.holds, value_rep.conflict_depth),
        (optimal_rep.holds, optimal_rep.conflict_depth),
        "{label}: OptimalDpor changed the strong-lin verdict"
    );
    assert_eq!(
        optimal_out.cut_runs, 0,
        "{label}: OptimalDpor initiated a sleep-set-blocked replay"
    );
    assert!(
        optimal_out.schedules_replayed() <= value_out.schedules_replayed(),
        "{label}: OptimalDpor replayed more in total ({} > {})",
        optimal_out.schedules_replayed(),
        value_out.schedules_replayed()
    );
}

#[test]
fn aba_mixed_three_process() {
    let workload = vec![
        vec![AbaOp::DWrite(1)],
        vec![AbaOp::DWrite(2)],
        vec![AbaOp::DRead],
    ];
    differential(
        "aba mixed 3-proc",
        &AbaSpec::new(3),
        |mem: &sl_sim::SimMem| ObjectBuilder::on(mem).processes(3).aba_register::<u64>(),
        &workload,
        sl_analyze::aba_certificate(3).static_conflicts(),
        true,
    );
}

#[test]
fn lin_aba_violation_is_preserved() {
    // Algorithm 1 is *not* strongly linearizable; the pruned
    // exploration must still exhibit the violation (same verdict).
    let workload = vec![
        vec![AbaOp::DWrite(1), AbaOp::DWrite(2)],
        vec![AbaOp::DRead, AbaOp::DRead],
    ];
    differential(
        "lin-aba 2-proc",
        &AbaSpec::new(2),
        |mem: &sl_sim::SimMem| {
            ObjectBuilder::on(mem)
                .processes(2)
                .lin_aba_register::<u64>()
        },
        &workload,
        sl_analyze::lin_aba_certificate(2).static_conflicts(),
        false,
    );
}

#[test]
fn double_collect_snapshot() {
    let workload = vec![vec![SnapshotOp::Update(5)], vec![SnapshotOp::Scan]];
    differential(
        "double-collect snapshot",
        &SnapshotSpec::new(2),
        |mem: &sl_sim::SimMem| {
            ObjectBuilder::on(mem)
                .processes(2)
                .double_collect()
                .snapshot::<u64>()
        },
        &workload,
        {
            let cert = sl_analyze::catalog(2)
                .into_iter()
                .find(|c| c.family == "snapshot" && c.substrate == "double-collect")
                .expect("catalog entry");
            cert.static_conflicts()
        },
        true,
    );
}

#[test]
fn bounded_handshake_counter() {
    let workload = vec![vec![CounterOp::Inc], vec![CounterOp::Read]];
    differential(
        "bounded-handshake counter",
        &CounterSpec,
        |mem: &sl_sim::SimMem| {
            ObjectBuilder::on(mem)
                .processes(2)
                .bounded_handshake()
                .counter()
        },
        &workload,
        {
            let cert = sl_analyze::catalog(2)
                .into_iter()
                .find(|c| c.family == "counter" && c.substrate == "bounded-handshake")
                .expect("catalog entry");
            cert.static_conflicts()
        },
        true,
    );
}

/// Splitmix64 — a tiny deterministic generator so the randomized sweep
/// needs no external crate and every failure reproduces from its seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Randomized cross-mode sweep: generated ABA-register workloads must
/// produce the same strong-linearizability verdict and conflict depth
/// under every prune mode, at one and at four workers — and the
/// optimal mode must stay cut-free while replaying no more in total
/// than the value-aware baseline it refines.
#[test]
fn randomized_workloads_agree_across_all_modes() {
    for seed in 0..6u64 {
        let mut s = seed;
        // 2 processes, 1–2 ops each (total capped at 3 so the
        // sleep-set frame mode stays tractable), ops drawn from
        // {DRead, DWrite(1), DWrite(2)}.
        let mut workload: Vec<Vec<AbaOp<u64>>> = Vec::new();
        let mut total = 0usize;
        for _ in 0..2 {
            let k = usize::min(1 + (splitmix(&mut s) % 2) as usize, 3 - total);
            total += k;
            workload.push(
                (0..k)
                    .map(|_| match splitmix(&mut s) % 3 {
                        0 => AbaOp::DRead,
                        r => AbaOp::DWrite(r),
                    })
                    .collect(),
            );
        }
        let spec = AbaSpec::new(2);
        let factory =
            |mem: &sl_sim::SimMem| ObjectBuilder::on(mem).processes(2).aba_register::<u64>();
        let (value_out, value_rep) = run::<AbaSpec<u64>, _, _>(
            &spec,
            factory,
            &workload,
            &cfg(PruneMode::ValueDpor, 1, None),
        );
        for mode in [
            PruneMode::SleepSet,
            PruneMode::SourceDpor,
            PruneMode::OptimalDpor,
        ] {
            for workers in [1, 4] {
                let (out, rep) =
                    run::<AbaSpec<u64>, _, _>(&spec, factory, &workload, &cfg(mode, workers, None));
                assert_eq!(
                    (rep.holds, rep.conflict_depth),
                    (value_rep.holds, value_rep.conflict_depth),
                    "seed {seed} {workload:?}: {mode:?}@{workers}w verdict diverged"
                );
                if mode == PruneMode::OptimalDpor {
                    assert_eq!(
                        out.cut_runs, 0,
                        "seed {seed} {workload:?}: optimal cut a replay at {workers}w"
                    );
                    assert!(
                        out.schedules_replayed() <= value_out.schedules_replayed(),
                        "seed {seed} {workload:?}: optimal replayed more ({} > {})",
                        out.schedules_replayed(),
                        value_out.schedules_replayed()
                    );
                }
            }
        }
    }
}

/// Mirror of the sim-deep `sl_aba_three_process_mixed_deep` workload
/// (2+1 writers, 1 reader — 179,697 ValueDpor schedules at the PR 5
/// baseline): StaticDpor must exhaust it with strictly fewer replays
/// and the identical verdict.
#[test]
#[ignore = "deep: run with --ignored (sim-deep CI job)"]
fn aba_three_process_mixed_deep() {
    let workload = vec![
        vec![AbaOp::DWrite(1), AbaOp::DWrite(2)],
        vec![AbaOp::DWrite(3)],
        vec![AbaOp::DRead],
    ];
    let st = Arc::new(sl_analyze::aba_certificate(3).static_conflicts());
    let spec = AbaSpec::new(3);
    let factory = |mem: &sl_sim::SimMem| ObjectBuilder::on(mem).processes(3).aba_register::<u64>();
    let (value_out, value_rep) = run::<AbaSpec<u64>, _, _>(
        &spec,
        factory,
        &workload,
        &cfg(PruneMode::ValueDpor, sl_sim::env_workers(), None),
    );
    let (static_out, static_rep) = run::<AbaSpec<u64>, _, _>(
        &spec,
        factory,
        &workload,
        &cfg(
            PruneMode::StaticDpor,
            sl_sim::env_workers(),
            Some(Arc::clone(&st)),
        ),
    );
    assert_eq!(value_rep.holds, static_rep.holds);
    assert_eq!(value_rep.conflict_depth, static_rep.conflict_depth);
    assert!(
        static_out.runs < value_out.runs,
        "deep mixed: {} !< {}",
        static_out.runs,
        value_out.runs
    );
    let t = st.telemetry();
    assert!(t.relaxed > 0 && t.validated > 0, "{t:?}");
    let (optimal_out, optimal_rep) = run::<AbaSpec<u64>, _, _>(
        &spec,
        factory,
        &workload,
        &cfg(
            PruneMode::OptimalDpor,
            sl_sim::env_workers(),
            Some(Arc::clone(&st)),
        ),
    );
    assert_eq!(value_rep.holds, optimal_rep.holds);
    assert_eq!(value_rep.conflict_depth, optimal_rep.conflict_depth);
    assert_eq!(optimal_out.cut_runs, 0, "deep mixed: optimal cut a replay");
    assert!(
        optimal_out.schedules_replayed() < static_out.schedules_replayed(),
        "deep mixed: optimal total {} !< static total {}",
        optimal_out.schedules_replayed(),
        static_out.schedules_replayed()
    );
}
