//! Shared wire-format primitives: the FNV-1a-64 content digest, the
//! canonical-compact-JSON helpers, the fail-closed JSON parser, and the
//! atomic temp-and-rename file publisher.
//!
//! Three consumers speak the same dialect — the checkpoint format
//! ([`crate::Checkpoint`], version 1), the baseline files written by
//! `sl-bench`, and the `sl-dist` coordinator/worker frame protocol —
//! and before this module each re-implemented the pieces. The dialect
//! is deliberately narrow so that serialize → parse → serialize is
//! byte-identical and a tiny Python mirror (`scripts/ckpt_lint.py`) can
//! re-derive checksums:
//!
//! * numbers are unsigned 64-bit decimals — no floats, no negatives;
//! * strings carry no escape sequences and no raw newlines (writers
//!   must restrict themselves to [`ident_ok`]-style content, or escape
//!   via [`escape_json`] into formats that tolerate it);
//! * objects reject duplicate and unknown keys (fail-closed);
//! * the canonical encoding is compact (no whitespace) with a fixed
//!   field order, and the leading `checksum` field is FNV-1a-64 over
//!   the canonical serialization of everything else ([`seal_checksum`]).
//!
//! Nothing here is async or buffered: callers render whole documents
//! and publish them atomically ([`atomic_publish`] / [`atomic_write`]),
//! so a crash mid-write leaves the previous file intact, never a torn
//! mix.

use std::path::Path;

/// FNV-1a 64-bit over `bytes` — the wire-format content digest.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Identifier charset for workload/mode/frame-tag strings: keeps the
/// canonical serialization escape-free (and the Python linter
/// byte-compatible).
pub fn ident_ok(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// Escapes a string for embedding in a JSON literal (used by report
/// formats that carry free text, e.g. poison reports and quarantine
/// frames; the canonical wire strings themselves stay escape-free).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Appends a compact JSON array of unsigned decimals.
pub fn push_usizes(out: &mut String, xs: &[usize]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&x.to_string());
    }
    out.push(']');
}

/// Splices the FNV-1a-64 digest of `body` (a canonical `{...}` object)
/// in as the leading `checksum` field: the full on-wire document.
pub fn seal_checksum(body: &str) -> String {
    let sum = fnv1a64(body.as_bytes());
    format!("{{\"checksum\":{sum},{}", &body[1..])
}

/// Publishes `contents` atomically via an explicit temp path: full
/// write to `tmp`, then `rename` over `path`. The visible file is
/// always a complete document — a crash mid-write leaves the previous
/// one intact.
pub fn atomic_publish(tmp: &Path, path: &Path, contents: &str) -> Result<(), String> {
    std::fs::write(tmp, contents.as_bytes())
        .map_err(|e| format!("writing temp file {}: {e}", tmp.display()))?;
    std::fs::rename(tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(tmp);
        format!(
            "publishing {} (rename from {}): {e}",
            path.display(),
            tmp.display()
        )
    })?;
    Ok(())
}

/// Publishes `contents` atomically via a process-unique sibling temp
/// file (`{path}.tmp.{pid}`) — the discipline shared by the checkpoint
/// store and the baseline refresher.
pub fn atomic_write(path: &Path, contents: &str) -> Result<(), String> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    atomic_publish(Path::new(&tmp), path, contents)
}

// ---------------------------------------------------------------------
// Fail-closed JSON (the certificate.rs v2 house style; the layering
// runs analyze → sim, so the parser lives here rather than there)
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers are unsigned 64-bit only — the wire
/// formats have no floats or negatives, and rejecting them outright
/// beats guessing a rounding.
#[derive(Clone, Debug)]
pub enum Json {
    /// A string literal (escape-free on the wire).
    Str(String),
    /// An unsigned decimal.
    Num(u64),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source field order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value as an unsigned integer, or a named diagnostic.
    pub fn as_num(&self, ctx: &str) -> Result<u64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(format!(
                "{ctx}: expected an unsigned integer, found {other:?}"
            )),
        }
    }
}

/// The fail-closed document parser. `what` names the document kind in
/// diagnostics ("checkpoint", "frame", ...), so every consumer's
/// rejections stay self-describing.
pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    what: &'static str,
}

impl<'a> Parser<'a> {
    /// A parser over `text` for a document kind named `what`.
    pub fn new(text: &'a str, what: &'static str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            what,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("line {}: {msg}", self.line)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| {
            self.err(&format!(
                "unexpected end of input (truncated {}?)",
                self.what
            ))
        })
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(self.err(&format!(
                "expected '{}', found '{}'",
                b as char, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    /// Parses the single top-level value and rejects trailing garbage.
    pub fn parse_document(mut self) -> Result<Json, String> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err(&format!("trailing garbage after the {} object", self.what)));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.parse_obj(),
            b'[' => self.parse_arr(),
            b'"' => Ok(Json::Str(self.parse_string()?)),
            b'0'..=b'9' => self.parse_num(),
            b't' | b'f' => self.parse_bool(),
            b'-' => Err(self.err(&format!(
                "negative numbers are not part of the {} format",
                self.what
            ))),
            c => Err(self.err(&format!("unexpected character '{}'", c as char))),
        }
    }

    fn parse_obj(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!(
                    "duplicate key \"{key}\" (fail-closed: refusing to pick one)"
                )));
            }
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                c => return Err(self.err(&format!("expected ',' or '}}', found '{}'", c as char))),
            }
        }
    }

    fn parse_arr(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                c => return Err(self.err(&format!("expected ',' or ']', found '{}'", c as char))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err(&format!("unterminated string (truncated {}?)", self.what)));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    return Err(self.err(&format!(
                        "escape sequences are not part of the {} format",
                        self.what
                    )))
                }
                b'\n' => return Err(self.err("raw newline inside a string")),
                _ => s.push(b as char),
            }
        }
    }

    fn parse_num(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(
            self.bytes.get(self.pos),
            Some(b'.') | Some(b'e') | Some(b'E')
        ) {
            return Err(self.err(&format!(
                "floating-point numbers are not part of the {} format",
                self.what
            )));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("number {text} does not fit in u64")))
    }

    fn parse_bool(&mut self) -> Result<Json, String> {
        for (word, value) in [("true", true), ("false", false)] {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                return Ok(Json::Bool(value));
            }
        }
        Err(self.err("expected 'true' or 'false'"))
    }
}

/// Typed, fail-closed field extraction from a parsed object: every key
/// must be known, every known key must be present when asked for.
pub struct Fields {
    fields: Vec<(String, Json)>,
    ctx: &'static str,
}

impl Fields {
    /// Wraps an [`Json::Obj`]; anything else is a named rejection.
    pub fn new(v: Json, ctx: &'static str) -> Result<Fields, String> {
        match v {
            Json::Obj(fields) => Ok(Fields { fields, ctx }),
            other => Err(format!("{ctx}: expected an object, found {other:?}")),
        }
    }

    /// Rejects any key outside `keys` (fail-closed).
    pub fn allow(&self, keys: &[&str]) -> Result<(), String> {
        for (k, _) in &self.fields {
            if !keys.contains(&k.as_str()) {
                return Err(format!(
                    "{}: unknown field \"{k}\" (fail-closed: refusing to guess)",
                    self.ctx
                ));
            }
        }
        Ok(())
    }

    /// Removes and returns the named field, or a named rejection.
    pub fn take(&mut self, key: &str) -> Result<Json, String> {
        let i = self
            .fields
            .iter()
            .position(|(k, _)| k == key)
            .ok_or_else(|| format!("{}: missing field \"{key}\"", self.ctx))?;
        Ok(self.fields.remove(i).1)
    }

    /// The named field as an unsigned integer.
    pub fn num(&mut self, key: &str) -> Result<u64, String> {
        self.take(key)?.as_num(key)
    }

    /// The named field as a boolean.
    pub fn boolean(&mut self, key: &str) -> Result<bool, String> {
        match self.take(key)? {
            Json::Bool(b) => Ok(b),
            other => Err(format!("{key}: expected a boolean, found {other:?}")),
        }
    }

    /// The named field as a string.
    pub fn string(&mut self, key: &str) -> Result<String, String> {
        match self.take(key)? {
            Json::Str(s) => Ok(s),
            other => Err(format!("{key}: expected a string, found {other:?}")),
        }
    }

    /// The named field as an array.
    pub fn array(&mut self, key: &str) -> Result<Vec<Json>, String> {
        match self.take(key)? {
            Json::Arr(items) => Ok(items),
            other => Err(format!("{key}: expected an array, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_checksum_matches_manual_digest() {
        let body = "{\"version\":1,\"x\":2}";
        let sealed = seal_checksum(body);
        let sum = fnv1a64(body.as_bytes());
        assert_eq!(
            sealed,
            format!("{{\"checksum\":{sum},\"version\":1,\"x\":2}}")
        );
    }

    #[test]
    fn parser_names_the_document_kind() {
        let err = Parser::new("{\"a\":", "frame")
            .parse_document()
            .unwrap_err();
        assert!(err.contains("truncated frame"), "diagnostic: {err}");
        let err = Parser::new("{\"a\":-1}", "frame")
            .parse_document()
            .unwrap_err();
        assert!(
            err.contains("not part of the frame format"),
            "diagnostic: {err}"
        );
    }

    #[test]
    fn atomic_write_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("sl-wire-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.json");
        atomic_write(&path, "{\"x\":1}").unwrap();
        atomic_write(&path, "{\"x\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"x\":2}");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "doc.json")
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
