//! The warm-replay pool: one world + event log + transcript buffer per
//! worker, reset between schedules.
//!
//! Every pooled exploration harness needs the same ordering-sensitive
//! idiom: reset the world *and* the log before rebuilding programs,
//! run, convert the transcript into a reused buffer, recycle the
//! outcome's allocations. [`ReplayPool`] owns that contract once, so
//! harness contexts (which differ only in the object under test and
//! the transcript sink) cannot get the ordering wrong.

use sl_check::{DagShards, TreeStep};
use sl_spec::SeqSpec;

use crate::explore::ReplayCtx;
use crate::log::EventLog;
use crate::sched::Scheduler;
use crate::world::{Program, RunConfig, SimWorld};

/// A reusable replay engine over one warm [`SimWorld`]: build the world
/// (and the object under test, which the caller keeps next to the
/// pool) once, then [`ReplayPool::replay`] per schedule.
pub struct ReplayPool<S: SeqSpec> {
    world: SimWorld,
    log: EventLog<S>,
    transcript: Vec<TreeStep<S>>,
    used: bool,
}

impl<S: SeqSpec> ReplayPool<S> {
    /// Wraps a freshly built world (allocate registers and build the
    /// object under test against `world.mem()` *before* the first
    /// replay).
    pub fn new(world: SimWorld) -> Self {
        let log = EventLog::new(&world);
        ReplayPool {
            world,
            log,
            transcript: Vec::new(),
            used: false,
        }
    }

    /// The pooled world.
    pub fn world(&self) -> &SimWorld {
        &self.world
    }

    /// The pooled event log (pass to program builders).
    pub fn log(&self) -> &EventLog<S> {
        &self.log
    }

    /// Runs one schedule: resets world and log (after the first use),
    /// rebuilds the programs via `programs` (handles must be re-created
    /// there — per-process state does not survive a reset), runs under
    /// `scheduler`, and leaves the run's transcript in
    /// [`ReplayPool::transcript`] (a buffer reused across replays). The
    /// outcome's trace buffers are recycled into the world.
    pub fn replay(
        &mut self,
        programs: impl FnOnce(&EventLog<S>) -> Vec<Program>,
        scheduler: &mut dyn Scheduler,
        step_budget: u64,
    ) {
        if self.used {
            self.world.reset();
            self.log.reset();
        }
        self.used = true;
        let programs = programs(&self.log);
        let out = self
            .world
            .run_with(programs, scheduler, step_budget, RunConfig::traced());
        self.log.transcript_into(&out, &mut self.transcript);
        self.world.recycle(out);
    }

    /// The most recent replay's transcript.
    pub fn transcript(&self) -> &[TreeStep<S>] {
        &self.transcript
    }
}

/// Couples any per-worker replay state with per-subtree
/// [`DagShards`], wiring the [`ReplayCtx`] subtree hooks to the shard
/// stack exactly once — harness contexts wrap their pool in this
/// instead of each hand-writing the forwarding impl (where a missed
/// forward would silently leave the trait's no-op defaults and
/// unbalance the shards).
pub struct Sharded<'s, S: SeqSpec, C> {
    /// The wrapped per-worker replay state.
    pub inner: C,
    /// The shard stack fed by the subtree hooks.
    pub shards: DagShards<'s, S>,
}

impl<S: SeqSpec, C> ReplayCtx for Sharded<'_, S, C> {
    fn subtree_begin(&mut self) {
        self.shards.begin();
    }

    fn subtree_end(&mut self) {
        self.shards.end();
    }
}
