//! Typed recording of high-level events, interleaved with register steps.

use sl_check::{OpSym, TreeStep};
use sl_spec::{Event, History, OpId, ProcId, SeqSpec};
use std::collections::HashMap;
use std::mem::Discriminant;
use std::sync::{Arc, Mutex};

use crate::world::{AccessKind, RunOutcome, SimWorld, TraceItem};

struct LogInner<S: SeqSpec> {
    history: History<S>,
    /// Interned op identity per op *variant*, memoized by discriminant
    /// so the `Debug` rendering + label derivation runs once per
    /// distinct variant, not once per invocation.
    tags: HashMap<Discriminant<S::Op>, OpSym>,
}

/// Records the high-level operations of a simulated run.
///
/// Programs call [`invoke`]/[`respond`] around each operation on the
/// object under test. The log assigns operation identifiers, builds the
/// typed [`History`], and marks each event's position in the world's
/// trace so that the full transcript (events interleaved with internal
/// register steps) can be reconstructed with [`transcript`].
///
/// Ordering is deterministic: the simulator runs at most one process at
/// a time, so event markers and register steps are totally ordered.
///
/// [`invoke`]: EventLog::invoke
/// [`respond`]: EventLog::respond
/// [`transcript`]: EventLog::transcript
pub struct EventLog<S: SeqSpec> {
    world: SimWorld,
    inner: Arc<Mutex<LogInner<S>>>,
}

impl<S: SeqSpec> Clone for EventLog<S> {
    fn clone(&self) -> Self {
        EventLog {
            world: self.world.clone(),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: SeqSpec> std::fmt::Debug for EventLog<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EventLog({} events)",
            self.inner.lock().unwrap().history.len()
        )
    }
}

impl<S: SeqSpec> EventLog<S> {
    /// Creates an event log attached to `world`.
    pub fn new(world: &SimWorld) -> Self {
        EventLog {
            world: world.clone(),
            inner: Arc::new(Mutex::new(LogInner {
                history: History::new(),
                tags: HashMap::new(),
            })),
        }
    }

    /// Records an invocation event and returns its operation identifier.
    /// The trace marker is [`TraceItem::HiInvoke`], carrying the
    /// interned identity of the op's *variant* (`DWrite(3)` tags as
    /// `DWrite` — the same derivation the static analyser's probe loop
    /// uses, so certificate pair-matrix keys match at run time): the
    /// explorer's static placement relaxation may commute the step this
    /// marker rides on, which is licensed for invocations but never for
    /// responses (responses pin real-time order), and attributes the
    /// activation's steps to the carried op identity.
    pub fn invoke(&self, proc: ProcId, op: S::Op) -> OpId {
        let mut inner = self.inner.lock().unwrap();
        let tag = *inner
            .tags
            .entry(std::mem::discriminant(&op))
            .or_insert_with(|| OpSym::of_debug(&format!("{op:?}")));
        let id = inner.history.invoke(proc, op);
        let index = inner.history.len() - 1;
        self.world.push_hi_marker(index, Some(tag));
        id
    }

    /// Records the response event matching `id`.
    pub fn respond(&self, id: OpId, resp: S::Resp) {
        let mut inner = self.inner.lock().unwrap();
        inner.history.respond(id, resp);
        let index = inner.history.len() - 1;
        self.world.push_hi_marker(index, None);
    }

    /// The recorded history (high-level events only).
    pub fn history(&self) -> History<S> {
        self.inner.lock().unwrap().history.clone()
    }

    /// Clears the recorded history so the log can serve another run of
    /// the same (reset) world — the event-side counterpart of
    /// [`crate::SimWorld::reset`].
    pub fn reset(&self) {
        self.inner.lock().unwrap().history.clear();
    }

    /// Reconstructs the full transcript of a run: high-level events and
    /// internal register steps, in execution order, in the form consumed
    /// by `sl_check::HistoryTree::from_transcripts`.
    pub fn transcript(&self, outcome: &RunOutcome) -> Vec<TreeStep<S>> {
        let mut steps = Vec::with_capacity(outcome.trace.len());
        self.transcript_into(outcome, &mut steps);
        steps
    }

    /// [`EventLog::transcript`] into a caller-owned buffer (cleared
    /// first): the explorer's replay loop reuses one buffer across
    /// thousands of schedules instead of allocating per run.
    ///
    /// Internal steps are **copied, not converted**: the trace already
    /// holds the packed [`sl_check::StepCode`] each step was recorded
    /// under, so this loop renders nothing and interns nothing — the
    /// zero-format half of the trace pipeline.
    pub fn transcript_into(&self, outcome: &RunOutcome, steps: &mut Vec<TreeStep<S>>) {
        steps.clear();
        steps.reserve(outcome.trace.len());
        let inner = self.inner.lock().unwrap();
        let events: &[Event<S>] = inner.history.events();
        steps.extend(outcome.trace.iter().map(|item| match item {
            TraceItem::Step(s) => TreeStep::Internal(ProcId(s.proc), s.code),
            TraceItem::Hi(i) | TraceItem::HiInvoke(i, _) => TreeStep::Event(events[*i].clone()),
        }));
    }

    /// Renders the full transcript for humans, one line per trace item:
    /// high-level events as `p0 -> Invoke(..)` / `p0 <- Respond(..)`,
    /// register steps with the register's **allocation site** (the
    /// `Mem::alloc` call site recorded by `SimMem`), and pauses without
    /// one. This is the format shrunk fuzz counterexamples print:
    ///
    /// ```text
    /// p0 -> DWrite(7)
    /// p0 X.write(7) @ crates/core/src/aba.rs:207
    /// p0 <- Ack
    /// ```
    pub fn pretty_transcript(&self, outcome: &RunOutcome) -> Vec<String> {
        use std::fmt::Write;
        let inner = self.inner.lock().unwrap();
        let events = inner.history.events();
        // One reused buffer formats every line; each line then takes
        // exactly one allocation (its own `String`), instead of the
        // per-event `format!` chains this path used to run.
        let mut buf = String::new();
        outcome
            .trace
            .iter()
            .map(|item| {
                buf.clear();
                match item {
                    TraceItem::Step(s) if s.kind == AccessKind::Local => {
                        let _ = write!(buf, "p{} (pause)", s.proc);
                    }
                    TraceItem::Step(s) => s.write_detailed(&mut buf),
                    TraceItem::Hi(i) | TraceItem::HiInvoke(i, _) => {
                        let e = &events[*i];
                        match &e.kind {
                            sl_spec::EventKind::Invoke(op) => {
                                let _ = write!(buf, "{} -> {op:?}", e.proc);
                            }
                            sl_spec::EventKind::Respond(r) => {
                                let _ = write!(buf, "{} <- {r:?}", e.proc);
                            }
                        }
                    }
                }
                buf.as_str().to_owned()
            })
            .collect()
    }
}
