//! The simulator's `Mem` backend.

use sl_mem::{Mem, Register, RmwCell, Value};
use std::panic::Location;
use std::sync::{Arc, Mutex};

use crate::world::{AccessKind, RegId, SimWorld};

/// Register allocator of a [`SimWorld`].
///
/// Registers must be allocated before the run starts (typically while
/// wiring up the algorithm under test); accesses are only legal from
/// within simulated process programs. Every allocation is recorded in
/// the world's registry with a dense [`RegId`] and the allocation call
/// site, so step records can be traced back to the algorithm line that
/// created the register.
#[derive(Clone)]
pub struct SimMem {
    pub(crate) world: SimWorld,
}

impl std::fmt::Debug for SimMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimMem({:?})", self.world)
    }
}

impl SimMem {
    #[track_caller]
    fn alloc_impl<T: Value>(&self, name: &str, init: T) -> SimRegister<T> {
        let site = Location::caller();
        let cell = Arc::new(Mutex::new(init.clone()));
        // The reset closure re-seeds the cell with the alloc-time
        // initial value; the allocation-site table itself survives a
        // reset (see `SimWorld::reset`).
        let reset_cell = Arc::clone(&cell);
        let reset = Box::new(move || *reset_cell.lock().unwrap() = init.clone());
        let (id, name) = self.world.register(name, site, reset);
        SimRegister {
            world: self.world.clone(),
            id,
            name,
            site,
            cell,
        }
    }

    /// Restores every allocated register to its `alloc`-time initial
    /// value, keeping names, dense [`RegId`]s, and allocation sites.
    /// [`SimWorld::reset`] calls this (and additionally clears the
    /// run latch and discards in-run allocations); use `SimMem::reset`
    /// directly to re-seed memory between hand-driven runs.
    pub fn reset(&self) {
        self.world.reset_registers(None);
    }
}

impl Mem for SimMem {
    type Reg<T: Value> = SimRegister<T>;
    type Cell<T: Value> = SimRegister<T>;

    #[track_caller]
    fn alloc<T: Value>(&self, name: &str, init: T) -> Self::Reg<T> {
        self.alloc_impl(name, init)
    }

    #[track_caller]
    fn alloc_cell<T: Value>(&self, name: &str, init: T) -> Self::Cell<T> {
        self.alloc_impl(name, init)
    }
}

/// A simulated register.
///
/// Each `read`/`write` is one scheduler-controlled shared-memory step:
/// the calling process parks until the scheduler grants it the step, the
/// access executes atomically, and a [`crate::StepRecord`] is appended to
/// the run's trace.
pub struct SimRegister<T> {
    world: SimWorld,
    id: RegId,
    name: Arc<str>,
    site: &'static Location<'static>,
    cell: Arc<Mutex<T>>,
}

impl<T> Clone for SimRegister<T> {
    fn clone(&self) -> Self {
        SimRegister {
            world: self.world.clone(),
            id: self.id,
            name: Arc::clone(&self.name),
            site: self.site,
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<T: Value> std::fmt::Debug for SimRegister<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimRegister({}#{})", self.name, self.id.0)
    }
}

impl<T: Value> SimRegister<T> {
    /// Reads the register **without** consuming a scheduler step.
    ///
    /// Only for use by schedulers (the strong adversary inspects the
    /// configuration between steps, when all processes are quiescent) and
    /// by test assertions after a run. Never call this from a simulated
    /// process program: it would hide a shared-memory access from the
    /// step accounting.
    pub fn peek(&self) -> T {
        self.cell.lock().unwrap().clone()
    }

    /// The dense identity this register was allocated under.
    pub fn reg_id(&self) -> RegId {
        self.id
    }

    /// The source location of the allocation (`Mem::alloc` call site).
    pub fn site(&self) -> &'static Location<'static> {
        self.site
    }
}

impl<T: Value> Register<T> for SimRegister<T> {
    fn read(&self) -> T {
        // The access closure borrows `self.cell` — no per-step Arc
        // traffic on the replay hot path.
        self.world.step(
            self.id,
            &self.name,
            self.site,
            AccessKind::Read,
            |label_wanted| {
                let v = self.cell.lock().unwrap().clone();
                let label = if label_wanted {
                    format!("{v:?}")
                } else {
                    String::new()
                };
                (v, label)
            },
        )
    }

    fn write(&self, value: T) {
        self.world.step(
            self.id,
            &self.name,
            self.site,
            AccessKind::Write,
            |label_wanted| {
                let label = if label_wanted {
                    format!("{value:?}")
                } else {
                    String::new()
                };
                *self.cell.lock().unwrap() = value;
                ((), label)
            },
        );
    }
}

impl<T: Value> RmwCell<T> for SimRegister<T> {
    fn update(&self, f: impl FnOnce(&T) -> T) -> T {
        self.world.step(
            self.id,
            &self.name,
            self.site,
            AccessKind::Rmw,
            |label_wanted| {
                let mut guard = self.cell.lock().unwrap();
                let old = guard.clone();
                let new = f(&old);
                let label = if label_wanted {
                    format!("{old:?}->{new:?}")
                } else {
                    String::new()
                };
                *guard = new;
                (old, label)
            },
        )
    }
}
