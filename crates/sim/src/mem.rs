//! The simulator's `Mem` backend.

use sl_mem::{Mem, Register, RmwCell, Value};
use std::sync::{Arc, Mutex};

use crate::world::{AccessKind, SimWorld};

/// Register allocator of a [`SimWorld`].
///
/// Registers must be allocated before the run starts (typically while
/// wiring up the algorithm under test); accesses are only legal from
/// within simulated process programs.
#[derive(Clone)]
pub struct SimMem {
    pub(crate) world: SimWorld,
}

impl std::fmt::Debug for SimMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimMem({:?})", self.world)
    }
}

impl Mem for SimMem {
    type Reg<T: Value> = SimRegister<T>;
    type Cell<T: Value> = SimRegister<T>;

    fn alloc<T: Value>(&self, name: &str, init: T) -> Self::Reg<T> {
        SimRegister {
            world: self.world.clone(),
            name: Arc::new(name.to_string()),
            cell: Arc::new(Mutex::new(init)),
        }
    }

    fn alloc_cell<T: Value>(&self, name: &str, init: T) -> Self::Cell<T> {
        self.alloc(name, init)
    }
}

/// A simulated register.
///
/// Each `read`/`write` is one scheduler-controlled shared-memory step:
/// the calling process parks until the scheduler grants it the step, the
/// access executes atomically, and a [`crate::StepRecord`] is appended to
/// the run's trace.
pub struct SimRegister<T> {
    world: SimWorld,
    name: Arc<String>,
    cell: Arc<Mutex<T>>,
}

impl<T> Clone for SimRegister<T> {
    fn clone(&self) -> Self {
        SimRegister {
            world: self.world.clone(),
            name: Arc::clone(&self.name),
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<T: Value> std::fmt::Debug for SimRegister<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimRegister({})", self.name)
    }
}

impl<T: Value> SimRegister<T> {
    /// Reads the register **without** consuming a scheduler step.
    ///
    /// Only for use by schedulers (the strong adversary inspects the
    /// configuration between steps, when all processes are quiescent) and
    /// by test assertions after a run. Never call this from a simulated
    /// process program: it would hide a shared-memory access from the
    /// step accounting.
    pub fn peek(&self) -> T {
        self.cell.lock().unwrap().clone()
    }
}

impl<T: Value> Register<T> for SimRegister<T> {
    fn read(&self) -> T {
        let cell = Arc::clone(&self.cell);
        self.world.step(&self.name, AccessKind::Read, move || {
            let v = cell.lock().unwrap().clone();
            let label = format!("{v:?}");
            (v, label)
        })
    }

    fn write(&self, value: T) {
        let cell = Arc::clone(&self.cell);
        let label = format!("{value:?}");
        self.world.step(&self.name, AccessKind::Write, move || {
            *cell.lock().unwrap() = value;
            ((), label)
        });
    }
}

impl<T: Value> RmwCell<T> for SimRegister<T> {
    fn update(&self, f: impl FnOnce(&T) -> T) -> T {
        let cell = Arc::clone(&self.cell);
        self.world.step(&self.name, AccessKind::Rmw, move || {
            let mut guard = cell.lock().unwrap();
            let old = guard.clone();
            let new = f(&old);
            let label = format!("{old:?}->{new:?}");
            *guard = new;
            (old, label)
        })
    }
}
