//! The simulator's `Mem` backend.

use sl_check::{RegSym, ValueId};
use sl_mem::{Mem, Register, RmwCell, Value};
use std::panic::Location;
use std::sync::{Arc, Mutex};

use crate::world::{AccessKind, RegId, SimWorld};

/// Register allocator of a [`SimWorld`].
///
/// Registers must be allocated before the run starts (typically while
/// wiring up the algorithm under test); accesses are only legal from
/// within simulated process programs. Every allocation is recorded in
/// the world's registry with a dense [`RegId`] and a globally interned
/// [`RegSym`] (name + allocation call site), so step records can be
/// traced back to the algorithm line that created the register.
#[derive(Clone)]
pub struct SimMem {
    pub(crate) world: SimWorld,
}

impl std::fmt::Debug for SimMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimMem({:?})", self.world)
    }
}

impl SimMem {
    #[track_caller]
    fn alloc_impl<T: Value>(&self, name: &str, init: T) -> SimRegister<T> {
        let site = Location::caller();
        let cell = Arc::new(Mutex::new(CellState {
            value: init.clone(),
            cache: Vec::new(),
            rmw_cache: Vec::new(),
        }));
        // The reset closure re-seeds the cell with the alloc-time
        // initial value; the allocation-site table itself survives a
        // reset (see `SimWorld::reset`). The value-id cache survives
        // too: interned ids are global and stable.
        let reset_cell = Arc::clone(&cell);
        let reset = Box::new(move || reset_cell.lock().unwrap().value = init.clone());
        let (id, sym) = self.world.register(name, site, reset);
        SimRegister {
            world: self.world.clone(),
            id,
            sym,
            cell,
        }
    }

    /// Restores every allocated register to its `alloc`-time initial
    /// value, keeping names, dense [`RegId`]s, and allocation sites.
    /// [`SimWorld::reset`] calls this (and additionally clears the
    /// run latch and discards in-run allocations); use `SimMem::reset`
    /// directly to re-seed memory between hand-driven runs.
    pub fn reset(&self) {
        self.world.reset_registers(None);
    }
}

impl Mem for SimMem {
    type Reg<T: Value> = SimRegister<T>;
    type Cell<T: Value> = SimRegister<T>;

    #[track_caller]
    fn alloc<T: Value>(&self, name: &str, init: T) -> Self::Reg<T> {
        self.alloc_impl(name, init)
    }

    #[track_caller]
    fn alloc_cell<T: Value>(&self, name: &str, init: T) -> Self::Cell<T> {
        self.alloc_impl(name, init)
    }

    fn epoch(&self) -> u64 {
        self.world
            .inner
            .epoch
            .load(std::sync::atomic::Ordering::SeqCst)
    }
}

/// A read-modify-write transition, interned as one value so an `Rmw`
/// step's code identifies both sides; renders as `old->new` (the label
/// format the eager pipeline used).
#[derive(Clone, PartialEq, Eq, Hash)]
struct RmwPair<T>(T, T);

impl<T: std::fmt::Debug> std::fmt::Debug for RmwPair<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}->{:?}", self.0, self.1)
    }
}

/// The guarded state of one simulated register: the stored value plus
/// a tiny per-register memo of recently interned value ids. Registers
/// cycle through few distinct values within an exploration, so most
/// traced steps resolve their [`ValueId`] with a couple of `Eq`
/// compares under the lock they already hold, instead of probing the
/// process-wide interner. Sound because interned ids are global: equal
/// values always map to equal ids.
struct CellState<T> {
    value: T,
    cache: Vec<(T, ValueId)>,
    /// Separate memo for RMW transitions — the typed cache above holds
    /// plain values, while an `Rmw` step's identity is the `(old, new)`
    /// pair (interned under [`RmwPair`]).
    rmw_cache: Vec<(RmwPair<T>, ValueId)>,
}

/// Entries kept in a register's value-id memo (MRU at the front; two
/// entries already cover toggling handshake bits, four covers the
/// small value orbits typical of bounded workloads).
const VALUE_CACHE: usize = 4;

fn intern_cached<T>(cache: &mut Vec<(T, ValueId)>, value: &T) -> ValueId
where
    T: Clone + Eq + std::hash::Hash + std::fmt::Debug + Send + Sync + 'static,
{
    if let Some(pos) = cache.iter().position(|(c, _)| c == value) {
        let id = cache[pos].1;
        if pos != 0 {
            cache.swap(0, pos);
        }
        return id;
    }
    let id = ValueId::of(value);
    if cache.len() >= VALUE_CACHE {
        cache.pop();
    }
    cache.insert(0, (value.clone(), id));
    id
}

/// A simulated register.
///
/// Each `read`/`write` is one scheduler-controlled shared-memory step:
/// the calling process parks until the scheduler grants it the step, the
/// access executes atomically, and a [`crate::StepRecord`] is appended to
/// the run's trace.
pub struct SimRegister<T> {
    world: SimWorld,
    id: RegId,
    sym: RegSym,
    cell: Arc<Mutex<CellState<T>>>,
}

impl<T> Clone for SimRegister<T> {
    fn clone(&self) -> Self {
        SimRegister {
            world: self.world.clone(),
            id: self.id,
            sym: self.sym,
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<T: Value> std::fmt::Debug for SimRegister<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimRegister({}#{})", self.sym.name(), self.id.0)
    }
}

impl<T: Value> SimRegister<T> {
    /// Reads the register **without** consuming a scheduler step.
    ///
    /// Only for use by schedulers (the strong adversary inspects the
    /// configuration between steps, when all processes are quiescent) and
    /// by test assertions after a run. Never call this from a simulated
    /// process program: it would hide a shared-memory access from the
    /// step accounting.
    pub fn peek(&self) -> T {
        self.cell.lock().unwrap().value.clone()
    }

    /// The dense identity this register was allocated under.
    pub fn reg_id(&self) -> RegId {
        self.id
    }

    /// The globally interned identity (name + allocation site).
    pub fn reg_sym(&self) -> RegSym {
        self.sym
    }

    /// The source location of the allocation (`Mem::alloc` call site)
    /// as `(file, line)`.
    pub fn site(&self) -> (&'static str, u32) {
        self.sym.site()
    }
}

impl<T: Value> Register<T> for SimRegister<T> {
    fn read(&self) -> T {
        // The access closure borrows `self.cell` — no per-step Arc
        // traffic on the replay hot path, and no rendering: the value
        // is interned by identity (usually a couple of `Eq` compares
        // against the register's memo, see [`CellState`]) when tracing.
        self.world
            .step(self.id, self.sym, AccessKind::Read, |record| {
                let mut guard = self.cell.lock().unwrap();
                let v = guard.value.clone();
                let vid = if record {
                    intern_cached(&mut guard.cache, &v)
                } else {
                    ValueId::NONE
                };
                (v, vid)
            })
    }

    fn write(&self, value: T) {
        self.world
            .step(self.id, self.sym, AccessKind::Write, |record| {
                let mut guard = self.cell.lock().unwrap();
                let vid = if record {
                    intern_cached(&mut guard.cache, &value)
                } else {
                    ValueId::NONE
                };
                guard.value = value;
                ((), vid)
            });
    }
}

impl<T: Value> RmwCell<T> for SimRegister<T> {
    fn update(&self, f: impl FnOnce(&T) -> T) -> T {
        self.world
            .step(self.id, self.sym, AccessKind::Rmw, |record| {
                let mut guard = self.cell.lock().unwrap();
                let old = guard.value.clone();
                let new = f(&old);
                let vid = if record {
                    // Transitions cycle like values do, so the pair is
                    // memoised through its own cache (wrapped: the pair
                    // renders as `old->new`, and must never collide
                    // with a plain value of the same shape).
                    intern_cached(&mut guard.rmw_cache, &RmwPair(old.clone(), new.clone()))
                } else {
                    ValueId::NONE
                };
                guard.value = new;
                (old, vid)
            })
    }
}
