//! The simulated world: coordinator, step protocol, and trace recording.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::mem::SimMem;
use crate::sched::Scheduler;

/// Kind of a register access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// A register read.
    Read,
    /// A register write.
    Write,
    /// An atomic read-modify-write (only on `RmwCell`s, which model
    /// stronger base objects than plain registers).
    Rmw,
    /// A scheduled no-op ([`ProcCtx::pause`]): the process consumes a
    /// scheduling decision without touching shared memory. Used to model
    /// that a process invokes its next high-level operation only when
    /// the adversary schedules it.
    Local,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
            AccessKind::Rmw => write!(f, "rmw"),
            AccessKind::Local => write!(f, "local"),
        }
    }
}

/// Record of one shared-memory step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StepRecord {
    /// Process that took the step.
    pub proc: usize,
    /// Name of the accessed register.
    pub reg: String,
    /// Read or write.
    pub kind: AccessKind,
    /// Debug rendering of the value read or written. Together with `reg`
    /// and `kind` this identifies the step completely, which is what the
    /// transcript-tree merging in `sl-check` relies on.
    pub value: String,
}

impl StepRecord {
    /// A stable label describing the step (register, kind, value).
    pub fn label(&self) -> String {
        format!("{}.{}({})", self.reg, self.kind, self.value)
    }
}

/// One entry of a run's trace: an internal register step or a marker for
/// the `i`-th high-level event recorded in the run's [`crate::EventLog`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceItem {
    /// An internal register step.
    Step(StepRecord),
    /// The `i`-th high-level event of the event log.
    Hi(usize),
}

/// One scheduling decision: the set of processes that were ready to take
/// a step and the one the scheduler chose.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Decision {
    /// Processes that could have been scheduled.
    pub runnable: Vec<usize>,
    /// The process that was scheduled.
    pub chosen: usize,
}

/// Read-only view handed to a [`Scheduler`] at each decision point.
///
/// A *strong adversary* in the paper's sense: by the time the scheduler
/// is consulted, every process is quiescent, so the view (plus any
/// register handles the scheduler captured at setup) reflects the entire
/// configuration, including the effects of all previous steps.
pub struct SchedView<'a> {
    /// Processes ready to take a step, in ascending order.
    pub runnable: &'a [usize],
    /// The full trace so far.
    pub trace: &'a [TraceItem],
    /// Steps taken so far by each process.
    pub steps_per_proc: &'a [u64],
}

impl<'a> SchedView<'a> {
    /// The most recent register step, if any.
    pub fn last_step(&self) -> Option<&StepRecord> {
        self.trace.iter().rev().find_map(|t| match t {
            TraceItem::Step(s) => Some(s),
            TraceItem::Hi(_) => None,
        })
    }

    /// Total number of register steps taken so far.
    pub fn total_steps(&self) -> u64 {
        self.steps_per_proc.iter().sum()
    }
}

/// Result of a completed (or aborted) run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// `true` if every process ran to completion; `false` if the step
    /// budget was exhausted first.
    pub completed: bool,
    /// Steps taken by each process.
    pub steps_per_proc: Vec<u64>,
    /// Interleaved trace of register steps and high-level event markers.
    pub trace: Vec<TraceItem>,
    /// The scheduling decisions taken, in order.
    pub decisions: Vec<Decision>,
}

impl RunOutcome {
    /// Total number of steps, including scheduled no-op pauses.
    pub fn total_steps(&self) -> u64 {
        self.steps_per_proc.iter().sum()
    }

    /// The steps of the trace, in order (including pauses).
    pub fn steps(&self) -> impl Iterator<Item = &StepRecord> {
        self.trace.iter().filter_map(|t| match t {
            TraceItem::Step(s) => Some(s),
            TraceItem::Hi(_) => None,
        })
    }

    /// Number of *shared-memory* steps taken by process `p` (excludes
    /// scheduled pauses) — the quantity the paper's step-complexity
    /// theorems count.
    pub fn shared_steps_of(&self, p: usize) -> u64 {
        self.steps()
            .filter(|s| s.proc == p && s.kind != AccessKind::Local)
            .count() as u64
    }

    /// Total number of shared-memory steps (excludes scheduled pauses).
    pub fn shared_steps(&self) -> u64 {
        self.steps().filter(|s| s.kind != AccessKind::Local).count() as u64
    }
}

/// A simulated process body.
pub type Program = Box<dyn FnOnce(ProcCtx) + Send + 'static>;

/// Handle passed to each simulated process.
#[derive(Clone)]
pub struct ProcCtx {
    pub(crate) world: SimWorld,
    pub(crate) pid: usize,
}

impl ProcCtx {
    /// The identifier of this process.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// The world this process runs in.
    pub fn world(&self) -> &SimWorld {
        &self.world
    }

    /// Takes one scheduled no-op step.
    ///
    /// Call this before invoking a high-level operation to faithfully
    /// model the paper's asynchronous system: a process performs its
    /// next invocation only when the adversary schedules it. Without the
    /// pause, a process would invoke its next operation "for free" in
    /// the local computation following its previous response, putting
    /// invocation events into transcript prefixes the adversary never
    /// scheduled it into — which changes which operations are pending in
    /// a prefix and therefore matters to strong-linearizability analysis
    /// (it is exactly the difference between the paper's `T2` having or
    /// not having `dw_{j+1}` pending during `dr2`).
    pub fn pause(&self) {
        self.world
            .step("(local)", AccessKind::Local, || ((), String::new()));
    }

    /// The identifier as an `sl_spec::ProcId`.
    pub fn proc_id(&self) -> sl_spec::ProcId {
        sl_spec::ProcId(self.pid)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Phase {
    /// Executing local computation (or not yet started).
    Running,
    /// Blocked at a sync point, ready to take a shared-memory step.
    Waiting,
    /// Program finished.
    Done,
}

pub(crate) struct WorldState {
    pub(crate) phase: Vec<Phase>,
    pub(crate) granted: Option<usize>,
    pub(crate) aborted: bool,
    pub(crate) trace: Vec<TraceItem>,
    pub(crate) steps_per_proc: Vec<u64>,
    decisions: Vec<Decision>,
    started: bool,
}

pub(crate) struct WorldInner {
    pub(crate) state: Mutex<WorldState>,
    /// Signalled when a grant is issued or the run is aborted.
    pub(crate) proc_cv: Condvar,
    /// Signalled when a process changes phase.
    pub(crate) coord_cv: Condvar,
}

/// Panic payload used to unwind simulated processes when a run is
/// aborted (step budget exhausted).
pub(crate) struct SimAbort;

static HOOK_INSTALLED: std::sync::Once = std::sync::Once::new();
static IN_SIM_ABORT: AtomicBool = AtomicBool::new(false);

fn install_quiet_abort_hook() {
    HOOK_INSTALLED.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if IN_SIM_ABORT.load(Ordering::SeqCst)
                && info.payload().downcast_ref::<SimAbort>().is_some()
            {
                return; // expected control-flow unwind; stay quiet
            }
            previous(info);
        }));
    });
}

/// A deterministic simulated shared-memory system with `n` processes.
///
/// Construction allocates the world; [`SimWorld::mem`] hands out the
/// [`SimMem`] backend used to allocate registers *before* the run; and
/// [`SimWorld::run`] executes one run to completion (or until the step
/// budget is exhausted). A world is single-shot: it can run at most once.
#[derive(Clone)]
pub struct SimWorld {
    pub(crate) inner: Arc<WorldInner>,
    n: usize,
}

impl std::fmt::Debug for SimWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimWorld(n={})", self.n)
    }
}

thread_local! {
    pub(crate) static CURRENT_PROC: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

impl SimWorld {
    /// Creates a world with `n` simulated processes.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        install_quiet_abort_hook();
        SimWorld {
            inner: Arc::new(WorldInner {
                state: Mutex::new(WorldState {
                    phase: vec![Phase::Running; n],
                    granted: None,
                    aborted: false,
                    trace: Vec::new(),
                    steps_per_proc: vec![0; n],
                    decisions: Vec::new(),
                    started: false,
                }),
                proc_cv: Condvar::new(),
                coord_cv: Condvar::new(),
            }),
            n,
        }
    }

    /// Number of simulated processes.
    pub fn processes(&self) -> usize {
        self.n
    }

    /// The register allocator of this world.
    pub fn mem(&self) -> SimMem {
        SimMem {
            world: self.clone(),
        }
    }

    /// Runs `programs` (one per process) under `scheduler`, admitting at
    /// most `max_steps` shared-memory steps in total.
    ///
    /// Returns when every program finished, or — if the budget runs out —
    /// after force-unwinding all still-running programs (in which case
    /// `completed` is `false`).
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != n`, if the world has already run, or
    /// if a simulated program itself panics with an unexpected payload.
    pub fn run(
        &self,
        programs: Vec<Program>,
        scheduler: &mut dyn Scheduler,
        max_steps: u64,
    ) -> RunOutcome {
        assert_eq!(programs.len(), self.n, "one program per process");
        {
            let mut st = self.inner.state.lock().unwrap();
            assert!(!st.started, "a SimWorld can run only once");
            st.started = true;
        }

        let handles: Vec<_> = programs
            .into_iter()
            .enumerate()
            .map(|(pid, program)| {
                let world = self.clone();
                std::thread::Builder::new()
                    .name(format!("sim-p{pid}"))
                    .spawn(move || {
                        CURRENT_PROC.with(|c| c.set(Some(pid)));
                        let ctx = ProcCtx {
                            world: world.clone(),
                            pid,
                        };
                        let result = panic::catch_unwind(AssertUnwindSafe(|| program(ctx)));
                        {
                            let mut st = world.inner.state.lock().unwrap();
                            st.phase[pid] = Phase::Done;
                            world.inner.coord_cv.notify_all();
                        }
                        if let Err(payload) = result {
                            if payload.downcast_ref::<SimAbort>().is_none() {
                                panic::resume_unwind(payload);
                            }
                        }
                    })
                    .expect("spawn simulated process")
            })
            .collect();

        self.coordinate(scheduler, max_steps);

        for h in handles {
            h.join().expect("simulated process panicked");
        }

        let mut st = self.inner.state.lock().unwrap();
        RunOutcome {
            completed: !st.aborted,
            steps_per_proc: st.steps_per_proc.clone(),
            trace: std::mem::take(&mut st.trace),
            decisions: std::mem::take(&mut st.decisions),
        }
    }

    fn coordinate(&self, scheduler: &mut dyn Scheduler, max_steps: u64) {
        loop {
            let mut st = self.inner.state.lock().unwrap();
            // Wait until every process is quiescent (waiting or done).
            while st.phase.contains(&Phase::Running) {
                st = self.inner.coord_cv.wait(st).unwrap();
            }
            let runnable: Vec<usize> = st
                .phase
                .iter()
                .enumerate()
                .filter(|(_, p)| **p == Phase::Waiting)
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                return; // everyone done
            }
            let total: u64 = st.steps_per_proc.iter().sum();
            if total >= max_steps {
                st.aborted = true;
                IN_SIM_ABORT.store(true, Ordering::SeqCst);
                self.inner.proc_cv.notify_all();
                while st.phase.iter().any(|p| *p != Phase::Done) {
                    st = self.inner.coord_cv.wait(st).unwrap();
                }
                return;
            }
            let view = SchedView {
                runnable: &runnable,
                trace: &st.trace,
                steps_per_proc: &st.steps_per_proc,
            };
            let chosen = scheduler.pick(&view);
            assert!(
                runnable.contains(&chosen),
                "scheduler chose non-runnable process {chosen} (runnable: {runnable:?})"
            );
            st.decisions.push(Decision { runnable, chosen });
            st.granted = Some(chosen);
            self.inner.proc_cv.notify_all();
            // Wait until the chosen process consumes the grant; without
            // this the coordinator could observe the world still quiescent
            // and issue a second grant for the same step.
            while st.granted.is_some() {
                st = self.inner.coord_cv.wait(st).unwrap();
            }
        }
    }

    /// Executes one shared-memory step on behalf of the calling simulated
    /// process: parks until the scheduler grants the step, performs
    /// `access` atomically, and records the resulting [`StepRecord`].
    pub(crate) fn step<R>(
        &self,
        reg_name: &str,
        kind: AccessKind,
        access: impl FnOnce() -> (R, String),
    ) -> R {
        let pid = CURRENT_PROC.with(|c| c.get()).unwrap_or_else(|| {
            panic!("simulated register accessed outside a SimWorld::run program")
        });
        let mut st = self.inner.state.lock().unwrap();
        st.phase[pid] = Phase::Waiting;
        self.inner.coord_cv.notify_all();
        loop {
            if st.aborted {
                drop(st);
                panic::panic_any(SimAbort);
            }
            if st.granted == Some(pid) {
                break;
            }
            st = self.inner.proc_cv.wait(st).unwrap();
        }
        st.granted = None;
        st.phase[pid] = Phase::Running;
        st.steps_per_proc[pid] += 1;
        self.inner.coord_cv.notify_all();
        let (result, value) = access();
        st.trace.push(TraceItem::Step(StepRecord {
            proc: pid,
            reg: reg_name.to_string(),
            kind,
            value,
        }));
        result
    }

    /// Records a high-level event marker in the trace; used by
    /// [`crate::EventLog`].
    pub(crate) fn push_hi_marker(&self, index: usize) {
        let mut st = self.inner.state.lock().unwrap();
        st.trace.push(TraceItem::Hi(index));
    }
}
