//! The simulated world: front end of the step VM and trace recording.
//!
//! [`SimWorld::run`] executes simulated processes as **fibers** inside a
//! single-threaded step VM (see [`crate::vm`]): one shared-memory step
//! is a userspace context switch, not an OS thread handoff. The
//! original thread-per-process engine (kept for one release as the
//! `exp_sim_throughput` baseline) has been retired; the portable-fibers
//! parity suite (`--features portable-fibers`) is the compatibility
//! gate for the fiber implementations.

use std::panic::{self, Location};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sl_check::{OpSym, RegSym, StepCode, StepKind, ValueId};

use crate::mem::SimMem;
use crate::sched::Scheduler;
use crate::vm::VmCore;

/// Kind of a register access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// A register read.
    Read,
    /// A register write.
    Write,
    /// An atomic read-modify-write (only on `RmwCell`s, which model
    /// stronger base objects than plain registers).
    Rmw,
    /// A scheduled no-op ([`ProcCtx::pause`]): the process consumes a
    /// scheduling decision without touching shared memory. Used to model
    /// that a process invokes its next high-level operation only when
    /// the adversary schedules it.
    Local,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
            AccessKind::Rmw => write!(f, "rmw"),
            AccessKind::Local => write!(f, "local"),
        }
    }
}

impl From<AccessKind> for StepKind {
    fn from(kind: AccessKind) -> StepKind {
        match kind {
            AccessKind::Read => StepKind::Read,
            AccessKind::Write => StepKind::Write,
            AccessKind::Rmw => StepKind::Rmw,
            AccessKind::Local => StepKind::Local,
        }
    }
}

/// Identity of a simulated register, assigned densely at allocation
/// time (the first register a world allocates is `RegId(0)`, and so
/// on). Allocation order is deterministic for a deterministic setup, so
/// ids are stable across the replays of an exploration — which is what
/// lets the explorer decide whether two pending accesses commute.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegId(pub u32);

impl RegId {
    /// The pseudo-register of scheduled no-op steps ([`ProcCtx::pause`]).
    pub const LOCAL: RegId = RegId(u32::MAX);
}

/// The shared-memory access a quiescent process will perform when next
/// scheduled: its register and access kind, declared *before* the step
/// executes.
///
/// This is what the step VM knows (and the legacy threaded engine does
/// not): a fiber announces its access when it parks, so schedulers and
/// the exploring adversary can see, for every runnable process, what
/// that process is about to do. Sleep-set pruning is built on this.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PendingAccess {
    /// The register about to be accessed ([`RegId::LOCAL`] for pauses).
    pub reg: RegId,
    /// The kind of access.
    pub kind: AccessKind,
}

impl PendingAccess {
    /// The pending access of a scheduled no-op — also the conservative
    /// stand-in when a process's pending access is unknown (it
    /// conflicts with everything, so nothing is wrongly commuted).
    pub const LOCAL: PendingAccess = PendingAccess {
        reg: RegId::LOCAL,
        kind: AccessKind::Local,
    };

    /// Whether this is a scheduled no-op (a [`ProcCtx::pause`]).
    pub fn is_local(&self) -> bool {
        self.reg == RegId::LOCAL || self.kind == AccessKind::Local
    }

    /// Whether two pending accesses of *different* processes commute:
    /// executing them in either order yields the same memory state, the
    /// same two step records, and the same continuations.
    ///
    /// Conservative: accesses to the same register never commute (even
    /// two reads), and `Local` steps never commute with anything —
    /// pauses carry invocation/response placement, which
    /// strong-linearizability analysis is sensitive to.
    pub fn independent(&self, other: &PendingAccess) -> bool {
        !self.is_local() && !other.is_local() && self.reg != other.reg
    }
}

/// Record of one shared-memory step: the per-world dense [`RegId`]
/// (what explorer commutativity keys on) plus the packed, globally
/// interned [`StepCode`] — the canonical transcript unit. The record is
/// `Copy`: recording a traced step allocates nothing and renders
/// nothing; labels are decoded lazily on report paths only.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StepRecord {
    /// Process that took the step.
    pub proc: usize,
    /// Read, write, rmw, or pause.
    pub kind: AccessKind,
    /// Dense per-world identity of the accessed register
    /// ([`RegId::LOCAL`] for pauses) — what the explorer keys
    /// commutativity on.
    pub reg_id: RegId,
    /// The packed step identity (process, kind, interned register,
    /// interned value) that flows unconverted into `sl-check`.
    pub code: StepCode,
}

impl StepRecord {
    /// The interned value read/written by this step ([`ValueId::NONE`]
    /// for pauses and untraced runs).
    pub fn value(&self) -> ValueId {
        self.code.value().unwrap_or(ValueId::NONE)
    }

    /// The globally interned register identity.
    pub fn reg_sym(&self) -> RegSym {
        self.code.reg().unwrap_or(RegSym::LOCAL)
    }

    /// The register's allocation name.
    pub fn reg_name(&self) -> &'static str {
        self.reg_sym().name()
    }

    /// The register's allocation site as `(file, line)` — the
    /// `Mem::alloc` call site recorded by `SimMem`.
    pub fn site(&self) -> (&'static str, u32) {
        self.reg_sym().site()
    }

    /// A stable label describing the step (register, kind, value),
    /// decoded from the packed code.
    pub fn label(&self) -> String {
        self.code.label()
    }

    /// Appends [`StepRecord::label`] to `buf` — report paths reuse one
    /// buffer across a run's steps instead of allocating per step.
    pub fn write_label(&self, buf: &mut String) {
        self.code.write_label(buf);
    }

    /// A human-readable one-line rendering including the register's
    /// allocation site — the format shrunk fuzz counterexamples print.
    pub fn detailed(&self) -> String {
        let mut buf = String::new();
        self.write_detailed(&mut buf);
        buf
    }

    /// Appends [`StepRecord::detailed`] to `buf`.
    pub fn write_detailed(&self, buf: &mut String) {
        use std::fmt::Write;
        let (file, line) = self.site();
        let _ = write!(buf, "p{} ", self.proc);
        self.code.write_label(buf);
        let _ = write!(buf, " @ {file}:{line}");
    }
}

/// One entry of a run's trace: an internal register step or a marker for
/// the `i`-th high-level event recorded in the run's [`crate::EventLog`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceItem {
    /// An internal register step.
    Step(StepRecord),
    /// The `i`-th high-level event of the event log. Without further
    /// qualification the marker is treated as a *response or unknown*
    /// event by every consumer that distinguishes marker kinds — the
    /// conservative reading (responses pin real-time order, so steps
    /// carrying them never commute with anything).
    Hi(usize),
    /// The `i`-th high-level event of the event log, known to be an
    /// **invocation**, carrying the interned identity of the invoked
    /// operation. [`crate::EventLog::invoke`] emits this; the
    /// explorer's static placement relaxation (`PruneMode::StaticDpor`)
    /// is licensed only for steps whose riding markers are all
    /// invocations, and attributes every subsequent step of the
    /// activation to the carried [`OpSym`] (the key of the
    /// certificate's op-pair matrix). Checkers and transcripts treat it
    /// exactly like [`TraceItem::Hi`].
    HiInvoke(usize, OpSym),
}

/// One scheduling decision: the set of processes that were ready to take
/// a step and the one the scheduler chose.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Decision {
    /// Processes that could have been scheduled.
    pub runnable: Vec<usize>,
    /// The process that was scheduled.
    pub chosen: usize,
    /// The access each runnable process was about to perform, aligned
    /// with `runnable`.
    pub pending: Vec<PendingAccess>,
}

/// Read-only view handed to a [`Scheduler`] at each decision point.
///
/// A *strong adversary* in the paper's sense: by the time the scheduler
/// is consulted, every process is quiescent, so the view (plus any
/// register handles the scheduler captured at setup) reflects the entire
/// configuration, including the effects of all previous steps.
pub struct SchedView<'a> {
    /// Processes ready to take a step, in ascending order.
    pub runnable: &'a [usize],
    /// The full trace so far.
    pub trace: &'a [TraceItem],
    /// Steps taken so far by each process.
    pub steps_per_proc: &'a [u64],
    /// The access each runnable process is about to perform, aligned
    /// with `runnable`.
    pub pending: &'a [PendingAccess],
}

impl<'a> SchedView<'a> {
    /// The most recent register step, if any.
    pub fn last_step(&self) -> Option<&StepRecord> {
        self.trace.iter().rev().find_map(|t| match t {
            TraceItem::Step(s) => Some(s),
            TraceItem::Hi(_) | TraceItem::HiInvoke(..) => None,
        })
    }

    /// Total number of register steps taken so far.
    pub fn total_steps(&self) -> u64 {
        self.steps_per_proc.iter().sum()
    }

    /// The pending access of runnable process `p`, when known.
    pub fn pending_of(&self, p: usize) -> Option<PendingAccess> {
        self.runnable
            .iter()
            .position(|&q| q == p)
            .and_then(|i| self.pending.get(i).copied())
    }
}

/// What a run records while it executes.
///
/// Everything defaults to **on** ([`SimWorld::run`] records the full
/// trace and every decision, like the engine always did). Turning
/// recording off removes per-step allocations from the VM's hot path:
/// the explorer runs with `record_decisions: false` (its schedule
/// driver tracks the decision script itself), and pure throughput
/// measurement uses [`RunConfig::counted`]. With `record_trace: false`
/// value labels are never even rendered — the register access closure
/// is told not to produce them.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Record the interleaved step/event trace (and render value
    /// labels). Without it `RunOutcome::trace` is empty.
    pub record_trace: bool,
    /// Record a [`Decision`] per scheduling choice. Without it
    /// `RunOutcome::decisions` is empty.
    pub record_decisions: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            record_trace: true,
            record_decisions: true,
        }
    }
}

impl RunConfig {
    /// Records everything (the [`SimWorld::run`] default).
    pub fn full() -> Self {
        RunConfig::default()
    }

    /// Records the trace but not the decisions — what the explorer's
    /// replays use.
    pub fn traced() -> Self {
        RunConfig {
            record_trace: true,
            record_decisions: false,
        }
    }

    /// Records nothing but step counts — engine-overhead measurement.
    pub fn counted() -> Self {
        RunConfig {
            record_trace: false,
            record_decisions: false,
        }
    }
}

/// Result of a completed (or aborted) run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// `true` if every process ran to completion; `false` if the step
    /// budget was exhausted first.
    pub completed: bool,
    /// Steps taken by each process.
    pub steps_per_proc: Vec<u64>,
    /// Interleaved trace of register steps and high-level event markers.
    pub trace: Vec<TraceItem>,
    /// The scheduling decisions taken, in order.
    pub decisions: Vec<Decision>,
}

impl RunOutcome {
    /// Total number of steps, including scheduled no-op pauses.
    pub fn total_steps(&self) -> u64 {
        self.steps_per_proc.iter().sum()
    }

    /// The steps of the trace, in order (including pauses).
    pub fn steps(&self) -> impl Iterator<Item = &StepRecord> {
        self.trace.iter().filter_map(|t| match t {
            TraceItem::Step(s) => Some(s),
            TraceItem::Hi(_) | TraceItem::HiInvoke(..) => None,
        })
    }

    /// Number of *shared-memory* steps taken by process `p` (excludes
    /// scheduled pauses) — the quantity the paper's step-complexity
    /// theorems count.
    pub fn shared_steps_of(&self, p: usize) -> u64 {
        self.steps()
            .filter(|s| s.proc == p && s.kind != AccessKind::Local)
            .count() as u64
    }

    /// Total number of shared-memory steps (excludes scheduled pauses).
    pub fn shared_steps(&self) -> u64 {
        self.steps().filter(|s| s.kind != AccessKind::Local).count() as u64
    }

    /// The schedule of this run as a decision script (the chosen process
    /// at every decision point) — replaying it through a
    /// [`crate::Scripted`] scheduler reproduces the run exactly.
    pub fn script(&self) -> Vec<usize> {
        self.decisions.iter().map(|d| d.chosen).collect()
    }
}

/// A simulated process body.
pub type Program = Box<dyn FnOnce(ProcCtx) + Send + 'static>;

/// Handle passed to each simulated process.
#[derive(Clone)]
pub struct ProcCtx {
    pub(crate) world: SimWorld,
    pub(crate) pid: usize,
}

impl ProcCtx {
    /// The identifier of this process.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// The world this process runs in.
    pub fn world(&self) -> &SimWorld {
        &self.world
    }

    /// Takes one scheduled no-op step.
    ///
    /// Call this before invoking a high-level operation to faithfully
    /// model the paper's asynchronous system: a process performs its
    /// next invocation only when the adversary schedules it. Without the
    /// pause, a process would invoke its next operation "for free" in
    /// the local computation following its previous response, putting
    /// invocation events into transcript prefixes the adversary never
    /// scheduled it into — which changes which operations are pending in
    /// a prefix and therefore matters to strong-linearizability analysis
    /// (it is exactly the difference between the paper's `T2` having or
    /// not having `dw_{j+1}` pending during `dr2`).
    pub fn pause(&self) {
        self.world
            .step(RegId::LOCAL, RegSym::LOCAL, AccessKind::Local, |_| {
                ((), ValueId::NONE)
            });
    }

    /// The identifier as an `sl_spec::ProcId`.
    pub fn proc_id(&self) -> sl_spec::ProcId {
        sl_spec::ProcId(self.pid)
    }
}

pub(crate) struct WorldState {
    /// Set while a run is executing or after one completed; cleared by
    /// [`SimWorld::reset`], which makes the world runnable again.
    pub(crate) started: bool,
    /// Number of registers allocated before the first run (the
    /// allocation-site table a reset preserves); registers allocated
    /// *during* a run are discarded by the reset so replayed setups
    /// re-derive identical dense [`RegId`]s.
    pub(crate) reg_floor: Option<usize>,
}

/// Metadata recorded for every allocated register.
pub(crate) struct RegMeta {
    /// Globally interned identity (name + allocation site).
    pub(crate) sym: RegSym,
    /// Restores the register's cell to its `alloc`-time initial value.
    pub(crate) reset: Box<dyn Fn() + Send + Sync>,
}

pub(crate) struct WorldInner {
    pub(crate) state: Mutex<WorldState>,
    /// Registry of allocated registers, in allocation order.
    pub(crate) registry: Mutex<Vec<RegMeta>>,
    /// The step VM currently running this world, when one is (null
    /// otherwise). Register accesses dispatch on this: non-null means
    /// "suspend the calling fiber", null means no run is active — a
    /// register access then is a caller bug and panics.
    pub(crate) active_vm: AtomicPtr<VmCore>,
    /// Recycled VM core and trace buffers: a replay on a reset world
    /// re-executes on warm allocations instead of fresh ones.
    pub(crate) spare: Mutex<crate::vm::SpareVm>,
    /// Bumped whenever a reset truncates in-run register allocations —
    /// surfaced as [`sl_mem::Mem::epoch`] so objects that cache mid-run
    /// register handles (e.g. `UnaryMaxRegister`'s growable cell array)
    /// drop them instead of reading stale previous-replay values.
    pub(crate) epoch: AtomicU64,
}

/// Panic payload used to unwind simulated processes when a run is
/// aborted (step budget exhausted).
pub(crate) struct SimAbort;

static HOOK_INSTALLED: std::sync::Once = std::sync::Once::new();
pub(crate) static IN_SIM_ABORT: AtomicBool = AtomicBool::new(false);

fn install_quiet_abort_hook() {
    HOOK_INSTALLED.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if IN_SIM_ABORT.load(Ordering::SeqCst)
                && info.payload().downcast_ref::<SimAbort>().is_some()
            {
                return; // expected control-flow unwind; stay quiet
            }
            previous(info);
        }));
    });
}

/// A deterministic simulated shared-memory system with `n` processes.
///
/// Construction allocates the world; [`SimWorld::mem`] hands out the
/// [`SimMem`] backend used to allocate registers *before* the run; and
/// [`SimWorld::run`] executes one run to completion (or until the step
/// budget is exhausted) on the step VM. A world is single-shot: it can
/// run at most once.
#[derive(Clone)]
pub struct SimWorld {
    pub(crate) inner: Arc<WorldInner>,
    n: usize,
}

impl std::fmt::Debug for SimWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimWorld(n={})", self.n)
    }
}

impl SimWorld {
    /// Creates a world with `n` simulated processes.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        install_quiet_abort_hook();
        SimWorld {
            inner: Arc::new(WorldInner {
                state: Mutex::new(WorldState {
                    started: false,
                    reg_floor: None,
                }),
                registry: Mutex::new(Vec::new()),
                active_vm: AtomicPtr::new(std::ptr::null_mut()),
                spare: Mutex::new(crate::vm::SpareVm::default()),
                epoch: AtomicU64::new(0),
            }),
            n,
        }
    }

    /// Makes a finished world runnable again, byte-identically to a
    /// freshly built one: every register allocated *before* the first
    /// run is restored to its `alloc`-time initial value (names, dense
    /// [`RegId`]s, and allocation sites are kept — that table is what a
    /// replayed setup must agree with), registers allocated *during* a
    /// run are dropped from the registry so a replayed program
    /// re-allocates them under the same ids, and the single-shot run
    /// latch is cleared.
    ///
    /// Together with rebuilding the per-process programs (closures over
    /// the same handles), this is what lets the explorer replay
    /// thousands of schedules per second on one warm world instead of
    /// building a fresh `SimWorld` — with fresh registers, object, and
    /// buffers — per schedule. The object under test must keep all its
    /// *mutable* state in `Mem` registers (true of every shared-memory
    /// algorithm in this workspace; process-local state belongs in
    /// handles, which are rebuilt per replay).
    ///
    /// # Panics
    ///
    /// Panics if called while a run is executing.
    pub fn reset(&self) {
        assert!(
            self.inner.active_vm.load(Ordering::SeqCst).is_null(),
            "cannot reset a running world"
        );
        let mut st = self.inner.state.lock().unwrap();
        st.started = false;
        let floor = st.reg_floor;
        drop(st);
        self.reset_registers(floor);
    }

    /// Restores register values (and truncates in-run allocations to
    /// `floor`, when one was recorded). Shared by [`SimWorld::reset`]
    /// and [`SimMem::reset`].
    pub(crate) fn reset_registers(&self, floor: Option<usize>) {
        let mut registry = self.inner.registry.lock().unwrap();
        if let Some(floor) = floor {
            if registry.len() > floor {
                // In-run allocations are about to be dropped from the
                // registry; any handle an object cached for them now
                // reads values the reset below will never restore. Bump
                // the epoch so `Mem::epoch`-aware caches invalidate.
                self.inner.epoch.fetch_add(1, Ordering::SeqCst);
            }
            registry.truncate(floor);
        }
        for meta in registry.iter() {
            (meta.reset)();
        }
    }

    /// Number of simulated processes.
    pub fn processes(&self) -> usize {
        self.n
    }

    /// The register allocator of this world.
    pub fn mem(&self) -> SimMem {
        SimMem {
            world: self.clone(),
        }
    }

    /// Number of registers allocated so far.
    pub fn register_count(&self) -> usize {
        self.inner.registry.lock().unwrap().len()
    }

    /// The name a register was allocated under.
    pub fn register_name(&self, id: RegId) -> Option<&'static str> {
        self.inner
            .registry
            .lock()
            .unwrap()
            .get(id.0 as usize)
            .map(|m| m.sym.name())
    }

    /// Records a register allocation; called by [`SimMem`]. `reset`
    /// restores the register's cell to its initial value on
    /// [`SimWorld::reset`]. The returned [`RegSym`] is the register's
    /// globally interned identity — identical across the per-worker
    /// worlds of a parallel exploration, which is what keeps step codes
    /// comparable between them.
    pub(crate) fn register(
        &self,
        name: &str,
        site: &'static Location<'static>,
        reset: Box<dyn Fn() + Send + Sync>,
    ) -> (RegId, RegSym) {
        let sym = RegSym::intern(name, site.file(), site.line(), site.column());
        let mut registry = self.inner.registry.lock().unwrap();
        let id = RegId(u32::try_from(registry.len()).expect("too many registers"));
        registry.push(RegMeta { sym, reset });
        (id, sym)
    }

    /// Returns a finished run's trace and decision buffers to the
    /// world's spare pool, so the next run on this (reset) world reuses
    /// their capacity instead of allocating fresh ones. Purely an
    /// optimisation — dropping the outcome instead is always correct.
    pub fn recycle(&self, outcome: RunOutcome) {
        let RunOutcome {
            mut trace,
            mut decisions,
            ..
        } = outcome;
        trace.clear();
        decisions.clear();
        let mut spare = self.inner.spare.lock().unwrap();
        if spare.trace.capacity() < trace.capacity() {
            spare.trace = trace;
        }
        if spare.decisions.capacity() < decisions.capacity() {
            spare.decisions = decisions;
        }
    }

    /// Runs `programs` (one per process) under `scheduler`, admitting at
    /// most `max_steps` shared-memory steps in total.
    ///
    /// Processes execute as fibers inside the single-threaded step VM:
    /// every step is a userspace context switch, which is what makes
    /// the explorer's replays cheap. Returns when every program
    /// finished, or — if the budget runs out — after force-unwinding all
    /// still-suspended programs (in which case `completed` is `false`).
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != n`, if the world has already run, or
    /// if a simulated program itself panics with an unexpected payload.
    pub fn run(
        &self,
        programs: Vec<Program>,
        scheduler: &mut dyn Scheduler,
        max_steps: u64,
    ) -> RunOutcome {
        crate::vm::run_vm(self, programs, scheduler, max_steps, RunConfig::full())
    }

    /// Like [`SimWorld::run`], but with explicit control over what the
    /// run records (see [`RunConfig`]).
    pub fn run_with(
        &self,
        programs: Vec<Program>,
        scheduler: &mut dyn Scheduler,
        max_steps: u64,
        config: RunConfig,
    ) -> RunOutcome {
        crate::vm::run_vm(self, programs, scheduler, max_steps, config)
    }

    /// Executes one shared-memory step on behalf of the calling simulated
    /// process: parks the calling fiber with its declared
    /// [`PendingAccess`] until the scheduler grants the step, performs
    /// `access` atomically, and records the resulting [`StepRecord`].
    /// The access closure receives whether the run records a trace and
    /// returns the interned [`ValueId`] of the value it read/wrote
    /// ([`ValueId::NONE`] when not recording) — no rendering happens.
    pub(crate) fn step<R>(
        &self,
        reg_id: RegId,
        sym: RegSym,
        kind: AccessKind,
        access: impl FnOnce(bool) -> (R, ValueId),
    ) -> R {
        let vm = self.inner.active_vm.load(Ordering::Relaxed);
        assert!(
            !vm.is_null(),
            "simulated register accessed outside a SimWorld::run program"
        );
        crate::vm::step_on(vm, reg_id, sym, kind, access)
    }

    /// Records a high-level event marker in the trace; used by
    /// [`crate::EventLog`]. `invoke` carries the invoked operation's
    /// identity and selects [`TraceItem::HiInvoke`]; `None` records the
    /// conservative [`TraceItem::Hi`] (response or unknown).
    pub(crate) fn push_hi_marker(&self, index: usize, invoke: Option<OpSym>) {
        let vm = self.inner.active_vm.load(Ordering::Relaxed);
        assert!(
            !vm.is_null(),
            "high-level event recorded outside a SimWorld::run program"
        );
        crate::vm::push_hi_on(vm, index, invoke);
    }
}
