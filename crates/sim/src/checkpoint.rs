//! Crash-resilient exploration: the checkpoint wire format, the atomic
//! on-disk store, deterministic fault injection, and poisoned-task
//! reports.
//!
//! A deep DPOR exploration is hours of replay work held in one
//! process's memory. This module makes that work survivable: the
//! explorer's root walk periodically freezes its outstanding frontier —
//! the spine bookkeeping of the depth-first walk plus every delegated
//! [`SubtreeTask`](crate::Explorer) not yet joined — into a versioned,
//! checksummed checkpoint file, and
//! [`Explorer::explore_resumable`](crate::Explorer::explore_resumable)
//! resumes from it with results **bit-identical** to an uninterrupted
//! run (schedule counts, cut/pruned telemetry, merged `TreeDag`
//! structural hash, verdict).
//!
//! # Checkpoint format (version 1)
//!
//! A checkpoint is one JSON object with a fixed field order, emitted by
//! a canonical compact serializer (no whitespace) so that
//! serialize → parse → serialize is byte-identical:
//!
//! ```text
//! {"checksum":C,"version":1,"workload":W,"mode":M,"workers":N,
//!  "seq":S,"stem_len":L,
//!  "counters":{"runs":..,"cut_runs":..,"pruned":..,"retried":..,"quarantined":..},
//!  "shard_hashes":[..],
//!  "next":{"prefix":[..],"sleep":..,"new_from":..},
//!  "spine":[{"chosen":..,"done":..,"sleep":..,"backtrack":[..],
//!            "runnable":[..],"pending":[{"reg":..,"kind":".."},..],
//!            "wakeups":[[{"proc":..,"reg":..,"kind":".."},..],..],
//!            "tasks":[{"id":..,"proc":..,"prefix":[..],
//!                      "accesses":[{"reg":..,"kind":".."},..],
//!                      "sleep":..,"floor":..},..]},..]}
//! ```
//!
//! `checksum` is FNV-1a-64 over the canonical serialization of every
//! *other* field; the parser re-serializes what it read and verifies
//! the digest, so torn or doctored files are rejected with a named
//! diagnostic, never half-loaded. Only plain data crosses the file
//! boundary: decision prefixes, declared accesses (`RegId` is the
//! world-local dense allocation index, stable across processes for the
//! same deterministic workload), sleep masks, and floors. Interned
//! execution metadata (`ValueId`/`RegSym`/`OpSym`) is deliberately
//! *not* persisted — the engine re-derives it from the first replay
//! after resume, exactly as it refreshes it on every replay anyway.
//!
//! The loader is fail-closed end to end: unknown fields, duplicate
//! keys, version or checksum mismatches, duplicate task ids, empty
//! frontiers, unsorted or stale shard hashes, and metadata that does
//! not match the resuming explorer (workload, mode, worker count, stem
//! length) each abort with their own diagnostic.
//!
//! # Budget semantics
//!
//! [`CheckpointPolicy`] carries a wall-clock `deadline` and a
//! `max_schedules` budget (counted over the *union* of the resumed base
//! and the live run, completed + cut replays). The root walk checks
//! both at every replay boundary; on expiry it writes a final
//! checkpoint, raises the drain flag (workers abandon their in-flight
//! subtrees at their next replay boundary; the abandoned partial work
//! is never counted, so the checkpoint stays exact), and returns a
//! partial, resumable [`ExploreOutcome`](crate::ExploreOutcome) with
//! `drained` and `partial` set — degradation is visible, never silent.
//!
//! # Quarantine soundness
//!
//! A worker panic inside a subtree replay (an object bug, the
//! fail-closed `validate_race` diagnostic, a fiber sentinel escape) no
//! longer takes the process down: the task is retried with a fresh
//! bracket up to the retry limit (deterministic backoff), then
//! **quarantined** — its slot completes with zeroed totals, a
//! [`PoisonReport`] carrying the replayable decision prefix, and
//! `quarantined = 1` — so every join completes and the rest of the
//! frontier still runs. Soundness: a quarantined subtree's schedules
//! are *unexplored*, so the outcome marks itself `partial` and clears
//! `exhausted`; a quarantined run can therefore never produce a false
//! PASS — any verdict derived from it is explicitly a verdict on a
//! partial schedule space. Counters stay exact because a failed
//! attempt's partially explored sub-slots are never joined (their
//! outputs are dropped with the unwound spine) and its partially
//! ingested DAG shards are duplicates of the retry's — the hash-consed
//! transcript *set* is unchanged by re-ingestion.
//!
//! # Fault injection
//!
//! [`FaultPlan`] injects one deterministic crash at a named point —
//! task freeze, steal, join-merge, checkpoint write mid-file, resume
//! parse — either as an in-process panic (a [`FaultCrash`] payload,
//! which the quarantine guards deliberately re-raise so the whole
//! exploration aborts like a crash would) or as `process::abort` for
//! out-of-process kill tests. Plans come from the `SL_FAULT_POINT`,
//! `SL_FAULT_NTH`, and `SL_FAULT_MODE` environment variables
//! ([`FaultPlan::from_env`]) or are built programmatically in tests.
//! The CI `sim-resume` lane drives every injection point and an
//! external SIGKILL through interrupt + resume and gates bit-identity
//! against the uninterrupted run.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::wire::{
    atomic_publish, escape_json, fnv1a64, ident_ok, push_usizes, seal_checksum, Fields, Json,
    Parser,
};
use crate::world::AccessKind;

// ---------------------------------------------------------------------
// Wire structs
// ---------------------------------------------------------------------

/// The supported checkpoint format version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// One declared access on the wire: the world-local dense register
/// index plus the access kind. `RegId::LOCAL` (`u32::MAX`) encodes a
/// pause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CkptAccess {
    /// Raw [`crate::RegId`] value.
    pub reg: u32,
    /// The declared access kind.
    pub kind: AccessKind,
}

/// Union counters accumulated by every checkpointed run so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CkptCounters {
    /// Completed runs.
    pub runs: u64,
    /// Sleep-set-cut replays.
    pub cut_runs: u64,
    /// Pruned branch candidates.
    pub pruned: u64,
    /// Successful panic retries.
    pub retried: u64,
    /// Quarantined subtrees.
    pub quarantined: u64,
}

/// The pending descent the interrupted walk was about to replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CkptNext {
    /// Full decision prefix (spine chosen path plus any wakeup tail).
    pub prefix: Vec<usize>,
    /// Sleep set holding at the first recorded decision.
    pub sleep: u64,
    /// Race-detection window start (the descent depth).
    pub new_from: usize,
}

/// One frozen, not-yet-joined delegated subtree task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CkptTask {
    /// Checkpoint-unique task id.
    pub id: u64,
    /// The reversal process the owner joins this task under.
    pub proc: usize,
    /// Full decision prefix from the schedule-tree root.
    pub prefix: Vec<usize>,
    /// Declared accesses of the ghost spine (`accesses.len() == floor`).
    pub accesses: Vec<CkptAccess>,
    /// Sleep set at the subtree root.
    pub sleep: u64,
    /// Backtrack floor.
    pub floor: usize,
}

/// One root-spine decision node's checkpointed bookkeeping.
///
/// `runnable`/`pending` — the decision's configuration — are persisted
/// so restore rebuilds the spine **without replaying anything**: an
/// uncounted reconstruction replay would stream one extra transcript
/// into the DAG shards and break merged-hash bit-identity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CkptNode {
    /// Child currently being explored.
    pub chosen: usize,
    /// Retired/delegated children mask.
    pub done: u64,
    /// Sleep set (entry sleep plus retired children).
    pub sleep: u64,
    /// Backtrack (source) set in insertion order.
    pub backtrack: Vec<usize>,
    /// Enabled processes at this decision.
    pub runnable: Vec<usize>,
    /// Their declared pending accesses, aligned with `runnable`.
    pub pending: Vec<CkptAccess>,
    /// Pending wakeup sequences, FIFO.
    pub wakeups: Vec<Vec<(usize, CkptAccess)>>,
    /// Delegated tasks attached at this node, in publish order.
    pub tasks: Vec<CkptTask>,
}

/// A parsed (or to-be-written) checkpoint: the resumable frontier of
/// one interrupted exploration. See the module docs for the format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Workload identity the checkpoint is bound to.
    pub workload: String,
    /// `PruneMode` name the exploration ran under.
    pub mode: String,
    /// Worker count of the interrupted run (resume must match).
    pub workers: usize,
    /// Monotonic checkpoint sequence number within the run.
    pub seq: u64,
    /// Length of the user-supplied stem.
    pub stem_len: usize,
    /// Union counters at snapshot time.
    pub counters: CkptCounters,
    /// Sorted structural hashes of the DAG shards sunk so far
    /// (integrity metadata; see [`CheckpointStore::load`]).
    pub shard_hashes: Vec<u64>,
    /// The pending descent.
    pub next: CkptNext,
    /// Root-spine bookkeeping, depth 0 upward.
    pub spine: Vec<CkptNode>,
}

fn kind_name(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Read => "read",
        AccessKind::Write => "write",
        AccessKind::Rmw => "rmw",
        AccessKind::Local => "local",
    }
}

fn kind_of(name: &str) -> Option<AccessKind> {
    match name {
        "read" => Some(AccessKind::Read),
        "write" => Some(AccessKind::Write),
        "rmw" => Some(AccessKind::Rmw),
        "local" => Some(AccessKind::Local),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Canonical serializer (shared primitives live in `crate::wire`)
// ---------------------------------------------------------------------

fn push_access_body(out: &mut String, a: &CkptAccess) {
    out.push_str("\"reg\":");
    out.push_str(&a.reg.to_string());
    out.push_str(",\"kind\":\"");
    out.push_str(kind_name(a.kind));
    out.push('"');
}

impl Checkpoint {
    /// The canonical serialization of every field but the checksum —
    /// the digest input. Fixed field order, no whitespace, unsigned
    /// decimal numbers: the one encoding `serialize → parse →
    /// serialize` is byte-identical over.
    pub fn canonical_body(&self) -> String {
        let mut s = String::with_capacity(256 + self.spine.len() * 64);
        s.push_str("{\"version\":");
        s.push_str(&CHECKPOINT_VERSION.to_string());
        s.push_str(",\"workload\":\"");
        s.push_str(&self.workload);
        s.push_str("\",\"mode\":\"");
        s.push_str(&self.mode);
        s.push_str("\",\"workers\":");
        s.push_str(&self.workers.to_string());
        s.push_str(",\"seq\":");
        s.push_str(&self.seq.to_string());
        s.push_str(",\"stem_len\":");
        s.push_str(&self.stem_len.to_string());
        s.push_str(",\"counters\":{\"runs\":");
        s.push_str(&self.counters.runs.to_string());
        s.push_str(",\"cut_runs\":");
        s.push_str(&self.counters.cut_runs.to_string());
        s.push_str(",\"pruned\":");
        s.push_str(&self.counters.pruned.to_string());
        s.push_str(",\"retried\":");
        s.push_str(&self.counters.retried.to_string());
        s.push_str(",\"quarantined\":");
        s.push_str(&self.counters.quarantined.to_string());
        s.push_str("},\"shard_hashes\":[");
        for (i, h) in self.shard_hashes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&h.to_string());
        }
        s.push_str("],\"next\":{\"prefix\":");
        push_usizes(&mut s, &self.next.prefix);
        s.push_str(",\"sleep\":");
        s.push_str(&self.next.sleep.to_string());
        s.push_str(",\"new_from\":");
        s.push_str(&self.next.new_from.to_string());
        s.push_str("},\"spine\":[");
        for (i, node) in self.spine.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"chosen\":");
            s.push_str(&node.chosen.to_string());
            s.push_str(",\"done\":");
            s.push_str(&node.done.to_string());
            s.push_str(",\"sleep\":");
            s.push_str(&node.sleep.to_string());
            s.push_str(",\"backtrack\":");
            push_usizes(&mut s, &node.backtrack);
            s.push_str(",\"runnable\":");
            push_usizes(&mut s, &node.runnable);
            s.push_str(",\"pending\":[");
            for (j, a) in node.pending.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push('{');
                push_access_body(&mut s, a);
                s.push('}');
            }
            s.push_str("],\"wakeups\":[");
            for (j, seq) in node.wakeups.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push('[');
                for (k, (proc, access)) in seq.iter().enumerate() {
                    if k > 0 {
                        s.push(',');
                    }
                    s.push_str("{\"proc\":");
                    s.push_str(&proc.to_string());
                    s.push(',');
                    push_access_body(&mut s, access);
                    s.push('}');
                }
                s.push(']');
            }
            s.push_str("],\"tasks\":[");
            for (j, task) in node.tasks.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str("{\"id\":");
                s.push_str(&task.id.to_string());
                s.push_str(",\"proc\":");
                s.push_str(&task.proc.to_string());
                s.push_str(",\"prefix\":");
                push_usizes(&mut s, &task.prefix);
                s.push_str(",\"accesses\":[");
                for (k, a) in task.accesses.iter().enumerate() {
                    if k > 0 {
                        s.push(',');
                    }
                    s.push('{');
                    push_access_body(&mut s, a);
                    s.push('}');
                }
                s.push_str("],\"sleep\":");
                s.push_str(&task.sleep.to_string());
                s.push_str(",\"floor\":");
                s.push_str(&task.floor.to_string());
                s.push('}');
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    /// The full file content: the canonical body with the FNV-1a-64
    /// digest spliced in as the leading `checksum` field.
    pub fn render(&self) -> String {
        seal_checksum(&self.canonical_body())
    }

    /// Parses and fully validates checkpoint text: JSON structure,
    /// field sets, version, checksum, and the structural invariants of
    /// the frontier. Every rejection carries a named diagnostic.
    pub fn parse(text: &str) -> Result<Checkpoint, String> {
        let value = Parser::new(text, "checkpoint").parse_document()?;
        let mut top = Fields::new(value, "checkpoint")?;
        top.allow(&[
            "checksum",
            "version",
            "workload",
            "mode",
            "workers",
            "seq",
            "stem_len",
            "counters",
            "shard_hashes",
            "next",
            "spine",
        ])?;
        let version = top.num("version")?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version mismatch: expected version {CHECKPOINT_VERSION}, found \
                 {version} (fail-closed: refusing to guess a migration)"
            ));
        }
        let stored_sum = top.num("checksum")?;
        let workload = top.string("workload")?;
        let mode = top.string("mode")?;
        for (what, s) in [("workload", &workload), ("mode", &mode)] {
            if !ident_ok(s) {
                return Err(format!(
                    "checkpoint {what} \"{s}\" is not a plain identifier \
                     (fail-closed: refusing a non-canonical encoding)"
                ));
            }
        }
        let workers = top.num("workers")? as usize;
        let seq = top.num("seq")?;
        let stem_len = top.num("stem_len")? as usize;

        let mut counters = Fields::new(top.take("counters")?, "counters")?;
        counters.allow(&["runs", "cut_runs", "pruned", "retried", "quarantined"])?;
        let counters = CkptCounters {
            runs: counters.num("runs")?,
            cut_runs: counters.num("cut_runs")?,
            pruned: counters.num("pruned")?,
            retried: counters.num("retried")?,
            quarantined: counters.num("quarantined")?,
        };

        let shard_hashes = top
            .array("shard_hashes")?
            .into_iter()
            .map(|v| v.as_num("shard_hashes entry"))
            .collect::<Result<Vec<u64>, String>>()?;

        let mut next = Fields::new(top.take("next")?, "next")?;
        next.allow(&["prefix", "sleep", "new_from"])?;
        let next = CkptNext {
            prefix: usize_array(next.array("prefix")?, "next.prefix")?,
            sleep: next.num("sleep")?,
            new_from: next.num("new_from")? as usize,
        };

        let mut spine = Vec::new();
        for (d, v) in top.array("spine")?.into_iter().enumerate() {
            let ctx = "spine node";
            let mut f = Fields::new(v, ctx)?;
            f.allow(&[
                "chosen",
                "done",
                "sleep",
                "backtrack",
                "runnable",
                "pending",
                "wakeups",
                "tasks",
            ])?;
            let mut pending = Vec::new();
            for a in f.array("pending")? {
                let mut af = Fields::new(a, "pending access")?;
                af.allow(&["reg", "kind"])?;
                pending.push(access_of(&mut af)?);
            }
            let mut wakeups = Vec::new();
            for seq in f.array("wakeups")? {
                let Json::Arr(steps) = seq else {
                    return Err("wakeup sequence must be an array".into());
                };
                let mut out = Vec::new();
                for step in steps {
                    let mut sf = Fields::new(step, "wakeup step")?;
                    sf.allow(&["proc", "reg", "kind"])?;
                    out.push((sf.num("proc")? as usize, access_of(&mut sf)?));
                }
                wakeups.push(out);
            }
            let mut tasks = Vec::new();
            for v in f.array("tasks")? {
                let mut tf = Fields::new(v, "task")?;
                tf.allow(&["id", "proc", "prefix", "accesses", "sleep", "floor"])?;
                let mut accesses = Vec::new();
                for a in tf.array("accesses")? {
                    let mut af = Fields::new(a, "task access")?;
                    af.allow(&["reg", "kind"])?;
                    accesses.push(access_of(&mut af)?);
                }
                tasks.push(CkptTask {
                    id: tf.num("id")?,
                    proc: tf.num("proc")? as usize,
                    prefix: usize_array(tf.array("prefix")?, "task prefix")?,
                    accesses,
                    sleep: tf.num("sleep")?,
                    floor: tf.num("floor")? as usize,
                });
            }
            let node = CkptNode {
                chosen: f.num("chosen")? as usize,
                done: f.num("done")?,
                sleep: f.num("sleep")?,
                backtrack: usize_array(f.array("backtrack")?, "backtrack")?,
                runnable: usize_array(f.array("runnable")?, "runnable")?,
                pending,
                wakeups,
                tasks,
            };
            let _ = d;
            spine.push(node);
        }

        let ckpt = Checkpoint {
            workload,
            mode,
            workers,
            seq,
            stem_len,
            counters,
            shard_hashes,
            next,
            spine,
        };
        let computed = fnv1a64(ckpt.canonical_body().as_bytes());
        if computed != stored_sum {
            return Err(format!(
                "checkpoint checksum mismatch: stored {stored_sum}, recomputed {computed} \
                 (torn or doctored file)"
            ));
        }
        ckpt.validate_structure()?;
        Ok(ckpt)
    }

    /// Structural invariants of a loaded frontier (beyond field types):
    /// non-empty resumable work, consistent spine/descent, well-formed
    /// tasks, process indices inside the 64-bit sleep-mask universe.
    fn validate_structure(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("checkpoint declares zero workers".into());
        }
        if self.spine.is_empty() {
            return Err("checkpoint holds an empty frontier: nothing to resume \
                 (finished runs delete their checkpoint)"
                .into());
        }
        if self.next.new_from + 1 != self.spine.len() {
            return Err(format!(
                "checkpoint next.new_from ({}) must equal spine length - 1 ({})",
                self.next.new_from,
                self.spine.len() - 1
            ));
        }
        if self.next.prefix.len() < self.spine.len() {
            return Err(format!(
                "checkpoint next.prefix ({} decisions) is shorter than the spine ({} nodes)",
                self.next.prefix.len(),
                self.spine.len()
            ));
        }
        if self.stem_len >= self.spine.len() && self.stem_len != 0 {
            return Err(format!(
                "checkpoint stem_len {} leaves no decision above the stem (spine length {})",
                self.stem_len,
                self.spine.len()
            ));
        }
        let proc_ok = |p: usize| p < 64;
        for (d, node) in self.spine.iter().enumerate() {
            if self.next.prefix[d] != node.chosen {
                return Err(format!(
                    "checkpoint next.prefix diverges from the spine's chosen path at depth {d}"
                ));
            }
            if !proc_ok(node.chosen)
                || node.backtrack.iter().any(|&p| !proc_ok(p))
                || node.runnable.iter().any(|&p| !proc_ok(p))
            {
                return Err(
                    "process index out of range (sleep masks support at most 64 processes)".into(),
                );
            }
            if node.pending.len() != node.runnable.len() {
                return Err(format!(
                    "checkpoint spine node {d}: {} pending accesses for {} runnable processes",
                    node.pending.len(),
                    node.runnable.len()
                ));
            }
            if !node.runnable.contains(&node.chosen) {
                return Err(format!(
                    "checkpoint spine node {d}: chosen child {} is not runnable there",
                    node.chosen
                ));
            }
            if node.backtrack.iter().any(|p| !node.runnable.contains(p)) {
                return Err(format!(
                    "checkpoint spine node {d}: backtrack candidate outside the runnable set"
                ));
            }
            if !node.backtrack.contains(&node.chosen) {
                return Err(format!(
                    "checkpoint spine node {d}: chosen child {} is missing from its \
                     backtrack set",
                    node.chosen
                ));
            }
            for seq in &node.wakeups {
                if seq.is_empty() {
                    return Err(format!("checkpoint spine node {d}: empty wakeup sequence"));
                }
                if seq.iter().any(|&(p, _)| !proc_ok(p)) {
                    return Err(
                        "process index out of range (sleep masks support at most 64 processes)"
                            .into(),
                    );
                }
            }
            for task in &node.tasks {
                if task.floor == 0 || task.floor > task.prefix.len() {
                    return Err(format!(
                        "checkpoint task {}: floor {} is outside its prefix (length {})",
                        task.id,
                        task.floor,
                        task.prefix.len()
                    ));
                }
                if task.accesses.len() != task.floor {
                    return Err(format!(
                        "checkpoint task {}: {} ghost accesses but floor {}",
                        task.id,
                        task.accesses.len(),
                        task.floor
                    ));
                }
                if task.prefix[task.floor - 1] != task.proc {
                    return Err(format!(
                        "checkpoint task {}: reversal process {} differs from its prefix at \
                         the floor",
                        task.id, task.proc
                    ));
                }
                if task.prefix.iter().any(|&p| !proc_ok(p)) {
                    return Err(
                        "process index out of range (sleep masks support at most 64 processes)"
                            .into(),
                    );
                }
            }
        }
        if self.next.prefix.iter().any(|&p| !proc_ok(p)) {
            return Err(
                "process index out of range (sleep masks support at most 64 processes)".into(),
            );
        }
        let mut ids: Vec<u64> = self
            .spine
            .iter()
            .flat_map(|n| n.tasks.iter().map(|t| t.id))
            .collect();
        ids.sort_unstable();
        if let Some(dup) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!(
                "duplicate task id {} in checkpoint frontier",
                dup[0]
            ));
        }
        if self.shard_hashes.windows(2).any(|w| w[0] > w[1]) {
            return Err(
                "checkpoint shard hashes are not sorted (doctored or corrupt snapshot)".into(),
            );
        }
        Ok(())
    }
}

fn access_of(f: &mut Fields) -> Result<CkptAccess, String> {
    let reg = f.num("reg")?;
    if reg > u64::from(u32::MAX) {
        return Err(format!("register id {reg} exceeds the u32 register space"));
    }
    let kind = f.string("kind")?;
    let kind = kind_of(&kind).ok_or_else(|| {
        format!("unknown access kind \"{kind}\" (fail-closed: refusing to guess)")
    })?;
    Ok(CkptAccess {
        reg: reg as u32,
        kind,
    })
}

fn usize_array(values: Vec<Json>, ctx: &str) -> Result<Vec<usize>, String> {
    values
        .into_iter()
        .map(|v| v.as_num(ctx).map(|n| n as usize))
        .collect()
}

// ---------------------------------------------------------------------
// The on-disk store
// ---------------------------------------------------------------------

/// What the resuming explorer expects the checkpoint to match; any
/// mismatch is rejected with a named diagnostic rather than silently
/// resumed into a different exploration.
pub struct ResumeExpectation<'a> {
    /// Worker count of the resuming explorer.
    pub workers: usize,
    /// `PruneMode` name of the resuming explorer.
    pub mode: &'a str,
    /// Stem length of the resuming explorer.
    pub stem_len: usize,
    /// When present, the sorted structural hashes of the live DAG
    /// shards the resuming harness holds; a mismatch means the
    /// checkpoint is stale against the DAG store.
    pub expected_shards: Option<&'a [u64]>,
}

/// Atomic checkpoint persistence for one workload: writes go to a
/// sibling temp file and `rename` into place, so the visible file is
/// always a complete, checksummed snapshot — a crash mid-write leaves
/// the previous checkpoint intact.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    workload: String,
}

impl CheckpointStore {
    /// A store rooted at `dir` for the given workload identity (a plain
    /// identifier; it names the file and binds the checkpoint).
    pub fn new(dir: impl Into<PathBuf>, workload: &str) -> CheckpointStore {
        assert!(
            ident_ok(workload),
            "checkpoint workload id must be a plain identifier, got {workload:?}"
        );
        CheckpointStore {
            dir: dir.into(),
            workload: workload.to_string(),
        }
    }

    /// The workload identity this store is bound to.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// The checkpoint file path.
    pub fn path(&self) -> PathBuf {
        self.dir.join(format!("{}.ckpt.json", self.workload))
    }

    fn tmp_path(&self) -> PathBuf {
        self.dir.join(format!("{}.ckpt.json.tmp", self.workload))
    }

    /// Whether a checkpoint file exists.
    pub fn exists(&self) -> bool {
        self.path().exists()
    }

    /// Atomically persists `ckpt`: full render to the temp file, then
    /// rename over the live path. `fault` may inject the mid-write
    /// crash (half the bytes land in the temp file, which the rename
    /// never promotes — the previous checkpoint survives).
    pub fn save(&self, ckpt: &Checkpoint, fault: Option<&FaultPlan>) -> Result<(), String> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("creating checkpoint dir {}: {e}", self.dir.display()))?;
        let text = ckpt.render();
        let tmp = self.tmp_path();
        if let Some(plan) = fault {
            if plan.takes(FaultPoint::CkptWrite) {
                // Simulated torn write: half the payload, then the crash.
                let _ = std::fs::write(&tmp, &text.as_bytes()[..text.len() / 2]);
                plan.crash(FaultPoint::CkptWrite);
            }
        }
        self.save_rendered(&text)
    }

    /// The write half of [`CheckpointStore::save`]: publishes
    /// already-rendered checkpoint text atomically (temp + rename).
    /// This is what [`CkptWriter`] runs off the exploration's critical
    /// path.
    pub fn save_rendered(&self, text: &str) -> Result<(), String> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("creating checkpoint dir {}: {e}", self.dir.display()))?;
        atomic_publish(&self.tmp_path(), &self.path(), text)
    }

    /// Loads and validates the checkpoint. Beyond [`Checkpoint::parse`]
    /// this rejects metadata that does not match the resuming explorer
    /// (`expect`) and stale shard hashes.
    pub fn load(
        &self,
        expect: Option<&ResumeExpectation<'_>>,
        fault: Option<&FaultPlan>,
    ) -> Result<Checkpoint, String> {
        let path = self.path();
        if let Some(plan) = fault {
            plan.fire(FaultPoint::ResumeParse);
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading checkpoint {}: {e}", path.display()))?;
        let ckpt = Checkpoint::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if ckpt.workload != self.workload {
            return Err(format!(
                "checkpoint workload mismatch: file is for \"{}\", store is bound to \"{}\"",
                ckpt.workload, self.workload
            ));
        }
        if let Some(expect) = expect {
            if ckpt.workers != expect.workers {
                return Err(format!(
                    "checkpoint worker-count mismatch: checkpoint was taken with {} workers, \
                     resuming with {} (resume with the original worker count)",
                    ckpt.workers, expect.workers
                ));
            }
            if ckpt.mode != expect.mode {
                return Err(format!(
                    "checkpoint mode mismatch: checkpoint was taken under {}, resuming under {}",
                    ckpt.mode, expect.mode
                ));
            }
            if ckpt.stem_len != expect.stem_len {
                return Err(format!(
                    "checkpoint stem mismatch: checkpoint stem length {}, resuming with {}",
                    ckpt.stem_len, expect.stem_len
                ));
            }
            if let Some(live) = expect.expected_shards {
                if live != ckpt.shard_hashes.as_slice() {
                    return Err(
                        "checkpoint shard hashes are stale: the live DAG store does not match \
                         the snapshot (fail-closed: refusing to resume against a diverged store)"
                            .into(),
                    );
                }
            }
        }
        Ok(ckpt)
    }

    /// Removes the checkpoint (and any temp leftovers) — called when an
    /// exploration completes so a later run starts fresh.
    pub fn clear(&self) {
        let _ = std::fs::remove_file(self.path());
        let _ = std::fs::remove_file(self.tmp_path());
    }
}

/// Asynchronous checkpoint publication: a dedicated writer thread
/// applies rendered checkpoints FIFO via
/// [`CheckpointStore::save_rendered`], keeping filesystem commit
/// latency (~1ms per temp-write + rename on a journaling filesystem)
/// off the exploration's critical path. Ordering is preserved by the
/// single consumer; per-file atomicity is unchanged. Durability point:
/// everything enqueued is on disk once [`CkptWriter::finish`] returns
/// — callers that need a specific snapshot durable (the drain
/// checkpoint) enqueue it with [`CkptWriter::publish_durable`] and
/// finish the writer before acting on it. A crash loses at most the
/// still-queued tail, which resume semantics already tolerate: any
/// earlier checkpoint resumes bit-identically, just redoing more work.
///
/// Fail-closed: a write error panics the writer thread, and the next
/// `publish*`/`finish` on the handle propagates (the thread's own
/// panic message reaches stderr with the write diagnostic).
pub struct CkptWriter {
    tx: Option<std::sync::mpsc::SyncSender<String>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl CkptWriter {
    /// Spawns the writer thread for `store`'s checkpoint file.
    pub fn spawn(store: &CheckpointStore) -> CkptWriter {
        let store = store.clone();
        let (tx, rx) = std::sync::mpsc::sync_channel::<String>(8);
        let handle = std::thread::Builder::new()
            .name("sl-ckpt-writer".into())
            .spawn(move || {
                for text in rx {
                    if let Err(e) = store.save_rendered(&text) {
                        panic!("checkpoint write failed (fail-closed): {e}");
                    }
                }
            })
            .expect("spawning checkpoint writer thread");
        CkptWriter {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// Best-effort periodic publish: if the writer is behind (queue
    /// full), this snapshot is skipped — a fresher one follows at the
    /// next cadence tick, and resume tolerates any published
    /// checkpoint. Panics if the writer thread died (fail-closed).
    pub fn publish(&self, text: String) {
        use std::sync::mpsc::TrySendError;
        match self
            .tx
            .as_ref()
            .expect("writer not finished")
            .try_send(text)
        {
            Ok(()) | Err(TrySendError::Full(_)) => {}
            Err(TrySendError::Disconnected(_)) => self.writer_died(),
        }
    }

    /// Guaranteed enqueue for snapshots that must not be skipped (the
    /// drain checkpoint). Blocks briefly if the queue is full; the
    /// snapshot is durable once [`CkptWriter::finish`] returns.
    pub fn publish_durable(&self, text: String) {
        if self
            .tx
            .as_ref()
            .expect("writer not finished")
            .send(text)
            .is_err()
        {
            self.writer_died();
        }
    }

    /// Drains the queue, stops the thread, and propagates any write
    /// failure. Everything previously enqueued is on disk on return.
    pub fn finish(mut self) {
        self.shutdown(true);
    }

    fn writer_died(&self) -> ! {
        panic!(
            "checkpoint writer thread failed (fail-closed); \
             see its panic message for the write diagnostic"
        );
    }

    fn shutdown(&mut self, propagate: bool) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            if handle.join().is_err() && propagate {
                self.writer_died();
            }
        }
    }
}

impl Drop for CkptWriter {
    fn drop(&mut self) {
        // Still drain the queue on an unwinding path, but don't panic
        // inside a panic.
        self.shutdown(!std::thread::panicking());
    }
}

// ---------------------------------------------------------------------
// Budgets & the resume session
// ---------------------------------------------------------------------

/// Checkpoint cadence and exploration budgets for a resumable run. See
/// the module docs for the drain semantics.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Write a checkpoint every this many root replays (`0` = only the
    /// final drain checkpoint).
    pub every_replays: u64,
    /// Schedule-count budget over the union of the resumed base and the
    /// live run (completed + cut replays); expiry drains to a
    /// checkpoint.
    pub max_schedules: Option<u64>,
    /// Wall-clock deadline; expiry drains to a checkpoint.
    pub deadline: Option<std::time::Instant>,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every_replays: 2_000,
            max_schedules: None,
            deadline: None,
        }
    }
}

/// Everything [`Explorer::explore_resumable`](crate::Explorer::explore_resumable)
/// needs beyond the explorer itself: the store, the policy, optional
/// fault injection, and the optional live-shard-hash plumbing for
/// checkpoint/DAG cross-validation.
pub struct ResumeSession<'a> {
    /// The checkpoint store (also carries the workload identity).
    pub store: &'a CheckpointStore,
    /// Cadence and budgets.
    pub policy: CheckpointPolicy,
    /// Deterministic fault injection, if any.
    pub fault: Option<std::sync::Arc<FaultPlan>>,
    /// Expected shard hashes validated on load (see
    /// [`ResumeExpectation`]).
    pub expected_shards: Option<Vec<u64>>,
    /// Snapshot provider for the live DAG shard hashes, recorded into
    /// each checkpoint (sorted). `None` for counts-only runs.
    pub shard_hashes: Option<&'a (dyn Fn() -> Vec<u64> + Sync)>,
}

impl<'a> ResumeSession<'a> {
    /// A session over `store` with the default policy and no fault
    /// injection.
    pub fn new(store: &'a CheckpointStore) -> ResumeSession<'a> {
        ResumeSession {
            store,
            policy: CheckpointPolicy::default(),
            fault: None,
            expected_shards: None,
            shard_hashes: None,
        }
    }
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// The named crash sites of the fault-injection harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// Freezing a subtree task for publication.
    TaskFreeze,
    /// Claiming a task off a deque.
    Steal,
    /// Merging a joined task's output into the owner spine.
    JoinMerge,
    /// Mid-file during a checkpoint write (tests the temp+rename
    /// atomicity).
    CkptWrite,
    /// Loading a checkpoint on resume.
    ResumeParse,
    /// Handing a frozen task to a remote dispatcher (coordinator
    /// side: the task frame is about to cross the process boundary).
    Dispatch,
    /// A worker's heartbeat tick (the ticker stops permanently once
    /// this takes, so the coordinator sees a missed lease deadline).
    Heartbeat,
    /// Mid-write of a result frame (the worker aborts after flushing
    /// half the frame — the coordinator must reject the torn frame).
    ResultFrame,
    /// A worker process exiting after completing its nth task (the
    /// out-of-process analogue of [`FaultPoint::Steal`]).
    WorkerExit,
}

impl FaultPoint {
    /// Every injection point — the CI matrix iterates this.
    pub const ALL: [FaultPoint; 9] = [
        FaultPoint::TaskFreeze,
        FaultPoint::Steal,
        FaultPoint::JoinMerge,
        FaultPoint::CkptWrite,
        FaultPoint::ResumeParse,
        FaultPoint::Dispatch,
        FaultPoint::Heartbeat,
        FaultPoint::ResultFrame,
        FaultPoint::WorkerExit,
    ];

    /// The point's wire name (the `SL_FAULT_POINT` value).
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::TaskFreeze => "task-freeze",
            FaultPoint::Steal => "steal",
            FaultPoint::JoinMerge => "join-merge",
            FaultPoint::CkptWrite => "ckpt-write",
            FaultPoint::ResumeParse => "resume-parse",
            FaultPoint::Dispatch => "dispatch",
            FaultPoint::Heartbeat => "heartbeat",
            FaultPoint::ResultFrame => "result-frame",
            FaultPoint::WorkerExit => "worker-exit",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<FaultPoint> {
        FaultPoint::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// The panic payload of an injected in-process crash. The quarantine
/// guards recognise it and re-raise instead of retrying: an injected
/// crash must behave like a crash (abort the exploration), not like a
/// flaky subtree.
#[derive(Clone, Copy, Debug)]
pub struct FaultCrash {
    /// Name of the point that fired.
    pub point: &'static str,
}

/// A deterministic single-shot fault: crash at the `nth` arrival at
/// `point`, either by panicking with a [`FaultCrash`] payload
/// (in-process crash simulation) or by `process::abort` (out-of-process
/// kill tests).
#[derive(Debug)]
pub struct FaultPlan {
    point: FaultPoint,
    nth: u64,
    abort: bool,
    hits: AtomicU64,
}

impl FaultPlan {
    /// A plan that panics with [`FaultCrash`] at the `nth` arrival.
    pub fn panicking(point: FaultPoint, nth: u64) -> FaultPlan {
        FaultPlan {
            point,
            nth: nth.max(1),
            abort: false,
            hits: AtomicU64::new(0),
        }
    }

    /// A plan that `process::abort`s at the `nth` arrival.
    pub fn aborting(point: FaultPoint, nth: u64) -> FaultPlan {
        FaultPlan {
            abort: true,
            ..FaultPlan::panicking(point, nth)
        }
    }

    /// Builds a plan from `SL_FAULT_POINT` (a [`FaultPoint::name`]),
    /// `SL_FAULT_NTH` (default 1), and `SL_FAULT_MODE` (`panic`
    /// (default) or `abort`). Returns `None` when `SL_FAULT_POINT` is
    /// unset; panics on an unknown point or mode (fail-closed — a typo
    /// must not silently disable the harness).
    pub fn from_env() -> Option<FaultPlan> {
        let point = std::env::var("SL_FAULT_POINT").ok()?;
        let point = FaultPoint::from_name(&point)
            .unwrap_or_else(|| panic!("SL_FAULT_POINT: unknown injection point {point:?}"));
        let nth = match std::env::var("SL_FAULT_NTH") {
            Err(_) => 1,
            Ok(s) => s
                .trim()
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("SL_FAULT_NTH: not a count: {s:?}")),
        };
        let abort = match std::env::var("SL_FAULT_MODE").as_deref() {
            Err(_) | Ok("panic") => false,
            Ok("abort") => true,
            Ok(other) => panic!("SL_FAULT_MODE: unknown mode {other:?} (panic|abort)"),
        };
        Some(if abort {
            FaultPlan::aborting(point, nth)
        } else {
            FaultPlan::panicking(point, nth)
        })
    }

    /// The plan's injection point.
    pub fn point(&self) -> FaultPoint {
        self.point
    }

    /// Counts an arrival at `point`; `true` exactly on the fatal one.
    /// Public so out-of-process consumers (the distributed worker) can
    /// separate "the fault takes here" from the crash itself — a torn
    /// result frame needs to flush half a frame *between* the two.
    pub fn takes(&self, point: FaultPoint) -> bool {
        point == self.point && self.hits.fetch_add(1, Ordering::SeqCst) + 1 == self.nth
    }

    /// The crash itself.
    pub fn crash(&self, point: FaultPoint) -> ! {
        if self.abort {
            eprintln!("SL_FAULT: aborting at injection point {}", point.name());
            std::process::abort();
        }
        std::panic::panic_any(FaultCrash {
            point: point.name(),
        })
    }

    /// Crashes iff this arrival at `point` is the plan's fatal one.
    pub fn fire(&self, point: FaultPoint) {
        if self.takes(point) {
            self.crash(point);
        }
    }
}

// ---------------------------------------------------------------------
// Poisoned-task reports
// ---------------------------------------------------------------------

/// The quarantine record of one subtree that panicked through every
/// retry: the replayable decision prefix (feed it to `Explorer::stem`
/// or a `Scripted` scheduler to reproduce), the attempt count, and the
/// panic message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoisonReport {
    /// Decision prefix of the quarantined subtree, from the schedule
    /// tree's root.
    pub prefix: Vec<usize>,
    /// Attempts made (1 + retries).
    pub attempts: u32,
    /// The panic payload, stringified.
    pub message: String,
}

/// Writes `report` as JSON into `dir` (named by the prefix digest, so
/// repeated quarantines of one subtree overwrite rather than pile up)
/// and returns the path. CI uploads this directory on failure.
pub fn write_poison_report(dir: &Path, report: &PoisonReport) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("creating poison-report dir {}: {e}", dir.display()))?;
    let mut body = String::from("{\"prefix\":");
    push_usizes(&mut body, &report.prefix);
    body.push_str(",\"attempts\":");
    body.push_str(&report.attempts.to_string());
    body.push_str(",\"message\":\"");
    body.push_str(&escape_json(&report.message));
    body.push_str("\"}\n");
    let digest = {
        let mut key = String::new();
        push_usizes(&mut key, &report.prefix);
        fnv1a64(key.as_bytes())
    };
    let path = dir.join(format!("poisoned-{digest:016x}.json"));
    std::fs::write(&path, body).map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(path)
}

/// Renders a caught panic payload for a [`PoisonReport`].
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            workload: "aba_mixed3".into(),
            mode: "OptimalDpor".into(),
            workers: 4,
            seq: 7,
            stem_len: 0,
            counters: CkptCounters {
                runs: 123,
                cut_runs: 4,
                pruned: 567,
                retried: 1,
                quarantined: 0,
            },
            shard_hashes: vec![11, 22, 22, 33],
            next: CkptNext {
                prefix: vec![0, 1, 2, 1],
                sleep: 0b10,
                new_from: 2,
            },
            spine: vec![
                CkptNode {
                    chosen: 0,
                    done: 0b1,
                    sleep: 0b1,
                    backtrack: vec![0, 2],
                    runnable: vec![0, 1, 2],
                    pending: vec![
                        CkptAccess {
                            reg: 0,
                            kind: AccessKind::Rmw,
                        },
                        CkptAccess {
                            reg: 3,
                            kind: AccessKind::Read,
                        },
                        CkptAccess {
                            reg: 3,
                            kind: AccessKind::Write,
                        },
                    ],
                    wakeups: vec![vec![
                        (
                            2,
                            CkptAccess {
                                reg: 3,
                                kind: AccessKind::Write,
                            },
                        ),
                        (
                            1,
                            CkptAccess {
                                reg: 3,
                                kind: AccessKind::Read,
                            },
                        ),
                    ]],
                    tasks: vec![CkptTask {
                        id: 1,
                        proc: 2,
                        prefix: vec![2],
                        accesses: vec![CkptAccess {
                            reg: 0,
                            kind: AccessKind::Rmw,
                        }],
                        sleep: 0b1,
                        floor: 1,
                    }],
                },
                CkptNode {
                    chosen: 1,
                    done: 0,
                    sleep: 0,
                    backtrack: vec![1],
                    runnable: vec![0, 1, 2],
                    pending: vec![
                        CkptAccess {
                            reg: 0,
                            kind: AccessKind::Read,
                        },
                        CkptAccess {
                            reg: 1,
                            kind: AccessKind::Write,
                        },
                        CkptAccess {
                            reg: u32::MAX,
                            kind: AccessKind::Local,
                        },
                    ],
                    wakeups: vec![],
                    tasks: vec![CkptTask {
                        id: 2,
                        proc: 0,
                        prefix: vec![0, 1, 0],
                        accesses: vec![
                            CkptAccess {
                                reg: 0,
                                kind: AccessKind::Read,
                            },
                            CkptAccess {
                                reg: u32::MAX,
                                kind: AccessKind::Local,
                            },
                            CkptAccess {
                                reg: 1,
                                kind: AccessKind::Write,
                            },
                        ],
                        sleep: 0,
                        floor: 3,
                    }],
                },
                CkptNode {
                    chosen: 2,
                    done: 0,
                    sleep: 0,
                    backtrack: vec![2],
                    runnable: vec![1, 2],
                    pending: vec![
                        CkptAccess {
                            reg: 1,
                            kind: AccessKind::Read,
                        },
                        CkptAccess {
                            reg: 2,
                            kind: AccessKind::Write,
                        },
                    ],
                    wakeups: vec![],
                    tasks: vec![],
                },
            ],
        }
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let c = sample();
        let text = c.render();
        let parsed = Checkpoint::parse(&text).expect("sample parses");
        assert_eq!(parsed, c);
        assert_eq!(parsed.render(), text, "serialize → parse → serialize");
    }

    #[test]
    fn whitespace_tolerant_parse_recanonicalises() {
        let c = sample();
        let text = c.render().replace(",\"mode\"", ",\n  \"mode\"");
        let parsed = Checkpoint::parse(&text).expect("whitespace is cosmetic");
        assert_eq!(parsed.render(), c.render());
    }

    fn expect_reject(text: &str, needle: &str) {
        let err = Checkpoint::parse(text).expect_err("doctored checkpoint must be rejected");
        assert!(
            err.contains(needle),
            "diagnostic {err:?} does not name {needle:?}"
        );
    }

    #[test]
    fn rejects_bad_version() {
        let text = sample().render().replace("\"version\":1", "\"version\":2");
        expect_reject(&text, "version mismatch");
    }

    #[test]
    fn rejects_checksum_mismatch() {
        let text = sample().render().replace("\"runs\":123", "\"runs\":124");
        expect_reject(&text, "checksum mismatch");
    }

    #[test]
    fn rejects_duplicate_task_id() {
        let mut c = sample();
        c.spine[1].tasks[0].id = 1; // collides with spine[0]'s task
        expect_reject(&c.render(), "duplicate task id 1");
    }

    #[test]
    fn rejects_truncated_file() {
        let text = sample().render();
        expect_reject(&text[..text.len() / 2], "truncated checkpoint");
        expect_reject(&text[..text.len() - 1], "truncated checkpoint");
    }

    #[test]
    fn rejects_unknown_field() {
        let text = sample()
            .render()
            .replace("\"seq\":7", "\"seq\":7,\"surprise\":1");
        expect_reject(&text, "unknown field \"surprise\"");
    }

    #[test]
    fn rejects_duplicate_key() {
        let text = sample()
            .render()
            .replace("\"seq\":7", "\"seq\":7,\"seq\":8");
        expect_reject(&text, "duplicate key \"seq\"");
    }

    #[test]
    fn rejects_empty_frontier() {
        let mut c = sample();
        c.spine.clear();
        c.next = CkptNext {
            prefix: vec![],
            sleep: 0,
            new_from: 0,
        };
        // new_from + 1 != 0 is unsatisfiable for an empty spine; the
        // empty-frontier diagnostic fires first.
        expect_reject(&c.render(), "empty frontier");
    }

    #[test]
    fn rejects_stale_shard_hashes() {
        let c = sample();
        let dir = test_dir("stale-shards");
        let store = CheckpointStore::new(&dir, "aba_mixed3");
        store.save(&c, None).unwrap();
        let err = store
            .load(
                Some(&ResumeExpectation {
                    workers: 4,
                    mode: "OptimalDpor",
                    stem_len: 0,
                    expected_shards: Some(&[99]),
                }),
                None,
            )
            .expect_err("stale shard hashes must be rejected");
        assert!(err.contains("stale"), "diagnostic: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_worker_count_mismatch() {
        let c = sample();
        let dir = test_dir("worker-mismatch");
        let store = CheckpointStore::new(&dir, "aba_mixed3");
        store.save(&c, None).unwrap();
        let err = store
            .load(
                Some(&ResumeExpectation {
                    workers: 8,
                    mode: "OptimalDpor",
                    stem_len: 0,
                    expected_shards: None,
                }),
                None,
            )
            .expect_err("worker-count mismatch must be rejected");
        assert!(err.contains("worker-count mismatch"), "diagnostic: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_unsorted_shard_hashes() {
        let mut c = sample();
        c.shard_hashes = vec![22, 11];
        expect_reject(&c.render(), "not sorted");
    }

    #[test]
    fn rejects_prefix_spine_divergence() {
        let mut c = sample();
        c.next.prefix[1] = 2;
        expect_reject(&c.render(), "diverges from the spine");
    }

    #[test]
    fn rejects_task_floor_out_of_prefix() {
        let mut c = sample();
        c.spine[0].tasks[0].floor = 5;
        expect_reject(&c.render(), "floor 5 is outside its prefix");
    }

    #[test]
    fn rejects_proc_out_of_mask_range() {
        let mut c = sample();
        c.spine[2].backtrack.push(64);
        expect_reject(&c.render(), "process index out of range");
    }

    #[test]
    fn rejects_negative_and_float_numbers() {
        let text = sample().render().replace("\"seq\":7", "\"seq\":-7");
        expect_reject(&text, "negative numbers");
        let text = sample().render().replace("\"seq\":7", "\"seq\":7.5");
        expect_reject(&text, "floating-point");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut text = sample().render();
        text.push_str("{}");
        expect_reject(&text, "trailing garbage");
    }

    fn test_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sl-ckpt-{}-{tag}", std::process::id()))
    }

    #[test]
    fn save_is_atomic_under_injected_mid_write_crash() {
        let dir = test_dir("atomic");
        let store = CheckpointStore::new(&dir, "aba_mixed3");
        let mut c = sample();
        store.save(&c, None).unwrap();
        let before = std::fs::read_to_string(store.path()).unwrap();
        c.seq += 1;
        let plan = FaultPlan::panicking(FaultPoint::CkptWrite, 1);
        let crashed =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| store.save(&c, Some(&plan))));
        assert!(crashed.is_err(), "the injected mid-write crash fires");
        let after = std::fs::read_to_string(store.path()).unwrap();
        assert_eq!(
            before, after,
            "a torn temp write never replaces the live file"
        );
        // And the surviving file still loads.
        let loaded = store.load(None, None).unwrap();
        assert_eq!(loaded.seq, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn async_writer_applies_in_order_and_is_durable_at_finish() {
        let dir = test_dir("writer");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, "aba_mixed3");
        let writer = CkptWriter::spawn(&store);
        let mut c = sample();
        for seq in 1..=20u64 {
            c.seq = seq;
            // Best-effort publishes may be skipped under a slow disk,
            // but the durable one must land last and win.
            writer.publish(c.render());
        }
        c.seq = 21;
        writer.publish_durable(c.render());
        writer.finish();
        let loaded = store.load(None, None).unwrap();
        assert_eq!(
            loaded.seq, 21,
            "FIFO application: the durable final snapshot is the visible file"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn async_writer_propagates_write_failures_fail_closed() {
        let dir = test_dir("writer-fail");
        let _ = std::fs::remove_dir_all(&dir);
        // A plain file where the store expects its directory: every
        // write on the writer thread fails.
        std::fs::write(&dir, b"not a directory").unwrap();
        let store = CheckpointStore::new(&dir, "aba_mixed3");
        let writer = CkptWriter::spawn(&store);
        writer.publish_durable(sample().render());
        let failed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| writer.finish()));
        let payload = failed.expect_err("finish propagates the writer's failure");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| payload.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(
            msg.contains("checkpoint writer thread failed"),
            "named diagnostic, got: {msg}"
        );
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn fault_plan_fires_exactly_once_at_nth() {
        let plan = FaultPlan::panicking(FaultPoint::Steal, 3);
        plan.fire(FaultPoint::Steal);
        plan.fire(FaultPoint::JoinMerge); // other points never count
        plan.fire(FaultPoint::Steal);
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.fire(FaultPoint::Steal)
        }));
        let payload = crashed.expect_err("third arrival crashes");
        let crash = payload
            .downcast_ref::<FaultCrash>()
            .expect("FaultCrash payload");
        assert_eq!(crash.point, "steal");
        // Spent: later arrivals pass through.
        plan.fire(FaultPoint::Steal);
    }

    #[test]
    fn poison_report_roundtrips_to_disk() {
        let dir = test_dir("poison");
        let report = PoisonReport {
            prefix: vec![0, 2, 1],
            attempts: 3,
            message: "object bug: \"quoted\"\nsecond line".into(),
        };
        let path = write_poison_report(&dir, &report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"attempts\":3"));
        assert!(text.contains("\\\"quoted\\\"\\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
