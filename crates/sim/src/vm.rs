//! The single-threaded step VM.
//!
//! Simulated processes run as stackful fibers ([`crate::fiber`]); the
//! VM resumes exactly one of them per scheduling decision. A fiber runs
//! until its next shared-memory access, where it *declares* the access
//! (a [`PendingAccess`]) and parks; the VM then consults the
//! [`Scheduler`] with the full configuration — including what every
//! runnable process is about to do — grants one process its step, and
//! resumes that fiber, which performs the access atomically, records
//! the [`crate::StepRecord`], and continues to its next access or to
//! completion.
//!
//! Compared to the retired thread-handoff engine this turns one
//! simulated step from two OS context switches plus condvar broadcasts
//! into two userspace fiber switches — measured by the
//! `exp_sim_throughput` experiment, and the reason bounded exhaustive
//! exploration can afford orders of magnitude more schedules.
//!
//! # Safety model
//!
//! While a fiber runs, the VM loop is suspended (and vice versa), so
//! access to [`VmCore`] is mutually exclusive by construction; both
//! sides reach it through the same raw pointer published in
//! `WorldInner::active_vm`. With the portable parked-thread fiber
//! implementation the fiber runs on another OS thread, and the
//! channel rendezvous in `fiber::resume`/`fiber_yield` provides the
//! happens-before edges for those accesses.

use std::sync::atomic::Ordering;

use sl_check::{OpSym, RegSym, StepCode, ValueId};

use crate::fiber::Fiber;
use crate::sched::Scheduler;
use crate::world::{
    AccessKind, Decision, PendingAccess, ProcCtx, Program, RegId, RunConfig, RunOutcome, SchedView,
    SimAbort, SimWorld, StepRecord, TraceItem, IN_SIM_ABORT,
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Running,
    Waiting,
    Done,
}

/// Mutable state of one VM run, shared between the VM loop and the
/// fibers via a raw pointer (see the module docs for the safety model).
pub(crate) struct VmCore {
    /// The process whose fiber is currently (about to be) running.
    current: usize,
    state: Vec<ProcState>,
    /// Declared next access per process; meaningful while `Waiting`.
    pending: Vec<PendingAccess>,
    aborted: bool,
    trace: Vec<TraceItem>,
    steps_per_proc: Vec<u64>,
    decisions: Vec<Decision>,
    total_steps: u64,
    config: RunConfig,
}

impl VmCore {
    fn new(n: usize, config: RunConfig) -> VmCore {
        VmCore {
            current: 0,
            state: vec![ProcState::Running; n],
            pending: vec![
                PendingAccess {
                    reg: RegId::LOCAL,
                    kind: AccessKind::Local,
                };
                n
            ],
            aborted: false,
            trace: Vec::new(),
            steps_per_proc: vec![0; n],
            decisions: Vec::new(),
            total_steps: 0,
            config,
        }
    }

    /// Re-initialises a recycled core for a fresh run, keeping buffer
    /// capacity.
    fn reinit(&mut self, n: usize, config: RunConfig) {
        self.current = 0;
        self.state.clear();
        self.state.resize(n, ProcState::Running);
        self.pending.clear();
        self.pending.resize(
            n,
            PendingAccess {
                reg: RegId::LOCAL,
                kind: AccessKind::Local,
            },
        );
        self.aborted = false;
        self.trace.clear();
        self.steps_per_proc.clear();
        self.steps_per_proc.resize(n, 0);
        self.decisions.clear();
        self.total_steps = 0;
        self.config = config;
    }
}

/// Recycled per-world run state: the boxed [`VmCore`] of the previous
/// run plus trace/decision buffers handed back via
/// [`crate::SimWorld::recycle`]. Replays on a reset world take their
/// allocations from here instead of the allocator — one of the two
/// levers (with fiber-stack pooling) that make a warm replay cheap.
#[derive(Default)]
pub(crate) struct SpareVm {
    pub(crate) core: Option<Box<VmCore>>,
    pub(crate) trace: Vec<TraceItem>,
    pub(crate) decisions: Vec<Decision>,
}

/// One shared-memory step taken from inside a fiber: declare the
/// access, park until granted, then perform it and record the step.
/// The access closure interns the value it read/wrote (a typed
/// hash-map probe); the recorded step is one `Copy` [`StepRecord`]
/// carrying a packed [`StepCode`] — no allocation, no rendering.
///
/// # Safety
///
/// Must be called from a fiber resumed by the VM that owns `vm` (this
/// is guaranteed by the dispatch in `SimWorld::step`, which only takes
/// this path while `active_vm` points at a live `VmCore`).
pub(crate) unsafe fn vm_step<R>(
    vm: *mut VmCore,
    reg_id: RegId,
    sym: RegSym,
    kind: AccessKind,
    access: impl FnOnce(bool) -> (R, ValueId),
) -> R {
    // Scoped references: never held across a context switch, so the VM
    // loop and this fiber alternate exclusive access.
    let pid = {
        let core = &mut *vm;
        let pid = core.current;
        core.pending[pid] = PendingAccess { reg: reg_id, kind };
        core.state[pid] = ProcState::Waiting;
        pid
    };
    crate::fiber::fiber_yield();
    if (*vm).aborted {
        std::panic::panic_any(SimAbort);
    }
    let record = (*vm).config.record_trace;
    let (result, value) = access(record);
    if record {
        let core = &mut *vm;
        core.trace.push(TraceItem::Step(StepRecord {
            proc: pid,
            kind,
            reg_id,
            code: StepCode::pack(pid, kind.into(), sym, value),
        }));
    }
    result
}

/// Appends a high-level event marker; called (via `SimWorld`) from
/// inside a running fiber. `invoke` carries the invoked operation's
/// interned identity and selects [`TraceItem::HiInvoke`]; `None`
/// records the conservative [`TraceItem::Hi`].
///
/// # Safety
///
/// Same contract as [`vm_step`].
pub(crate) unsafe fn vm_push_hi(vm: *mut VmCore, index: usize, invoke: Option<OpSym>) {
    let core = &mut *vm;
    if core.config.record_trace {
        core.trace.push(match invoke {
            Some(op) => TraceItem::HiInvoke(index, op),
            None => TraceItem::Hi(index),
        });
    }
}

/// Safe front end for [`vm_step`], so `world.rs` stays free of
/// `unsafe` (the crate confines its unsafe code to this module and
/// `fiber`).
pub(crate) fn step_on<R>(
    vm: *mut VmCore,
    reg_id: RegId,
    sym: RegSym,
    kind: AccessKind,
    access: impl FnOnce(bool) -> (R, ValueId),
) -> R {
    // SAFETY: callers reach this through `SimWorld::step`, which only
    // dispatches here while `active_vm` publishes a live `VmCore` —
    // i.e. from inside a fiber resumed by the VM that owns `vm`, where
    // the fiber holds exclusive access to the core (module docs).
    unsafe { vm_step(vm, reg_id, sym, kind, access) }
}

/// Safe front end for [`vm_push_hi`]; same confinement rationale as
/// [`step_on`].
pub(crate) fn push_hi_on(vm: *mut VmCore, index: usize, invoke: Option<OpSym>) {
    // SAFETY: as for `step_on` — only called via
    // `SimWorld::push_hi_marker` from inside a running fiber of the VM
    // that owns `vm`, which has exclusive access to the core.
    unsafe { vm_push_hi(vm, index, invoke) }
}

/// Unwinds every still-suspended fiber (the budget-abort / sibling
/// panic protocol): sets the abort flag and resumes each waiting fiber
/// so its parked `vm_step` re-raises as a `SimAbort` unwind, caught at
/// the fiber entry.
///
/// # Safety
///
/// `vm` must point at the live `VmCore` owning `fibers`, called from
/// the VM loop (not from inside a fiber), so the core is exclusively
/// accessible between resumes.
unsafe fn abort_all(vm: *mut VmCore, fibers: &mut [Fiber]) {
    (*vm).aborted = true;
    IN_SIM_ABORT.store(true, Ordering::SeqCst);
    let mut secondary: Option<Box<dyn std::any::Any + Send>> = None;
    for (pid, fiber) in fibers.iter_mut().enumerate() {
        let waiting = {
            let core = &mut *vm;
            if core.state[pid] == ProcState::Waiting {
                core.current = pid;
                true
            } else {
                false
            }
        };
        if waiting {
            fiber.resume();
            debug_assert!(fiber.is_done(), "aborted fiber must unwind to completion");
            {
                let core = &mut *vm;
                core.state[pid] = ProcState::Done;
            }
            if let Some(payload) = fiber.take_panic() {
                if payload.downcast_ref::<SimAbort>().is_none() && secondary.is_none() {
                    // A Drop impl panicked for real during the unwind;
                    // finish collapsing the world, then re-raise.
                    secondary = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = secondary {
        std::panic::resume_unwind(payload);
    }
}

/// Executes one run on the step VM. This is what [`SimWorld::run`]
/// does; see its documentation for the contract.
pub(crate) fn run_vm(
    world: &SimWorld,
    programs: Vec<Program>,
    scheduler: &mut dyn Scheduler,
    max_steps: u64,
    config: RunConfig,
) -> RunOutcome {
    let n = world.processes();
    assert_eq!(programs.len(), n, "one program per process");
    {
        let mut st = world.inner.state.lock().unwrap();
        assert!(
            !st.started,
            "a SimWorld runs once per reset (see SimWorld::reset)"
        );
        st.started = true;
        if st.reg_floor.is_none() {
            // Registers allocated from here on belong to the run and
            // are discarded by a reset.
            st.reg_floor = Some(world.register_count());
        }
    }

    // Reuse the previous run's core and buffers when the world was
    // reset; build fresh ones otherwise.
    let mut vm = {
        let mut spare = world.inner.spare.lock().unwrap();
        let mut core = match spare.core.take() {
            Some(mut core) => {
                core.reinit(n, config);
                core
            }
            None => Box::new(VmCore::new(n, config)),
        };
        if core.trace.capacity() == 0 {
            core.trace = std::mem::take(&mut spare.trace);
        }
        if core.decisions.capacity() == 0 {
            core.decisions = std::mem::take(&mut spare.decisions);
        }
        core
    };
    let vm_ptr: *mut VmCore = &mut *vm;
    world.inner.active_vm.store(vm_ptr, Ordering::SeqCst);
    // Clear the published pointer even if we unwind (propagating a
    // simulated program's genuine panic).
    struct ClearVm<'a>(&'a SimWorld);
    impl Drop for ClearVm<'_> {
        fn drop(&mut self) {
            self.0
                .inner
                .active_vm
                .store(std::ptr::null_mut(), Ordering::SeqCst);
        }
    }
    let _clear = ClearVm(world);

    let mut fibers: Vec<Fiber> = programs
        .into_iter()
        .enumerate()
        .map(|(pid, program)| {
            let world = world.clone();
            Fiber::spawn(
                pid,
                Box::new(move || {
                    let ctx = ProcCtx { world, pid };
                    program(ctx);
                }),
            )
        })
        .collect();

    // SAFETY: `vm_ptr` points at the boxed `VmCore` owned by this
    // frame, which outlives the whole block; fibers only touch the
    // core while suspended in `vm_step` (never concurrently with the
    // loop — exactly one side runs at a time), so every dereference
    // here has exclusive access.
    unsafe {
        // First activation: run every process to its first declared
        // access (or to completion), in pid order.
        for (pid, fiber) in fibers.iter_mut().enumerate() {
            (*vm_ptr).current = pid;
            fiber.resume();
            if fiber.is_done() {
                {
                    let core = &mut *vm_ptr;
                    core.state[pid] = ProcState::Done;
                }
                if let Some(payload) = fiber.take_panic() {
                    if payload.downcast_ref::<SimAbort>().is_none() {
                        abort_all(vm_ptr, &mut fibers);
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }

        let mut runnable: Vec<usize> = Vec::with_capacity(n);
        let mut pending: Vec<PendingAccess> = Vec::with_capacity(n);
        let completed = loop {
            // Decision phase: exclusive access to the core between
            // fiber activations (no reference held across a resume).
            // Scheduler panics (a buggy adversary, the non-runnable
            // assertion below, or the explorer's replay-divergence
            // assertion) must unwind the suspended fibers before
            // propagating: dropping a parked fiber would leak its
            // stack's destructors (and aborts in debug builds).
            let picked: Result<usize, Box<dyn std::any::Any + Send>> = {
                let core = &mut *vm_ptr;
                runnable.clear();
                pending.clear();
                for p in 0..n {
                    if core.state[p] == ProcState::Waiting {
                        runnable.push(p);
                        pending.push(core.pending[p]);
                    }
                }
                if runnable.is_empty() {
                    break true; // everyone done
                }
                if core.total_steps >= max_steps {
                    Ok(crate::sched::STOP_RUN) // budget exhausted
                } else {
                    let view = SchedView {
                        runnable: &runnable,
                        trace: &core.trace,
                        steps_per_proc: &core.steps_per_proc,
                        pending: &pending,
                    };
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| scheduler.pick(&view)))
                }
            };
            let chosen = match picked {
                Ok(chosen) => chosen,
                Err(payload) => {
                    abort_all(vm_ptr, &mut fibers);
                    std::panic::resume_unwind(payload);
                }
            };
            if chosen == crate::sched::STOP_RUN {
                abort_all(vm_ptr, &mut fibers);
                break false;
            }
            if !runnable.contains(&chosen) {
                abort_all(vm_ptr, &mut fibers);
                panic!("scheduler chose non-runnable process {chosen} (runnable: {runnable:?})");
            }
            {
                let core = &mut *vm_ptr;
                if core.config.record_decisions {
                    core.decisions.push(Decision {
                        runnable: runnable.clone(),
                        chosen,
                        pending: pending.clone(),
                    });
                }
                core.state[chosen] = ProcState::Running;
                core.steps_per_proc[chosen] += 1;
                core.total_steps += 1;
                core.current = chosen;
            }
            fibers[chosen].resume();
            if fibers[chosen].is_done() {
                {
                    let core = &mut *vm_ptr;
                    core.state[chosen] = ProcState::Done;
                }
                if let Some(payload) = fibers[chosen].take_panic() {
                    if payload.downcast_ref::<SimAbort>().is_none() {
                        abort_all(vm_ptr, &mut fibers);
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        };

        // Let the scheduler observe the final trace (steps granted after
        // its last decision, trailing event markers): drivers that track
        // per-step execution metadata finalise the last step here. A
        // panic out of `run_end` must not leak the VM core mid-teardown:
        // finish unpublishing and stashing it first (the world stays
        // replayable, so the explorer's quarantine can retry on it),
        // then rethrow.
        let run_end_panic = {
            let core = &mut *vm_ptr;
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                scheduler.run_end(&core.trace)
            }))
            .err()
        };
        let outcome = {
            let core = &mut *vm_ptr;
            RunOutcome {
                completed,
                steps_per_proc: core.steps_per_proc.clone(),
                trace: std::mem::take(&mut core.trace),
                decisions: std::mem::take(&mut core.decisions),
            }
        };
        // Unpublish the core before stashing it for the next run on a
        // reset world (fibers are all done; the guard's later clear is
        // a no-op).
        drop(_clear);
        world.inner.spare.lock().unwrap().core = Some(vm);
        if let Some(payload) = run_end_panic {
            std::panic::resume_unwind(payload);
        }
        outcome
    }
}
