//! Static conflict summaries consumed by [`PruneMode::StaticDpor`]
//! (required) and [`PruneMode::OptimalDpor`] (consulted when
//! installed).
//!
//! A [`StaticConflicts`] value is the runtime form of the
//! **placement-commutation certificate** produced by the `sl-analyze`
//! crate: for every register the static access-footprint probe
//! observed, it records whether invocation-placement relaxation is
//! *licensed* on that register and whether the static may-conflict
//! matrix predicts a data race on it (two distinct processes' ops
//! touch it, at least one writing).
//!
//! The explorer uses the two halves asymmetrically, and both
//! directions **fail closed**:
//!
//! * `licensed` drives *pruning*: a `Local` (pause) step carrying at
//!   most an invocation marker may commute with a marker-free data
//!   step only when the data step's register is licensed. Registers
//!   the probe never saw are unlicensed, so nothing is pruned on the
//!   strength of an incomplete analysis.
//! * `racy` drives *validation*: every data race the dynamic detector
//!   observes must be predicted by the matrix. An unpredicted race
//!   aborts the exploration with a diagnostic naming the register and
//!   the analysis footprint — the analysis is never silently wrong.
//!
//! Version-2 certificates additionally install an **op-pair
//! may-conflict matrix**: per unordered pair of op variants, the
//! registers the pair was observed touching when probed concurrently
//! against each other, and the subset the analysis predicts they may
//! race on. The matrix refines both halves: it licenses the pause/pause
//! and one-marked data/data relaxations (see the explorer's module
//! docs), and it lets validation attribute a dynamic race to the pair
//! cell that licensed the commutation before falling back to the
//! per-register partition. Unknown ops ([`sl_check::OpSym::NONE`]) and
//! pairs without a cell always classify as unprobed — fail closed.
//!
//! Register identities are matched two ways: exact interned
//! [`RegSym`]s first, then the register's `(file, line)` allocation
//! site. The site fallback covers registers allocated in loops or
//! sized by the process count — the probe configuration may allocate
//! fewer `slot{i}` registers than a wider simulated run, but every one
//! of them comes from the same `Mem::alloc` call site, which is
//! exactly what the footprint analysis reasons about.
//!
//! [`PruneMode::StaticDpor`]: crate::PruneMode::StaticDpor
//! [`PruneMode::OptimalDpor`]: crate::PruneMode::OptimalDpor

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use sl_check::{OpSym, RegSym};

/// Counters accumulated while an exploration consults a certificate.
///
/// Deliberately *not* part of [`crate::ExploreOutcome`]: the parallel
/// explorer examines a different multiset of step pairs than the
/// sequential one (races found in a delegated subtree are not
/// re-examined by the owner), so these totals are not bit-identical
/// across worker counts — the exploration results are.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StaticTelemetry {
    /// Step pairs commuted by the placement relaxation.
    pub relaxed: u64,
    /// Dynamic races checked against the matrix and found predicted.
    pub validated: u64,
    /// Dynamic races that could not be attributed to a register
    /// (untraced runs record no step metadata); skipped, not validated.
    pub unattributed: u64,
}

/// One cell of the op-pair may-conflict matrix: the registers the two
/// ops were *observed* touching (sequential footprints plus concurrent
/// probe windows) and the subset the analysis predicts they may
/// *conflict* on. Keys are normalised unordered pairs (`a <= b`).
struct PairCell {
    observed: HashSet<RegSym>,
    observed_sites: HashSet<(&'static str, u32)>,
    conflict: HashSet<RegSym>,
    conflict_sites: HashSet<(&'static str, u32)>,
}

/// A static may-conflict summary: which registers license placement
/// relaxation and which are predicted racy. See the module docs.
pub struct StaticConflicts {
    /// Registers observed by the static probe (relaxation license).
    licensed: HashSet<RegSym>,
    /// Allocation sites of licensed registers (loop-allocation fallback).
    licensed_sites: HashSet<(&'static str, u32)>,
    /// Registers the matrix predicts a data race on.
    racy: HashSet<RegSym>,
    /// Allocation sites of racy registers.
    racy_sites: HashSet<(&'static str, u32)>,
    /// Human-readable footprint notes per allocation site, surfaced in
    /// fail-closed diagnostics ("ops touching this register: ...").
    notes: HashMap<(&'static str, u32), String>,
    /// Memoised per-symbol classification `(licensed, racy)` — the
    /// site fallback takes two interner reads, and the explorer asks
    /// about the same handful of symbols millions of times.
    memo: RwLock<HashMap<RegSym, (bool, bool)>>,
    /// The op-pair may-conflict matrix (certificate version 2), keyed
    /// by normalised unordered op pairs. Empty for version-1-shaped
    /// certificates: every pair query then answers "unprobed", which
    /// disables the per-op-pair relaxations — fail closed.
    pairs: HashMap<(OpSym, OpSym), PairCell>,
    /// Memoised `(pair probed, reg observed, reg conflict)` per
    /// `(a, b, reg)` query, same rationale as `memo`.
    #[allow(clippy::type_complexity)]
    pair_memo: RwLock<HashMap<(OpSym, OpSym, RegSym), (bool, bool, bool)>>,
    relaxed: AtomicU64,
    validated: AtomicU64,
    unattributed: AtomicU64,
    /// When set, every dynamic race examined by `validate_race` is also
    /// recorded as a normalised `(opA, opB, reg)` triple — the
    /// overapproximation tests compare these against the certificate's
    /// pair matrix. Off by default (recording takes a mutex per race).
    record_races: AtomicBool,
    races: Mutex<BTreeSet<(OpSym, OpSym, RegSym)>>,
}

/// Normalised unordered pair key.
fn pair_key(a: OpSym, b: OpSym) -> (OpSym, OpSym) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl std::fmt::Debug for StaticConflicts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticConflicts")
            .field("licensed", &self.licensed.len())
            .field("racy", &self.racy.len())
            .field("telemetry", &self.telemetry())
            .finish()
    }
}

impl StaticConflicts {
    /// Builds a certificate from the licensed and racy register sets.
    /// Each symbol also licenses (or marks racy) its whole allocation
    /// site, so same-site registers of a differently sized
    /// configuration classify identically.
    pub fn new(
        licensed: impl IntoIterator<Item = RegSym>,
        racy: impl IntoIterator<Item = RegSym>,
    ) -> StaticConflicts {
        let licensed: HashSet<RegSym> = licensed.into_iter().collect();
        let racy: HashSet<RegSym> = racy.into_iter().collect();
        let licensed_sites = licensed.iter().map(|s| s.site()).collect();
        let racy_sites = racy.iter().map(|s| s.site()).collect();
        StaticConflicts {
            licensed,
            licensed_sites,
            racy,
            racy_sites,
            notes: HashMap::new(),
            memo: RwLock::new(HashMap::new()),
            pairs: HashMap::new(),
            pair_memo: RwLock::new(HashMap::new()),
            relaxed: AtomicU64::new(0),
            validated: AtomicU64::new(0),
            unattributed: AtomicU64::new(0),
            record_races: AtomicBool::new(false),
            races: Mutex::new(BTreeSet::new()),
        }
    }

    /// Merges one cell of the op-pair may-conflict matrix (certificate
    /// version 2): the ops named by their canonical labels, `observed`
    /// the registers either op was seen touching when probed against
    /// the other, `conflict` the subset the analysis predicts the pair
    /// may race on. Each register also enrols its allocation site, with
    /// the same loop-allocation rationale as the per-register sets.
    pub fn add_pair(
        &mut self,
        a: &str,
        b: &str,
        observed: impl IntoIterator<Item = RegSym>,
        conflict: impl IntoIterator<Item = RegSym>,
    ) {
        let key = pair_key(OpSym::intern(a), OpSym::intern(b));
        let cell = self.pairs.entry(key).or_insert_with(|| PairCell {
            observed: HashSet::new(),
            observed_sites: HashSet::new(),
            conflict: HashSet::new(),
            conflict_sites: HashSet::new(),
        });
        for sym in observed {
            cell.observed_sites.insert(sym.site());
            cell.observed.insert(sym);
        }
        for sym in conflict {
            // Conflict evidence implies both ops reached the register:
            // a conflict site is always also an observed site.
            cell.observed_sites.insert(sym.site());
            cell.observed.insert(sym);
            cell.conflict_sites.insert(sym.site());
            cell.conflict.insert(sym);
        }
    }

    /// An empty certificate: nothing licensed, nothing predicted racy.
    /// Useful as a fail-closed default — every observed race aborts.
    pub fn empty() -> StaticConflicts {
        StaticConflicts::new([], [])
    }

    /// Attaches a footprint note to `sym`'s allocation site, shown in
    /// fail-closed diagnostics.
    pub fn set_note(&mut self, sym: RegSym, note: impl Into<String>) {
        self.notes.insert(sym.site(), note.into());
    }

    /// `(licensed, racy)` for `sym`, by symbol or by allocation site.
    fn classify(&self, sym: RegSym) -> (bool, bool) {
        if sym == RegSym::LOCAL {
            return (false, false);
        }
        if let Some(&hit) = self.memo.read().unwrap().get(&sym) {
            return hit;
        }
        let site = sym.site();
        let licensed = self.licensed.contains(&sym) || self.licensed_sites.contains(&site);
        let racy = self.racy.contains(&sym) || self.racy_sites.contains(&site);
        self.memo.write().unwrap().insert(sym, (licensed, racy));
        (licensed, racy)
    }

    /// Whether the placement relaxation is licensed on `sym` (the
    /// static probe observed this register, by symbol or site).
    pub fn licensed(&self, sym: RegSym) -> bool {
        self.classify(sym).0
    }

    /// Whether the static matrix predicts a data race on `sym`.
    pub fn racy(&self, sym: RegSym) -> bool {
        self.classify(sym).1
    }

    /// `(pair probed, reg observed, reg conflict)` for the unordered op
    /// pair `(a, b)` and register `sym`, fail-closed: unknown ops
    /// ([`OpSym::NONE`]) and pairs without a matrix cell answer
    /// `(false, false, false)`.
    fn classify_pair(&self, a: OpSym, b: OpSym, sym: RegSym) -> (bool, bool, bool) {
        if a.is_none() || b.is_none() {
            return (false, false, false);
        }
        let key = pair_key(a, b);
        let memo_key = (key.0, key.1, sym);
        if let Some(&hit) = self.pair_memo.read().unwrap().get(&memo_key) {
            return hit;
        }
        let result = match self.pairs.get(&key) {
            None => (false, false, false),
            Some(cell) => {
                let site = sym.site();
                let observed = sym != RegSym::LOCAL
                    && (cell.observed.contains(&sym) || cell.observed_sites.contains(&site));
                let conflict = sym != RegSym::LOCAL
                    && (cell.conflict.contains(&sym) || cell.conflict_sites.contains(&site));
                (true, observed, conflict)
            }
        };
        self.pair_memo.write().unwrap().insert(memo_key, result);
        result
    }

    /// Whether the op pair `(a, b)` has a cell in the matrix — i.e. the
    /// concurrent probe drove this pair and its footprints are known.
    pub fn pair_probed(&self, a: OpSym, b: OpSym) -> bool {
        self.classify_pair(a, b, RegSym::LOCAL).0
    }

    /// Whether the per-op-pair placement relaxation is licensed for the
    /// pair `(a, b)` on register `sym`: the pair was probed and the
    /// register lies inside the pair's observed footprint.
    pub fn pair_licensed(&self, a: OpSym, b: OpSym, sym: RegSym) -> bool {
        self.classify_pair(a, b, sym).1
    }

    /// Whether the matrix predicts the op pair `(a, b)` may race on
    /// `sym`: `None` when the pair has no cell (fall back to the
    /// per-register partition), `Some(conflict)` when it has.
    pub fn pair_predicts(&self, a: OpSym, b: OpSym, sym: RegSym) -> Option<bool> {
        let (probed, _, conflict) = self.classify_pair(a, b, sym);
        probed.then_some(conflict)
    }

    /// Number of op-pair cells installed (0 for version-1 shapes).
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Turns on dynamic race recording (see `record_races`).
    pub fn enable_race_recording(&self) {
        self.record_races.store(true, Ordering::Relaxed);
    }

    /// The normalised `(opA, opB, reg)` triples of every dynamic race
    /// examined while recording was enabled.
    pub fn recorded_races(&self) -> Vec<(OpSym, OpSym, RegSym)> {
        self.races.lock().unwrap().iter().copied().collect()
    }

    pub(crate) fn note_race(&self, a: OpSym, b: OpSym, sym: RegSym) {
        if self.record_races.load(Ordering::Relaxed) {
            let key = pair_key(a, b);
            self.races.lock().unwrap().insert((key.0, key.1, sym));
        }
    }

    /// A diagnostic rendering of `sym` with its footprint note.
    pub fn describe(&self, sym: RegSym) -> String {
        let (file, line) = sym.site();
        let note = self
            .notes
            .get(&(file, line))
            .map(|n| format!("; static footprint: {n}"))
            .unwrap_or_default();
        format!("register `{}` (alloc at {file}:{line}){note}", sym.name())
    }

    pub(crate) fn note_relaxed(&self) {
        self.relaxed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_validated(&self) {
        self.validated.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_unattributed(&self) {
        self.unattributed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counters accumulated so far (explorations only add; a
    /// certificate can be shared across explorations).
    pub fn telemetry(&self) -> StaticTelemetry {
        StaticTelemetry {
            relaxed: self.relaxed.load(Ordering::Relaxed),
            validated: self.validated.load(Ordering::Relaxed),
            unattributed: self.unattributed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_by_symbol_and_by_site() {
        let a = RegSym::intern("stx-A", file!(), line!(), 1);
        // Same site, different name — as loop allocations produce.
        let (f, l) = a.site();
        let a2 = RegSym::intern("stx-A2", f, l, 2);
        let b = RegSym::intern("stx-B", file!(), line!(), 1);
        let st = StaticConflicts::new([a], [a]);
        assert!(st.licensed(a) && st.racy(a));
        assert!(st.licensed(a2), "site fallback licenses same-site regs");
        assert!(st.racy(a2));
        assert!(!st.licensed(b) && !st.racy(b));
        assert!(!st.licensed(RegSym::LOCAL));
        // Memoised second lookup agrees.
        assert!(st.licensed(a2) && !st.licensed(b));
    }

    #[test]
    fn pair_matrix_classifies_fail_closed() {
        let r = RegSym::intern("stx-pair-R", file!(), line!(), 1);
        let s = RegSym::intern("stx-pair-S", file!(), line!(), 1);
        let t = RegSym::intern("stx-pair-T", file!(), line!(), 1);
        let mut st = StaticConflicts::new([r, s, t], [r]);
        st.add_pair("DWrite", "DRead", [r, s], [r]);
        let w = OpSym::intern("DWrite");
        let rd = OpSym::intern("DRead");
        let scan = OpSym::intern("Scan");
        // Pair queries are order-insensitive.
        assert!(st.pair_probed(w, rd) && st.pair_probed(rd, w));
        assert!(st.pair_licensed(w, rd, r) && st.pair_licensed(rd, w, s));
        assert!(!st.pair_licensed(w, rd, t), "outside the pair footprint");
        assert_eq!(st.pair_predicts(w, rd, r), Some(true));
        assert_eq!(st.pair_predicts(w, rd, s), Some(false));
        // Unprobed pairs and unknown ops answer fail-closed.
        assert!(!st.pair_probed(w, scan));
        assert_eq!(st.pair_predicts(w, scan, r), None);
        assert!(!st.pair_probed(OpSym::NONE, rd));
        assert!(!st.pair_licensed(OpSym::NONE, rd, r));
        // Site fallback: a same-site register classifies like `r`.
        let (f, l) = r.site();
        let r2 = RegSym::intern("stx-pair-R2", f, l, 2);
        assert!(st.pair_licensed(w, rd, r2));
        assert_eq!(st.pair_predicts(w, rd, r2), Some(true));
        // Race recording normalises and dedupes.
        assert!(st.recorded_races().is_empty());
        st.note_race(rd, w, r); // ignored: recording off
        st.enable_race_recording();
        st.note_race(rd, w, r);
        st.note_race(w, rd, r);
        assert_eq!(st.recorded_races().len(), 1);
    }

    #[test]
    fn notes_surface_in_descriptions() {
        let a = RegSym::intern("stx-noted", file!(), line!(), 1);
        let mut st = StaticConflicts::empty();
        st.set_note(a, "write by push@p0, read by pop@p1");
        let d = st.describe(a);
        assert!(d.contains("stx-noted") && d.contains("push@p0"), "{d}");
    }
}
