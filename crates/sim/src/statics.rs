//! Static conflict summaries consumed by [`PruneMode::StaticDpor`]
//! (required) and [`PruneMode::OptimalDpor`] (consulted when
//! installed).
//!
//! A [`StaticConflicts`] value is the runtime form of the
//! **placement-commutation certificate** produced by the `sl-analyze`
//! crate: for every register the static access-footprint probe
//! observed, it records whether invocation-placement relaxation is
//! *licensed* on that register and whether the static may-conflict
//! matrix predicts a data race on it (two distinct processes' ops
//! touch it, at least one writing).
//!
//! The explorer uses the two halves asymmetrically, and both
//! directions **fail closed**:
//!
//! * `licensed` drives *pruning*: a `Local` (pause) step carrying at
//!   most an invocation marker may commute with a marker-free data
//!   step only when the data step's register is licensed. Registers
//!   the probe never saw are unlicensed, so nothing is pruned on the
//!   strength of an incomplete analysis.
//! * `racy` drives *validation*: every data race the dynamic detector
//!   observes must be predicted by the matrix. An unpredicted race
//!   aborts the exploration with a diagnostic naming the register and
//!   the analysis footprint — the analysis is never silently wrong.
//!
//! Register identities are matched two ways: exact interned
//! [`RegSym`]s first, then the register's `(file, line)` allocation
//! site. The site fallback covers registers allocated in loops or
//! sized by the process count — the probe configuration may allocate
//! fewer `slot{i}` registers than a wider simulated run, but every one
//! of them comes from the same `Mem::alloc` call site, which is
//! exactly what the footprint analysis reasons about.
//!
//! [`PruneMode::StaticDpor`]: crate::PruneMode::StaticDpor
//! [`PruneMode::OptimalDpor`]: crate::PruneMode::OptimalDpor

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use sl_check::RegSym;

/// Counters accumulated while an exploration consults a certificate.
///
/// Deliberately *not* part of [`crate::ExploreOutcome`]: the parallel
/// explorer examines a different multiset of step pairs than the
/// sequential one (races found in a delegated subtree are not
/// re-examined by the owner), so these totals are not bit-identical
/// across worker counts — the exploration results are.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StaticTelemetry {
    /// Step pairs commuted by the placement relaxation.
    pub relaxed: u64,
    /// Dynamic races checked against the matrix and found predicted.
    pub validated: u64,
    /// Dynamic races that could not be attributed to a register
    /// (untraced runs record no step metadata); skipped, not validated.
    pub unattributed: u64,
}

/// A static may-conflict summary: which registers license placement
/// relaxation and which are predicted racy. See the module docs.
pub struct StaticConflicts {
    /// Registers observed by the static probe (relaxation license).
    licensed: HashSet<RegSym>,
    /// Allocation sites of licensed registers (loop-allocation fallback).
    licensed_sites: HashSet<(&'static str, u32)>,
    /// Registers the matrix predicts a data race on.
    racy: HashSet<RegSym>,
    /// Allocation sites of racy registers.
    racy_sites: HashSet<(&'static str, u32)>,
    /// Human-readable footprint notes per allocation site, surfaced in
    /// fail-closed diagnostics ("ops touching this register: ...").
    notes: HashMap<(&'static str, u32), String>,
    /// Memoised per-symbol classification `(licensed, racy)` — the
    /// site fallback takes two interner reads, and the explorer asks
    /// about the same handful of symbols millions of times.
    memo: RwLock<HashMap<RegSym, (bool, bool)>>,
    relaxed: AtomicU64,
    validated: AtomicU64,
    unattributed: AtomicU64,
}

impl std::fmt::Debug for StaticConflicts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticConflicts")
            .field("licensed", &self.licensed.len())
            .field("racy", &self.racy.len())
            .field("telemetry", &self.telemetry())
            .finish()
    }
}

impl StaticConflicts {
    /// Builds a certificate from the licensed and racy register sets.
    /// Each symbol also licenses (or marks racy) its whole allocation
    /// site, so same-site registers of a differently sized
    /// configuration classify identically.
    pub fn new(
        licensed: impl IntoIterator<Item = RegSym>,
        racy: impl IntoIterator<Item = RegSym>,
    ) -> StaticConflicts {
        let licensed: HashSet<RegSym> = licensed.into_iter().collect();
        let racy: HashSet<RegSym> = racy.into_iter().collect();
        let licensed_sites = licensed.iter().map(|s| s.site()).collect();
        let racy_sites = racy.iter().map(|s| s.site()).collect();
        StaticConflicts {
            licensed,
            licensed_sites,
            racy,
            racy_sites,
            notes: HashMap::new(),
            memo: RwLock::new(HashMap::new()),
            relaxed: AtomicU64::new(0),
            validated: AtomicU64::new(0),
            unattributed: AtomicU64::new(0),
        }
    }

    /// An empty certificate: nothing licensed, nothing predicted racy.
    /// Useful as a fail-closed default — every observed race aborts.
    pub fn empty() -> StaticConflicts {
        StaticConflicts::new([], [])
    }

    /// Attaches a footprint note to `sym`'s allocation site, shown in
    /// fail-closed diagnostics.
    pub fn set_note(&mut self, sym: RegSym, note: impl Into<String>) {
        self.notes.insert(sym.site(), note.into());
    }

    /// `(licensed, racy)` for `sym`, by symbol or by allocation site.
    fn classify(&self, sym: RegSym) -> (bool, bool) {
        if sym == RegSym::LOCAL {
            return (false, false);
        }
        if let Some(&hit) = self.memo.read().unwrap().get(&sym) {
            return hit;
        }
        let site = sym.site();
        let licensed = self.licensed.contains(&sym) || self.licensed_sites.contains(&site);
        let racy = self.racy.contains(&sym) || self.racy_sites.contains(&site);
        self.memo.write().unwrap().insert(sym, (licensed, racy));
        (licensed, racy)
    }

    /// Whether the placement relaxation is licensed on `sym` (the
    /// static probe observed this register, by symbol or site).
    pub fn licensed(&self, sym: RegSym) -> bool {
        self.classify(sym).0
    }

    /// Whether the static matrix predicts a data race on `sym`.
    pub fn racy(&self, sym: RegSym) -> bool {
        self.classify(sym).1
    }

    /// A diagnostic rendering of `sym` with its footprint note.
    pub fn describe(&self, sym: RegSym) -> String {
        let (file, line) = sym.site();
        let note = self
            .notes
            .get(&(file, line))
            .map(|n| format!("; static footprint: {n}"))
            .unwrap_or_default();
        format!("register `{}` (alloc at {file}:{line}){note}", sym.name())
    }

    pub(crate) fn note_relaxed(&self) {
        self.relaxed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_validated(&self) {
        self.validated.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_unattributed(&self) {
        self.unattributed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counters accumulated so far (explorations only add; a
    /// certificate can be shared across explorations).
    pub fn telemetry(&self) -> StaticTelemetry {
        StaticTelemetry {
            relaxed: self.relaxed.load(Ordering::Relaxed),
            validated: self.validated.load(Ordering::Relaxed),
            unattributed: self.unattributed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_by_symbol_and_by_site() {
        let a = RegSym::intern("stx-A", file!(), line!(), 1);
        // Same site, different name — as loop allocations produce.
        let (f, l) = a.site();
        let a2 = RegSym::intern("stx-A2", f, l, 2);
        let b = RegSym::intern("stx-B", file!(), line!(), 1);
        let st = StaticConflicts::new([a], [a]);
        assert!(st.licensed(a) && st.racy(a));
        assert!(st.licensed(a2), "site fallback licenses same-site regs");
        assert!(st.racy(a2));
        assert!(!st.licensed(b) && !st.racy(b));
        assert!(!st.licensed(RegSym::LOCAL));
        // Memoised second lookup agrees.
        assert!(st.licensed(a2) && !st.licensed(b));
    }

    #[test]
    fn notes_surface_in_descriptions() {
        let a = RegSym::intern("stx-noted", file!(), line!(), 1);
        let mut st = StaticConflicts::empty();
        st.set_note(a, "write by push@p0, read by pop@p1");
        let d = st.describe(a);
        assert!(d.contains("stx-noted") && d.contains("push@p0"), "{d}");
    }
}
