//! Stackful coroutines ("fibers") — the execution substrate of the step
//! VM.
//!
//! A fiber runs a simulated process body on its own call stack and
//! suspends at every shared-memory step, so admitting one step is a
//! userspace context switch (a handful of instructions), not an OS
//! thread handoff. Two interchangeable implementations sit behind one
//! API:
//!
//! * **`asm` fibers** (x86_64 Linux, the default there): a hand-rolled
//!   SysV context switch that saves the six callee-saved registers and
//!   the stack pointer. One simulated step costs two such switches —
//!   tens of nanoseconds — which is what makes the VM's ≥50× throughput
//!   target over the retired thread-handoff engine possible.
//! * **`parked-thread` fibers** (every other target, Miri, or the
//!   `portable-fibers` feature): each fiber is a real thread that
//!   rendezvouses with the VM over channels. Semantically identical,
//!   much slower; kept so the simulator runs anywhere.
//!
//! The VM resumes a fiber with [`Fiber::resume`]; simulated code
//! suspends itself with the free function [`fiber_yield`], reached
//! through thread-local state so that arbitrarily deep algorithm code
//! (which only sees the `Mem` trait) can yield without threading a
//! handle through every call. Unwinding never crosses the context
//! switch: panics (including the VM's budget-abort payload) are caught
//! at the fiber entry point and handed back to the VM by value.

#[cfg(all(
    target_arch = "x86_64",
    target_os = "linux",
    not(miri),
    not(feature = "portable-fibers")
))]
mod imp {
    //! x86_64 SysV context-switch fibers.
    //!
    //! The switch saves rbp, rbx, r12–r15 and the stack pointer; all
    //! other registers are caller-saved across the `extern "C"` call
    //! boundary, so the compiler preserves them for us. Floating-point
    //! control state is left untouched (neither the VM nor simulated
    //! code modifies mxcsr/x87 modes).

    use std::cell::Cell;
    use std::panic::{self, AssertUnwindSafe};

    /// Fiber stack size. Simulated algorithm bodies are shallow
    /// (register algorithms plus some `format!` machinery), but stacks
    /// are pooled per thread and reused across runs, so being generous
    /// here is nearly free while guarding against overflow (heap
    /// stacks have no guard page).
    const STACK_SIZE: usize = 256 * 1024;

    core::arch::global_asm!(
        // fn sl_sim_fiber_switch(save: *mut *mut u8, restore: *mut u8)
        //
        // Saves the current execution context (callee-saved registers +
        // return address, all on the current stack) into `*save` and
        // resumes the context previously saved at `restore`. Returns —
        // on the *other* stack — when someone switches back.
        ".globl sl_sim_fiber_switch",
        "sl_sim_fiber_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, rsi",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
        // First activation of a fiber: the initial fake frame (built in
        // `Fiber::spawn`) "returns" here with r12 = boot data pointer
        // and r13 = the Rust entry function. Align the stack as the ABI
        // requires and call into Rust; the entry never returns.
        ".globl sl_sim_fiber_boot",
        "sl_sim_fiber_boot:",
        "mov rdi, r12",
        "and rsp, -16",
        "call r13",
        "ud2",
    );

    extern "C" {
        fn sl_sim_fiber_switch(save: *mut *mut u8, restore: *mut u8);
        fn sl_sim_fiber_boot();
    }

    thread_local! {
        /// The fiber currently executing on this thread, if any; set by
        /// [`Fiber::resume`] for the duration of the activation so that
        /// [`fiber_yield`] can find its way back to the VM.
        static CURRENT: Cell<*mut FiberInner> = const { Cell::new(std::ptr::null_mut()) };
    }

    struct FiberInner {
        /// Saved VM-side stack pointer while the fiber runs.
        vm_ctx: Cell<*mut u8>,
        /// Saved fiber stack pointer while the fiber is suspended.
        fiber_ctx: Cell<*mut u8>,
        done: Cell<bool>,
        panic: Cell<Option<Box<dyn std::any::Any + Send>>>,
    }

    struct Boot {
        f: Box<dyn FnOnce() + Send + 'static>,
        inner: *mut FiberInner,
    }

    extern "C" fn fiber_main(boot: *mut Boot) -> ! {
        // Runs on the fiber's own stack. Catch everything: unwinding
        // must never cross the assembly switch.
        //
        // SAFETY: `boot` is the pointer `Fiber::spawn` leaked via
        // `Box::into_raw` and parked in the fake frame's r12 slot; the
        // boot trampoline passes it here exactly once, so reclaiming
        // the box is sound and unaliased.
        let boot = unsafe { Box::from_raw(boot) };
        let inner = boot.inner;
        let result = panic::catch_unwind(AssertUnwindSafe(boot.f));
        // SAFETY: `inner` points into the `FiberInner` owned by the
        // `Fiber` that spawned us, which outlives the fiber's stack
        // (the VM never drops a started fiber before it is done), and
        // the VM side is suspended while this fiber runs, so the
        // access is exclusive.
        unsafe {
            if let Err(payload) = result {
                (*inner).panic.set(Some(payload));
            }
            (*inner).done.set(true);
            // Hand control back to the VM forever. A done fiber is
            // never resumed again (`resume` asserts), so the loop is
            // unreachable after the first switch; it exists to make
            // "fell off the end" impossible.
            loop {
                let mut dead: *mut u8 = std::ptr::null_mut();
                sl_sim_fiber_switch(&mut dead, (*inner).vm_ctx.get());
            }
        }
    }

    /// A suspended or running simulated process body with its own stack.
    pub(crate) struct Fiber {
        inner: Box<FiberInner>,
        stack: StackStorage,
        started_or_done: bool,
    }

    impl Fiber {
        /// Creates a fiber that will run `f` on its first resume.
        pub(crate) fn spawn(_pid: usize, f: Box<dyn FnOnce() + Send + 'static>) -> Fiber {
            let mut stack = take_stack();
            let mut inner = Box::new(FiberInner {
                vm_ctx: Cell::new(std::ptr::null_mut()),
                fiber_ctx: Cell::new(std::ptr::null_mut()),
                done: Cell::new(false),
                panic: Cell::new(None),
            });
            let boot = Box::into_raw(Box::new(Boot {
                f,
                inner: &mut *inner,
            }));
            // Build the initial fake frame at the top of the stack so
            // that the first switch "returns" into `sl_sim_fiber_boot`
            // with r13 = fiber_main and r12 = the boot data.
            //
            // SAFETY: the frame is written strictly inside the owned
            // stack allocation (`top - 7*8 >= base` because STACK_SIZE
            // far exceeds one frame), 8-byte aligned by construction,
            // and matches the layout `sl_sim_fiber_switch` pops.
            unsafe {
                let base = stack.0.as_mut_ptr() as usize;
                let top = (base + STACK_SIZE) & !15;
                let frame = (top - 7 * 8) as *mut usize;
                frame.add(0).write(0); // r15
                frame.add(1).write(0); // r14
                frame
                    .add(2)
                    .write(fiber_main as extern "C" fn(*mut Boot) -> ! as usize); // r13
                frame.add(3).write(boot as usize); // r12
                frame.add(4).write(0); // rbx
                frame.add(5).write(0); // rbp (null: terminates fp chains)
                frame
                    .add(6)
                    .write(sl_sim_fiber_boot as unsafe extern "C" fn() as usize); // ret
                inner.fiber_ctx.set(frame as *mut u8);
            }
            Fiber {
                inner,
                stack,
                started_or_done: false,
            }
        }

        /// Runs the fiber until it yields or finishes. Must not be
        /// called on a finished fiber.
        pub(crate) fn resume(&mut self) {
            assert!(!self.inner.done.get(), "resumed a finished fiber");
            self.started_or_done = true;
            let prev = CURRENT.with(|c| c.replace(&mut *self.inner));
            // SAFETY: `fiber_ctx` holds a context previously saved by
            // the switch (or the spawn-built fake frame) on this
            // fiber's live stack; saving into `vm_ctx` targets a field
            // of the boxed `FiberInner` we exclusively borrow.
            unsafe {
                sl_sim_fiber_switch(self.inner.vm_ctx.as_ptr(), self.inner.fiber_ctx.get());
            }
            CURRENT.with(|c| c.set(prev));
        }

        pub(crate) fn is_done(&self) -> bool {
            self.inner.done.get()
        }

        /// The panic payload the fiber finished with, if any.
        pub(crate) fn take_panic(&mut self) -> Option<Box<dyn std::any::Any + Send>> {
            self.inner.panic.take()
        }
    }

    impl Drop for Fiber {
        fn drop(&mut self) {
            if self.inner.done.get() || !self.started_or_done {
                if !self.started_or_done {
                    // Never ran: the boot data was never consumed.
                    //
                    // SAFETY: an unstarted fiber's `fiber_ctx` still
                    // points at the fake frame `spawn` built, whose
                    // r12 slot (index 3) holds the leaked `Boot`
                    // pointer — unconsumed because only `fiber_main`
                    // consumes it, and it never ran.
                    unsafe {
                        let frame = self.inner.fiber_ctx.get() as *mut usize;
                        drop(Box::from_raw(frame.add(3).read() as *mut Boot));
                    }
                }
                recycle_stack(std::mem::replace(&mut self.stack, StackStorage(Vec::new())));
            }
            // A suspended (started, not done) fiber being dropped leaks
            // its stack frames; the VM always unwinds fibers (abort
            // protocol) before dropping them, so this is unreachable in
            // practice but must not recycle a live stack.
            debug_assert!(
                self.inner.done.get() || !self.started_or_done,
                "dropped a suspended fiber without unwinding it"
            );
        }
    }

    /// Suspends the currently running fiber, returning control to the
    /// VM that resumed it. Returns when the VM resumes the fiber again.
    ///
    /// # Panics
    ///
    /// Panics if called outside a fiber.
    pub(crate) fn fiber_yield() {
        let inner = CURRENT.with(|c| c.get());
        assert!(
            !inner.is_null(),
            "fiber_yield called outside a simulated process"
        );
        // SAFETY: `CURRENT` is non-null only for the duration of a
        // `resume` on this thread, so `inner` points at the live
        // `FiberInner` of the running fiber and `vm_ctx` holds the
        // context `resume` saved just before switching here.
        unsafe {
            sl_sim_fiber_switch((*inner).fiber_ctx.as_ptr(), (*inner).vm_ctx.get());
        }
    }

    /// Heap storage for one fiber stack.
    struct StackStorage(Vec<u64>);

    thread_local! {
        /// Per-thread pool of fiber stacks: exploration builds a fresh
        /// world per replayed schedule, and reusing stacks keeps replay
        /// cost at "reset a pointer", not "mmap 256 KiB".
        static STACK_POOL: std::cell::RefCell<Vec<StackStorage>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }

    fn take_stack() -> StackStorage {
        STACK_POOL
            .with(|p| p.borrow_mut().pop())
            .unwrap_or_else(|| StackStorage(vec![0u64; STACK_SIZE / 8]))
    }

    fn recycle_stack(s: StackStorage) {
        if !s.0.is_empty() {
            STACK_POOL.with(|p| {
                let mut pool = p.borrow_mut();
                if pool.len() < 32 {
                    pool.push(s);
                }
            });
        }
    }
}

#[cfg(not(all(
    target_arch = "x86_64",
    target_os = "linux",
    not(miri),
    not(feature = "portable-fibers")
)))]
mod imp {
    //! Portable fallback: each fiber is an OS thread that rendezvouses
    //! with the VM over two channels. Far slower than the assembly
    //! switch, but runs on any target and under Miri. The VM/fiber
    //! protocol guarantees mutual exclusion: at most one side runs at a
    //! time, and channel send/recv pairs provide the happens-before
    //! edges for the raw-pointer state the simulated code touches.

    use std::sync::mpsc::{Receiver, SyncSender};

    enum ToFiber {
        Run,
    }
    enum ToVm {
        Yielded,
        Finished(Option<Box<dyn std::any::Any + Send>>),
    }

    thread_local! {
        /// The yield-side channel endpoints of the fiber running on
        /// this thread (fallback fibers run user code on their own
        /// thread, so these are set once at thread start).
        static YIELDER: std::cell::RefCell<Option<(SyncSender<ToVm>, Receiver<ToFiber>)>> =
            const { std::cell::RefCell::new(None) };
    }

    /// A suspended or running simulated process body (thread-backed).
    pub(crate) struct Fiber {
        to_fiber: SyncSender<ToFiber>,
        from_fiber: Receiver<ToVm>,
        handle: Option<std::thread::JoinHandle<()>>,
        done: bool,
        panic: Option<Box<dyn std::any::Any + Send>>,
    }

    impl Fiber {
        pub(crate) fn spawn(pid: usize, f: Box<dyn FnOnce() + Send + 'static>) -> Fiber {
            let (to_fiber, fiber_rx) = std::sync::mpsc::sync_channel::<ToFiber>(1);
            let (to_vm, from_fiber) = std::sync::mpsc::sync_channel::<ToVm>(1);
            let handle = std::thread::Builder::new()
                .name(format!("sim-fiber-{pid}"))
                .spawn(move || {
                    // Wait for the first resume before running a single
                    // instruction of user code.
                    if fiber_rx.recv().is_err() {
                        return;
                    }
                    YIELDER.with(|y| *y.borrow_mut() = Some((to_vm.clone(), fiber_rx)));
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    YIELDER.with(|y| *y.borrow_mut() = None);
                    let payload = result.err();
                    let _ = to_vm.send(ToVm::Finished(payload));
                })
                .expect("spawn fallback fiber thread");
            Fiber {
                to_fiber,
                from_fiber,
                handle: Some(handle),
                done: false,
                panic: None,
            }
        }

        pub(crate) fn resume(&mut self) {
            assert!(!self.done, "resumed a finished fiber");
            self.to_fiber.send(ToFiber::Run).expect("fiber thread died");
            match self.from_fiber.recv().expect("fiber thread died") {
                ToVm::Yielded => {}
                ToVm::Finished(payload) => {
                    self.done = true;
                    self.panic = payload;
                    if let Some(h) = self.handle.take() {
                        let _ = h.join();
                    }
                }
            }
        }

        pub(crate) fn is_done(&self) -> bool {
            self.done
        }

        pub(crate) fn take_panic(&mut self) -> Option<Box<dyn std::any::Any + Send>> {
            self.panic.take()
        }
    }

    impl Drop for Fiber {
        fn drop(&mut self) {
            // Dropping the struct closes `to_fiber`, which wakes an
            // unstarted thread (it exits without running user code).
            // Finished fibers were already joined in `resume`;
            // suspended fibers must have been unwound by the VM before
            // the drop — if that invariant is broken we detach rather
            // than hang.
            self.handle.take();
        }
    }

    /// Suspends the currently running fiber until the VM resumes it.
    pub(crate) fn fiber_yield() {
        YIELDER.with(|y| {
            let slot = y.borrow();
            let (to_vm, rx) = slot
                .as_ref()
                .expect("fiber_yield called outside a simulated process");
            to_vm.send(ToVm::Yielded).expect("VM side went away");
            rx.recv().expect("VM side went away");
        });
    }
}

pub(crate) use imp::{fiber_yield, Fiber};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fiber_runs_to_completion_without_yielding() {
        let hits = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let h = hits.clone();
        let mut f = Fiber::spawn(
            0,
            Box::new(move || {
                h.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }),
        );
        assert!(!f.is_done());
        f.resume();
        assert!(f.is_done());
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn yield_suspends_and_resume_continues() {
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let l = log.clone();
        let mut f = Fiber::spawn(
            0,
            Box::new(move || {
                l.lock().unwrap().push(1);
                fiber_yield();
                l.lock().unwrap().push(2);
                fiber_yield();
                l.lock().unwrap().push(3);
            }),
        );
        f.resume();
        assert_eq!(*log.lock().unwrap(), vec![1]);
        assert!(!f.is_done());
        f.resume();
        assert_eq!(*log.lock().unwrap(), vec![1, 2]);
        f.resume();
        assert_eq!(*log.lock().unwrap(), vec![1, 2, 3]);
        assert!(f.is_done());
    }

    #[test]
    fn interleaves_two_fibers() {
        // A Mutex'd String (not Rc): closures must be Send for the
        // thread-backed fallback implementation.
        let out = std::sync::Arc::new(std::sync::Mutex::new(String::new()));
        let mk = |tag: char, out: std::sync::Arc<std::sync::Mutex<String>>| {
            Box::new(move || {
                for _ in 0..3 {
                    out.lock().unwrap().push(tag);
                    fiber_yield();
                }
            }) as Box<dyn FnOnce() + Send>
        };
        let mut a = Fiber::spawn(0, mk('a', out.clone()));
        let mut b = Fiber::spawn(1, mk('b', out.clone()));
        for _ in 0..4 {
            if !a.is_done() {
                a.resume();
            }
            if !b.is_done() {
                b.resume();
            }
        }
        assert!(a.is_done() && b.is_done());
        assert_eq!(*out.lock().unwrap(), "ababab");
    }

    #[test]
    fn panic_payload_is_captured_not_propagated() {
        let mut f = Fiber::spawn(0, Box::new(|| panic!("boom in fiber")));
        f.resume();
        assert!(f.is_done());
        let payload = f.take_panic().expect("payload captured");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom in fiber");
    }

    #[test]
    fn dropping_unstarted_fiber_releases_closure() {
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        struct SetOnDrop(std::sync::Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for SetOnDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let probe = SetOnDrop(flag.clone());
        let f = Fiber::spawn(
            0,
            Box::new(move || {
                let _keep = &probe;
            }),
        );
        drop(f);
        // Allow the fallback's thread a moment to observe the closed
        // channel and drop the closure.
        for _ in 0..100 {
            if flag.load(std::sync::atomic::Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::yield_now();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(flag.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    /// Stand-in for the VM's `SimAbort` payload: unwinding a suspended
    /// fiber through a panic payload must complete cleanly.
    struct FiberAbort;

    #[test]
    fn abort_payloads_unwind_cleanly() {
        let mut f = Fiber::spawn(
            0,
            Box::new(|| {
                fiber_yield();
                std::panic::panic_any(FiberAbort);
            }),
        );
        f.resume();
        f.resume();
        assert!(f.is_done());
        let payload = f.take_panic().expect("abort payload captured");
        assert!(payload.downcast_ref::<FiberAbort>().is_some());
    }
}
