//! Deterministic shared-memory simulator.
//!
//! The paper's model is an asynchronous shared-memory system in which an
//! adversary — possibly a *strong* adversary with complete knowledge of
//! the configuration — decides which process takes the next atomic step.
//! This crate is that model, executable:
//!
//! * [`SimWorld`] runs one OS thread per simulated process, but admits
//!   exactly one shared-memory step at a time, chosen by a [`Scheduler`].
//!   Runs are fully deterministic given the scheduler's decisions.
//! * [`SimMem`] implements the `sl_mem::Mem` trait, so any algorithm
//!   written against `Mem` runs under the simulator unchanged.
//! * [`EventLog`] records the high-level invocation/response events of a
//!   run, interleaved with the internal register steps, producing the
//!   transcripts consumed by the `sl-check` checkers.
//! * [`explore`] systematically enumerates scheduling choices to build
//!   bounded prefix trees of transcripts — the input for strong
//!   linearizability model checking.
//!
//! # Example
//!
//! ```
//! use sl_mem::{Mem, Register};
//! use sl_sim::{RoundRobin, SimWorld};
//!
//! let world = SimWorld::new(2);
//! let mem = world.mem();
//! let reg = mem.alloc("X", 0u64);
//! let r0 = reg.clone();
//! let r1 = reg.clone();
//! let outcome = world.run(
//!     vec![
//!         Box::new(move |_ctx| r0.write(1)),
//!         Box::new(move |_ctx| {
//!             let _ = r1.read();
//!         }),
//!     ],
//!     &mut RoundRobin::new(),
//!     1_000,
//! );
//! assert!(outcome.completed);
//! assert_eq!(outcome.total_steps(), 2);
//! ```

mod explore;
mod log;
mod mem;
mod sched;
mod world;

pub use explore::{explore, ExploreOutcome};
pub use log::EventLog;
pub use mem::{SimMem, SimRegister};
pub use sched::{FnScheduler, RoundRobin, Scheduler, Scripted, SeededRandom};
pub use world::{
    AccessKind, Decision, ProcCtx, Program, RunOutcome, SchedView, SimWorld, StepRecord, TraceItem,
};
