//! Deterministic shared-memory simulator: a coroutine-stepped VM with a
//! pruned, parallel schedule explorer.
//!
//! The paper's model is an asynchronous shared-memory system in which an
//! adversary — possibly a *strong* adversary with complete knowledge of
//! the configuration — decides which process takes the next atomic step.
//! This crate is that model, executable:
//!
//! * [`SimWorld`] executes simulated processes as **fibers** (stackful
//!   coroutines) inside a single-threaded step VM. A process runs until
//!   its next shared-memory access, *declares* that access (a
//!   [`PendingAccess`]), and parks; the [`Scheduler`] — consulted with
//!   the full configuration, the paper's strong adaptive adversary —
//!   grants one process its step. One step is two userspace context
//!   switches, not an OS thread handoff (3–13M steps/s depending on
//!   the recording configuration, see [`RunConfig`] and the
//!   `exp_sim_throughput` experiment). Runs are fully deterministic
//!   given the scheduler's decisions.
//! * [`SimMem`] implements the `sl_mem::Mem` trait, so any algorithm
//!   written against `Mem` runs under the simulator unchanged. Every
//!   allocation records a dense [`RegId`] and a globally interned
//!   `sl_check::RegSym` (name + `alloc` call site), so traces point
//!   back into the algorithm under test.
//! * [`EventLog`] records the high-level invocation/response events of a
//!   run, interleaved with the internal register steps, producing the
//!   transcripts consumed by the `sl-check` checkers (and, via
//!   [`EventLog::pretty_transcript`], human-readable counterexamples).
//!   Traced steps are **zero-format**: the VM records each step as one
//!   packed `sl_check::StepCode` (interned register + interned *value*
//!   ids — no `format!`, no string interning), which flows unconverted
//!   into the checkers; labels are decoded lazily on report paths.
//! * [`Explorer`] enumerates adversary schedules depth-first and
//!   stateless (a decision prefix is replayed to reconstruct any node —
//!   cheap, because replays run on the VM), streaming each transcript
//!   into `sl_check`'s builders as it is produced. Pruning is selected
//!   by [`PruneMode`]: **sleep sets** over declared pending accesses
//!   (schedules that differ only in the order of commuting register
//!   accesses are explored once; work-stealing worker pool), or
//!   **source-set DPOR** (wakeup-free
//!   Abdulla–Aronis–Jonsson–Sagonas), which detects races in each
//!   executed schedule with vector clocks and backtracks only where a
//!   reversal is demanded, typically replaying several times fewer
//!   schedules than sleep sets alone — by default with the
//!   **value-aware** refinement ([`PruneMode::ValueDpor`]): observed
//!   same-register read/read pairs and same-value write/write pairs
//!   also commute when no event marker rode on either step. On top of
//!   those, [`PruneMode::OptimalDpor`] turns backtrack candidates
//!   into **wakeup sequences** (whole reversing continuations,
//!   initiated only when they conflict with every sleeping process,
//!   so no sleep-set-blocked replay is ever started) and adds the
//!   **observer rule** (same-register writes commute when neither
//!   value is read before being overwritten). Source
//!   DPOR **parallelises by
//!   per-subtree ownership** (`Explorer::workers`, or
//!   [`env_workers`]): sibling backtrack candidates are delegated as
//!   frozen subtree tasks onto a work-stealing deque, escaping race
//!   demands merge at the joins, and the result — schedule set,
//!   counts, merged transcript DAG — is bit-identical to sequential
//!   exploration at any worker count. Replays run on warm worlds:
//!   [`SimWorld::reset`] restores registers to their `alloc`-time
//!   values (keeping names, ids, and allocation sites), and trace
//!   buffers, VM cores, and fiber stacks are recycled. The
//!   script-replay [`explore`] function remains for compatibility.
//!
//! The original thread-per-process engine has been retired; the
//! portable-fibers parity run (`--features portable-fibers`) is the
//! compatibility gate for the fiber implementations. `sl-api` builds
//! the schedule fuzzer and the object model-checking harness on top of
//! this crate.
//!
//! # Crash resilience and quarantine soundness
//!
//! [`Explorer::explore_resumable`] makes deep DPOR explorations
//! survivable: the root walk periodically freezes its outstanding
//! frontier into a versioned, FNV-1a-64-checksummed checkpoint
//! ([`CheckpointStore`], atomic temp-file + rename, fail-closed parse
//! with named diagnostics — see [`Checkpoint`] for the wire format),
//! and the union of an interrupted
//! run with its resumption is bit-identical to an uninterrupted run at
//! any worker count. [`CheckpointPolicy`] adds a wall-clock deadline
//! and a schedule budget; on expiry the explorer *drains* — writes one
//! clean checkpoint and returns a resumable partial
//! [`ExploreOutcome`]. Worker panics are retried with deterministic
//! backoff and then **quarantined**: the poisoned subtree is dumped as
//! a replayable [`PoisonReport`] and exploration continues around it.
//! Quarantine is sound by construction — a quarantined subtree banks
//! *zero* schedules and forces `partial = true` on the outcome, so
//! unexplored schedules can never surface as a false PASS; callers
//! must treat a partial outcome's verdict as "no violation found in
//! the explored portion", never as exhaustive. Deterministic crash
//! injection for testing all of the above lives in [`FaultPlan`]
//! (`SL_FAULT_POINT`/`SL_FAULT_NTH`/`SL_FAULT_MODE`).
//!
//! # Example
//!
//! ```
//! use sl_mem::{Mem, Register};
//! use sl_sim::{RoundRobin, SimWorld};
//!
//! let world = SimWorld::new(2);
//! let mem = world.mem();
//! let reg = mem.alloc("X", 0u64);
//! let r0 = reg.clone();
//! let r1 = reg.clone();
//! let outcome = world.run(
//!     vec![
//!         Box::new(move |_ctx| r0.write(1)),
//!         Box::new(move |_ctx| {
//!             let _ = r1.read();
//!         }),
//!     ],
//!     &mut RoundRobin::new(),
//!     1_000,
//! );
//! assert!(outcome.completed);
//! assert_eq!(outcome.total_steps(), 2);
//! ```

#![deny(unsafe_code)]

mod checkpoint;
mod explore;
pub mod wire;
// Unsafe is confined to the two modules that must speak to raw
// coroutine state: `fiber` (stack switching) and `vm` (the active-core
// pointer the fibers re-enter through). Every `unsafe` block there
// carries a `// SAFETY:` comment; the CI lint enforces both the
// confinement and the comments.
#[allow(unsafe_code)]
mod fiber;
mod log;
mod mem;
mod pool;
mod sched;
mod statics;
#[allow(unsafe_code)]
mod vm;
mod world;

pub use checkpoint::{
    write_poison_report, Checkpoint, CheckpointPolicy, CheckpointStore, CkptAccess, CkptCounters,
    CkptNext, CkptNode, CkptTask, CkptWriter, FaultCrash, FaultPlan, FaultPoint, PoisonReport,
    ResumeExpectation, ResumeSession,
};
pub use explore::{
    env_workers, explore, ExploreOutcome, Explorer, PruneMode, ReplayCtx, ScheduleDriver,
    TaskDispatcher, WireEscape, WireTask, WireTaskResult,
};
pub use log::EventLog;
pub use mem::{SimMem, SimRegister};
pub use pool::{ReplayPool, Sharded};
pub use sched::{FnScheduler, RoundRobin, Scheduler, Scripted, SeededRandom, STOP_RUN};
pub use statics::{StaticConflicts, StaticTelemetry};
pub use wire::fnv1a64;
pub use world::{
    AccessKind, Decision, PendingAccess, ProcCtx, Program, RegId, RunConfig, RunOutcome, SchedView,
    SimWorld, StepRecord, TraceItem,
};
