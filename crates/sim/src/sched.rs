//! Schedulers: deterministic, random, scripted, and adaptive adversaries.

use sl_mem::SmallRng;

use crate::world::{SchedView, TraceItem};

/// Sentinel a [`Scheduler`] may return from [`Scheduler::pick`] to
/// abandon the run: the engine aborts exactly as if the step budget
/// were exhausted (suspended processes unwind, `completed` is `false`).
/// The explorer uses this to cut continuations that sleep-set pruning
/// proves redundant; depth-bounded searches can use it too.
pub const STOP_RUN: usize = usize::MAX;

/// Chooses which process takes the next shared-memory step.
///
/// The scheduler is consulted when every process is quiescent, with a
/// [`SchedView`] of the full configuration — this is the paper's *strong
/// adaptive adversary* interface. Closures capturing register handles
/// (via [`crate::SimRegister::peek`]) can base decisions on shared state.
pub trait Scheduler {
    /// Picks one process from `view.runnable`, or returns [`STOP_RUN`]
    /// to abandon the run.
    fn pick(&mut self, view: &SchedView<'_>) -> usize;

    /// Called once when the run finishes (normally or aborted), with
    /// the full recorded trace. Steps granted by the final decisions
    /// are only visible here — the VM stops consulting [`Scheduler::pick`]
    /// once every process is done. Default: no-op; the exploring
    /// driver uses it to finalise per-step execution metadata.
    fn run_end(&mut self, trace: &[TraceItem]) {
        let _ = trace;
    }
}

/// Cycles through processes in index order.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    last: Option<usize>,
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        RoundRobin { last: None }
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, view: &SchedView<'_>) -> usize {
        let chosen = match self.last {
            None => view.runnable[0],
            Some(last) => *view
                .runnable
                .iter()
                .find(|&&p| p > last)
                .unwrap_or(&view.runnable[0]),
        };
        self.last = Some(chosen);
        chosen
    }
}

/// Uniformly random choices from a seeded generator; runs are
/// reproducible given the seed.
#[derive(Clone, Debug)]
pub struct SeededRandom {
    rng: SmallRng,
}

impl SeededRandom {
    /// Creates a random scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        SeededRandom {
            rng: SmallRng::new(seed),
        }
    }
}

impl Scheduler for SeededRandom {
    fn pick(&mut self, view: &SchedView<'_>) -> usize {
        *self.rng.choose(view.runnable)
    }
}

/// Follows an explicit script of process ids, then falls back to the
/// lowest-id runnable process.
///
/// If a scripted process is not runnable at its decision point (e.g. it
/// already finished), the entry is skipped. This scheduler is how the
/// paper's hand-constructed adversarial transcripts (Observation 4) and
/// the exhaustive explorer's replay prefixes are expressed.
#[derive(Clone, Debug)]
pub struct Scripted {
    script: Vec<usize>,
    pos: usize,
}

impl Scripted {
    /// Creates a scripted scheduler.
    pub fn new(script: Vec<usize>) -> Self {
        Scripted { script, pos: 0 }
    }

    /// How many script entries have been consumed.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl Scheduler for Scripted {
    fn pick(&mut self, view: &SchedView<'_>) -> usize {
        while self.pos < self.script.len() {
            let want = self.script[self.pos];
            self.pos += 1;
            if view.runnable.contains(&want) {
                return want;
            }
        }
        view.runnable[0]
    }
}

/// Wraps a closure as a scheduler — the ergonomic form for one-off
/// adaptive adversaries.
pub struct FnScheduler<F>(pub F);

impl<F: FnMut(&SchedView<'_>) -> usize> Scheduler for FnScheduler<F> {
    fn pick(&mut self, view: &SchedView<'_>) -> usize {
        (self.0)(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{SchedView, TraceItem};

    fn view<'a>(runnable: &'a [usize], trace: &'a [TraceItem], steps: &'a [u64]) -> SchedView<'a> {
        SchedView {
            runnable,
            trace,
            steps_per_proc: steps,
            pending: &[],
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new();
        let steps = [0, 0, 0];
        let trace = [];
        assert_eq!(rr.pick(&view(&[0, 1, 2], &trace, &steps)), 0);
        assert_eq!(rr.pick(&view(&[0, 1, 2], &trace, &steps)), 1);
        assert_eq!(rr.pick(&view(&[0, 1, 2], &trace, &steps)), 2);
        assert_eq!(rr.pick(&view(&[0, 1, 2], &trace, &steps)), 0);
    }

    #[test]
    fn round_robin_skips_unrunnable() {
        let mut rr = RoundRobin::new();
        let steps = [0, 0, 0];
        let trace = [];
        assert_eq!(rr.pick(&view(&[0, 2], &trace, &steps)), 0);
        assert_eq!(rr.pick(&view(&[0, 2], &trace, &steps)), 2);
        assert_eq!(rr.pick(&view(&[0, 2], &trace, &steps)), 0);
    }

    #[test]
    fn scripted_follows_script_then_falls_back() {
        let mut s = Scripted::new(vec![1, 1, 0]);
        let steps = [0, 0];
        let trace = [];
        assert_eq!(s.pick(&view(&[0, 1], &trace, &steps)), 1);
        assert_eq!(s.pick(&view(&[0, 1], &trace, &steps)), 1);
        assert_eq!(s.pick(&view(&[0, 1], &trace, &steps)), 0);
        assert_eq!(
            s.pick(&view(&[0, 1], &trace, &steps)),
            0,
            "fallback: lowest id"
        );
    }

    #[test]
    fn scripted_skips_unrunnable_entries() {
        let mut s = Scripted::new(vec![1, 0]);
        let steps = [0, 0];
        let trace = [];
        assert_eq!(s.pick(&view(&[0], &trace, &steps)), 0, "skip dead p1");
    }

    #[test]
    fn seeded_random_is_reproducible() {
        let steps = [0, 0, 0];
        let trace = [];
        let picks = |seed| {
            let mut s = SeededRandom::new(seed);
            (0..10)
                .map(|_| s.pick(&view(&[0, 1, 2], &trace, &steps)))
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(42), picks(42));
    }

    #[test]
    fn fn_scheduler_delegates() {
        let mut s = FnScheduler(|v: &SchedView<'_>| *v.runnable.last().unwrap());
        let steps = [0, 0];
        let trace = [];
        assert_eq!(s.pick(&view(&[0, 1], &trace, &steps)), 1);
    }
}
