//! Bounded exhaustive exploration of scheduling choices.
//!
//! Systematically enumerates schedules of a deterministic simulated
//! system: run once, then for every decision point branch into each
//! unchosen runnable process, replaying the decision prefix via a
//! [`crate::Scripted`] scheduler. Because runs are deterministic, a
//! decision prefix uniquely determines a run, so each schedule is
//! visited exactly once.
//!
//! The transcripts of all explored runs, merged into a
//! `sl_check::HistoryTree`, form exactly the prefix-closed transcript
//! set over which strong linearizability quantifies (bounded by the
//! step budget and the run budget).

use crate::world::RunOutcome;

/// Statistics of an exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreOutcome {
    /// Number of complete runs (schedules) executed.
    pub runs: usize,
    /// `true` if the schedule space was exhausted within the run budget;
    /// `false` if exploration stopped at `max_runs` with schedules left.
    pub exhausted: bool,
}

/// Explores the schedule space of a deterministic simulated system.
///
/// `run_with_script` must build a **fresh** world (same programs, same
/// initial state) and run it under a [`crate::Scripted`] scheduler
/// seeded with the given decision prefix; it returns the run's
/// [`RunOutcome`]. `visit` is called once per executed run.
///
/// Exploration is depth-first and stops after `max_runs` runs; the
/// returned [`ExploreOutcome`] says whether the space was exhausted.
pub fn explore<F, V>(mut run_with_script: F, max_runs: usize, mut visit: V) -> ExploreOutcome
where
    F: FnMut(&[usize]) -> RunOutcome,
    V: FnMut(&[usize], &RunOutcome),
{
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    let mut runs = 0;
    while let Some(script) = stack.pop() {
        if runs >= max_runs {
            return ExploreOutcome {
                runs,
                exhausted: false,
            };
        }
        let outcome = run_with_script(&script);
        runs += 1;
        // Branch on every decision beyond the replayed prefix: the next
        // scripts share the actually-chosen decisions up to that point
        // and substitute one alternative.
        for (i, d) in outcome.decisions.iter().enumerate().skip(script.len()) {
            for &alt in d.runnable.iter().rev() {
                if alt == d.chosen {
                    continue;
                }
                let mut next: Vec<usize> =
                    outcome.decisions[..i].iter().map(|d| d.chosen).collect();
                next.push(alt);
                stack.push(next);
            }
        }
        visit(&script, &outcome);
    }
    ExploreOutcome {
        runs,
        exhausted: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scripted, SimWorld};
    use sl_mem::{Mem, Register};

    /// Two processes, one register write each: the schedule space has
    /// exactly 2 decision points with 2, then 1 choices ⇒ 2 schedules.
    fn run_two_writers(script: &[usize]) -> RunOutcome {
        let world = SimWorld::new(2);
        let mem = world.mem();
        let reg = mem.alloc("X", 0u64);
        let r0 = reg.clone();
        let r1 = reg;
        let mut sched = Scripted::new(script.to_vec());
        world.run(
            vec![
                Box::new(move |_| r0.write(1)),
                Box::new(move |_| r1.write(2)),
            ],
            &mut sched,
            100,
        )
    }

    #[test]
    fn explores_all_interleavings_of_two_single_step_programs() {
        let mut finals = Vec::new();
        let outcome = explore(run_two_writers, 100, |_script, run| {
            let last = run.steps().last().unwrap().value.clone();
            finals.push(last);
        });
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 2);
        finals.sort();
        assert_eq!(finals, vec!["1".to_string(), "2".to_string()]);
    }

    #[test]
    fn respects_run_budget() {
        let outcome = explore(run_two_writers, 1, |_, _| {});
        assert_eq!(outcome.runs, 1);
        assert!(!outcome.exhausted);
    }

    /// Three single-step processes ⇒ 3! = 6 schedules.
    #[test]
    fn counts_schedules_of_three_writers() {
        let run = |script: &[usize]| {
            let world = SimWorld::new(3);
            let mem = world.mem();
            let reg = mem.alloc("X", 0u64);
            let handles: Vec<_> = (0..3).map(|_| reg.clone()).collect();
            let mut sched = Scripted::new(script.to_vec());
            let programs: Vec<crate::Program> = handles
                .into_iter()
                .enumerate()
                .map(|(i, r)| Box::new(move |_| r.write(i as u64)) as crate::Program)
                .collect();
            world.run(programs, &mut sched, 100)
        };
        let outcome = explore(run, 1000, |_, _| {});
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 6);
    }
}
