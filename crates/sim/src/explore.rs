//! Bounded exhaustive exploration of scheduling choices.
//!
//! Two generations of explorer live here:
//!
//! * [`explore`] — the original script-replay enumerator, kept for
//!   compatibility. It re-derives branch points from
//!   `RunOutcome::decisions` after each run and prunes nothing.
//! * [`Explorer`] — the stateless depth-first explorer built for the
//!   step VM. The caller's runner executes a fresh world per schedule
//!   under a [`ScheduleDriver`] (an adversarial [`Scheduler`] handed to
//!   `SimWorld::run`); the driver replays the frame's decision prefix,
//!   extends it depth-first, records sibling branches, and — the new
//!   part — maintains **sleep sets** over the VM's declared
//!   [`PendingAccess`]es so that schedules differing only in the order
//!   of commuting steps (accesses by different processes to different
//!   registers) are explored once, not twice. Frames are distributed
//!   over a work-stealing pool of worker threads; each worker replays
//!   schedules independently (runs are deterministic, so a decision
//!   prefix is a complete state description) and streams transcripts
//!   straight into a shared sink such as `sl_check::TreeBuilder`.
//!
//! # Why sleep-set pruning is sound here
//!
//! Strong linearizability quantifies over the *tree* of transcripts, so
//! pruning schedules changes the checked object. Two guarantees keep
//! the verdict intact:
//!
//! 1. Only steps with [`PendingAccess::independent`] are commuted:
//!    different processes, different registers, neither a `Local`
//!    (pause) step. Swapping two such steps changes neither the memory
//!    state, nor either step's record, nor any process's continuation —
//!    and because invocation/response events ride on `Local` steps,
//!    which are never commuted, the *history* along both orders is
//!    identical event-for-event.
//! 2. A pruned schedule therefore differs from some explored schedule
//!    only by reordering adjacent independent internal steps. A strong
//!    linearization function for the explored tree extends to the
//!    pruned branches by assigning each reordered prefix the
//!    linearization of its explored permutation image: the history at
//!    corresponding nodes is equal, and prefix preservation transfers
//!    because commitments forced at response events are untouched.
//!
//! The pruning is still **conservative** (same-register reads are
//! treated as conflicting, pauses conflict with everything), and
//! [`Explorer::prune`] can be turned off to cross-check — the fuzz and
//! model-check suites do exactly that on small configurations.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::sched::{Scheduler, STOP_RUN};
use crate::world::{RunOutcome, SchedView};

/// Statistics of an exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreOutcome {
    /// Number of complete runs (schedules) executed.
    pub runs: usize,
    /// `true` if the schedule space was exhausted within the run budget;
    /// `false` if exploration stopped at `max_runs` with schedules left.
    pub exhausted: bool,
    /// Number of branch candidates skipped by sleep-set pruning (0 when
    /// pruning is off or the legacy [`explore`] entry point is used).
    pub pruned: u64,
    /// Number of replays abandoned mid-run because every enabled
    /// process was sleeping — continuations that sleep-set theory
    /// proves are covered by some explored schedule.
    pub cut_runs: usize,
}

/// Explores the schedule space of a deterministic simulated system
/// (legacy script-replay interface).
///
/// `run_with_script` must build a **fresh** world (same programs, same
/// initial state) and run it under a [`crate::Scripted`] scheduler
/// seeded with the given decision prefix; it returns the run's
/// [`RunOutcome`]. `visit` is called once per executed run.
///
/// Exploration is depth-first and stops after `max_runs` runs; the
/// returned [`ExploreOutcome`] says whether the space was exhausted.
/// No pruning is performed; prefer [`Explorer`] for new code.
pub fn explore<F, V>(mut run_with_script: F, max_runs: usize, mut visit: V) -> ExploreOutcome
where
    F: FnMut(&[usize]) -> RunOutcome,
    V: FnMut(&[usize], &RunOutcome),
{
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    let mut runs = 0;
    while let Some(script) = stack.pop() {
        if runs >= max_runs {
            return ExploreOutcome {
                runs,
                exhausted: false,
                pruned: 0,
                cut_runs: 0,
            };
        }
        let outcome = run_with_script(&script);
        runs += 1;
        // Branch on every decision beyond the replayed prefix: the next
        // scripts share the actually-chosen decisions up to that point
        // and substitute one alternative.
        for (i, d) in outcome.decisions.iter().enumerate().skip(script.len()) {
            for &alt in d.runnable.iter().rev() {
                if alt == d.chosen {
                    continue;
                }
                let mut next: Vec<usize> =
                    outcome.decisions[..i].iter().map(|d| d.chosen).collect();
                next.push(alt);
                stack.push(next);
            }
        }
        visit(&script, &outcome);
    }
    ExploreOutcome {
        runs,
        exhausted: true,
        pruned: 0,
        cut_runs: 0,
    }
}

/// One unexplored node of the schedule tree: the decision prefix that
/// reaches it and the sleep set holding there.
#[derive(Clone, Debug)]
struct Frame {
    script: Vec<usize>,
    sleep: u64,
}

/// The adversarial scheduler driving one replay of the depth-first
/// explorer: replays the frame's decision prefix, then extends the
/// schedule (lowest eligible process first), recording every eligible
/// sibling as a new frame with its sleep set.
///
/// Handed to the caller's runner, which passes it to `SimWorld::run` as
/// the scheduler of a fresh world.
pub struct ScheduleDriver {
    prefix: Vec<usize>,
    /// Sleep set holding at the first decision past the prefix.
    sleep_after_prefix: u64,
    /// Decisions taken so far in this run.
    chosen: Vec<usize>,
    /// Current sleep set (evolves after the prefix).
    z: u64,
    branches: Vec<Frame>,
    prune: bool,
    pruned: u64,
    cut: bool,
}

impl ScheduleDriver {
    fn new(frame: Frame, prune: bool) -> ScheduleDriver {
        ScheduleDriver {
            sleep_after_prefix: frame.sleep,
            z: frame.sleep,
            chosen: Vec::with_capacity(frame.script.len() + 16),
            prefix: frame.script,
            branches: Vec::new(),
            prune,
            pruned: 0,
            cut: false,
        }
    }

    /// The decision script of the run so far (the full schedule once
    /// the run finishes).
    pub fn script(&self) -> &[usize] {
        &self.chosen
    }

    /// How many decisions were replayed from the frame prefix.
    pub fn replayed(&self) -> usize {
        self.prefix.len()
    }

    /// Whether this replay was abandoned because every enabled process
    /// was sleeping (the run's continuations are covered elsewhere).
    /// Cut runs still produce genuine transcript *prefixes*; ingesting
    /// them is sound but optional.
    pub fn was_cut(&self) -> bool {
        self.cut
    }

    /// Filters `set`, keeping only processes whose pending access is
    /// independent of `of`'s pending access (both looked up in `view`).
    fn filter_independent(&self, set: u64, of: usize, view: &SchedView<'_>) -> u64 {
        if set == 0 {
            return 0;
        }
        let of_pending = view.pending_of(of);
        let mut kept = 0u64;
        for (i, &p) in view.runnable.iter().enumerate() {
            if set & (1 << p) != 0 {
                let indep = match (of_pending, view.pending.get(i)) {
                    (Some(a), Some(b)) => a.independent(b),
                    // Unknown pending (legacy engine): assume conflict.
                    _ => false,
                };
                if indep {
                    kept |= 1 << p;
                }
            }
        }
        kept
    }
}

impl Scheduler for ScheduleDriver {
    fn pick(&mut self, view: &SchedView<'_>) -> usize {
        let i = self.chosen.len();
        if i < self.prefix.len() {
            // Replay: runs are deterministic, so the prefix choice must
            // still be runnable.
            let want = self.prefix[i];
            assert!(
                view.runnable.contains(&want),
                "explorer replay diverged: {want} not runnable at decision {i} \
                 (runnable: {:?})",
                view.runnable
            );
            self.chosen.push(want);
            if i + 1 == self.prefix.len() {
                self.z = self.sleep_after_prefix;
            }
            return want;
        }
        // Hard limit, not a debug assertion: `1 << p` would silently
        // alias sleep bits for p >= 64 in release builds, making the
        // pruning unsound — a verification tool must fail loudly.
        assert!(
            view.runnable.iter().all(|&p| p < 64),
            "sleep sets support at most 64 processes"
        );
        // Candidates: runnable processes not in the sleep set.
        let mut first: Option<usize> = None;
        let mut candidates = 0u64;
        for &p in view.runnable {
            if !self.prune || self.z & (1 << p) == 0 {
                candidates |= 1 << p;
                if first.is_none() {
                    first = Some(p);
                }
            }
        }
        let Some(chosen) = first else {
            // Every enabled process is sleeping: any continuation from
            // here only reorders commuting steps of schedules explored
            // elsewhere. Abandon the run.
            self.cut = true;
            self.pruned += view.runnable.len() as u64;
            return STOP_RUN;
        };
        self.pruned += (view.runnable.len() as u64) - (candidates.count_ones() as u64);
        // Record sibling branches. Sibling `alt` sleeps on the chosen
        // process and on every candidate listed before it: exactly one
        // representative interleaving of each commuting pair survives.
        let mut acc = self.z | (1 << chosen);
        for &alt in view.runnable {
            if alt == chosen || candidates & (1 << alt) == 0 {
                continue;
            }
            let sleep = if self.prune {
                self.filter_independent(acc, alt, view)
            } else {
                0
            };
            let mut script = self.chosen.clone();
            script.push(alt);
            self.branches.push(Frame { script, sleep });
            acc |= 1 << alt;
        }
        // Descend along `chosen`: sleeping processes stay asleep only
        // while the executed steps commute with their pending access.
        if self.prune {
            self.z = self.filter_independent(self.z, chosen, view);
        }
        self.chosen.push(chosen);
        chosen
    }
}

/// The stateless depth-first schedule explorer with sleep-set pruning
/// and a work-stealing parallel frontier. See the module docs.
#[derive(Clone, Debug)]
pub struct Explorer {
    /// Stop after this many runs (the space may not be exhausted).
    pub max_runs: usize,
    /// Skip schedules that differ from an explored one only by the
    /// order of commuting register accesses.
    pub prune: bool,
    /// Worker threads replaying schedules. `1` explores sequentially on
    /// the calling thread.
    pub workers: usize,
    /// Initial decision prefix: exploration covers exactly the
    /// schedules extending this stem (empty = the full space).
    pub stem: Vec<usize>,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_runs: 1_000_000,
            prune: true,
            workers: 1,
            stem: Vec::new(),
        }
    }
}

impl Explorer {
    /// An explorer with the given run budget and defaults otherwise.
    pub fn with_max_runs(max_runs: usize) -> Explorer {
        Explorer {
            max_runs,
            ..Explorer::default()
        }
    }

    /// Explores the schedule space of the deterministic system embodied
    /// by `runner`.
    ///
    /// `runner` must build a fresh world (same programs, same initial
    /// state each time) and run it with the given [`ScheduleDriver`] as
    /// its scheduler — typically also streaming the run's transcript
    /// into a shared sink before returning the outcome. It is invoked
    /// once per explored schedule, possibly from several threads.
    pub fn explore<F>(&self, runner: F) -> ExploreOutcome
    where
        F: Fn(&mut ScheduleDriver) -> RunOutcome + Sync,
    {
        let root = Frame {
            script: self.stem.clone(),
            sleep: 0,
        };
        if self.workers <= 1 {
            return self.explore_sequential(root, &runner);
        }
        self.explore_parallel(root, &runner)
    }

    fn explore_sequential<F>(&self, root: Frame, runner: &F) -> ExploreOutcome
    where
        F: Fn(&mut ScheduleDriver) -> RunOutcome + Sync,
    {
        let mut stack = vec![root];
        let mut runs = 0usize;
        let mut cut_runs = 0usize;
        let mut pruned = 0u64;
        while let Some(frame) = stack.pop() {
            if runs + cut_runs >= self.max_runs {
                return ExploreOutcome {
                    runs,
                    exhausted: false,
                    pruned,
                    cut_runs,
                };
            }
            let mut driver = ScheduleDriver::new(frame, self.prune);
            let _ = runner(&mut driver);
            if driver.cut {
                cut_runs += 1;
            } else {
                runs += 1;
            }
            pruned += driver.pruned;
            stack.append(&mut driver.branches);
        }
        ExploreOutcome {
            runs,
            exhausted: true,
            pruned,
            cut_runs,
        }
    }

    fn explore_parallel<F>(&self, root: Frame, runner: &F) -> ExploreOutcome
    where
        F: Fn(&mut ScheduleDriver) -> RunOutcome + Sync,
    {
        let workers = self.workers;
        let deques: Vec<Mutex<VecDeque<Frame>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        deques[0].lock().unwrap().push_back(root);
        let runs = AtomicUsize::new(0);
        let cut_runs = AtomicUsize::new(0);
        let pruned = AtomicU64::new(0);
        let active = AtomicUsize::new(0);
        let capped = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for me in 0..workers {
                let deques = &deques;
                let runs = &runs;
                let cut_runs = &cut_runs;
                let pruned = &pruned;
                let active = &active;
                let capped = &capped;
                let max_runs = self.max_runs;
                let prune = self.prune;
                scope.spawn(move || {
                    /// Decrements `active` when dropped, so the count
                    /// stays correct on every exit path — including a
                    /// panic inside the runner (a simulated program or
                    /// a runner assertion failing), which would
                    /// otherwise leave peers spinning on `active != 0`
                    /// forever.
                    struct ActiveGuard<'a>(&'a AtomicUsize);
                    impl Drop for ActiveGuard<'_> {
                        fn drop(&mut self) {
                            self.0.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    loop {
                        // `active` is raised *before* looking for work:
                        // a frame is never out of a deque while its
                        // holder is invisible to the termination check.
                        active.fetch_add(1, Ordering::SeqCst);
                        // Own deque first (LIFO: depth-first locally),
                        // then steal oldest frames from siblings
                        // (FIFO: breadth-first stealing splits the tree
                        // near the root, the classic work-stealing
                        // shape).
                        let frame = {
                            let own = deques[me].lock().unwrap().pop_back();
                            own.or_else(|| {
                                (0..workers)
                                    .filter(|v| *v != me)
                                    .find_map(|v| deques[v].lock().unwrap().pop_front())
                            })
                        };
                        let Some(frame) = frame else {
                            active.fetch_sub(1, Ordering::SeqCst);
                            if active.load(Ordering::SeqCst) == 0 {
                                // No frames anywhere and nobody holding
                                // one who could produce more: done.
                                let empty =
                                    (0..workers).all(|v| deques[v].lock().unwrap().is_empty());
                                if empty && active.load(Ordering::SeqCst) == 0 {
                                    return;
                                }
                            }
                            std::thread::yield_now();
                            continue;
                        };
                        // The guard owns the decrement from here on —
                        // every exit path, including a runner panic.
                        let _guard = ActiveGuard(active);
                        if runs.load(Ordering::SeqCst) + cut_runs.load(Ordering::SeqCst) >= max_runs
                        {
                            capped.store(true, Ordering::SeqCst);
                            return;
                        }
                        let mut driver = ScheduleDriver::new(frame, prune);
                        let _ = runner(&mut driver);
                        if driver.cut {
                            cut_runs.fetch_add(1, Ordering::SeqCst);
                        } else {
                            runs.fetch_add(1, Ordering::SeqCst);
                        }
                        pruned.fetch_add(driver.pruned, Ordering::Relaxed);
                        if !driver.branches.is_empty() {
                            let mut own = deques[me].lock().unwrap();
                            own.extend(driver.branches.drain(..));
                        }
                    }
                });
            }
        });
        let capped = capped.load(Ordering::SeqCst);
        ExploreOutcome {
            runs: runs.load(Ordering::SeqCst),
            exhausted: !capped,
            pruned: pruned.load(Ordering::SeqCst),
            cut_runs: cut_runs.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scripted, SimWorld};
    use sl_mem::{Mem, Register};

    /// Two processes, one register write each: the schedule space has
    /// exactly 2 decision points with 2, then 1 choices ⇒ 2 schedules.
    fn run_two_writers(script: &[usize]) -> RunOutcome {
        let world = SimWorld::new(2);
        let mem = world.mem();
        let reg = mem.alloc("X", 0u64);
        let r0 = reg.clone();
        let r1 = reg;
        let mut sched = Scripted::new(script.to_vec());
        world.run(
            vec![
                Box::new(move |_| r0.write(1)),
                Box::new(move |_| r1.write(2)),
            ],
            &mut sched,
            100,
        )
    }

    #[test]
    fn explores_all_interleavings_of_two_single_step_programs() {
        let mut finals = Vec::new();
        let outcome = explore(run_two_writers, 100, |_script, run| {
            let last = run.steps().last().unwrap().value.clone();
            finals.push(last);
        });
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 2);
        finals.sort();
        assert_eq!(finals, vec!["1".to_string(), "2".to_string()]);
    }

    #[test]
    fn respects_run_budget() {
        let outcome = explore(run_two_writers, 1, |_, _| {});
        assert_eq!(outcome.runs, 1);
        assert!(!outcome.exhausted);
    }

    /// Three single-step processes ⇒ 3! = 6 schedules.
    #[test]
    fn counts_schedules_of_three_writers() {
        let run = |script: &[usize]| {
            let world = SimWorld::new(3);
            let mem = world.mem();
            let reg = mem.alloc("X", 0u64);
            let handles: Vec<_> = (0..3).map(|_| reg.clone()).collect();
            let mut sched = Scripted::new(script.to_vec());
            let programs: Vec<crate::Program> = handles
                .into_iter()
                .enumerate()
                .map(|(i, r)| Box::new(move |_| r.write(i as u64)) as crate::Program)
                .collect();
            world.run(programs, &mut sched, 100)
        };
        let outcome = explore(run, 1000, |_, _| {});
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 6);
    }

    /// Driver-based runner over `n` writers to `distinct` registers.
    fn writers_runner(
        n: usize,
        distinct: bool,
    ) -> impl Fn(&mut ScheduleDriver) -> RunOutcome + Sync {
        move |driver: &mut ScheduleDriver| {
            let world = SimWorld::new(n);
            let mem = world.mem();
            let shared = mem.alloc("X", 0u64);
            let programs: Vec<crate::Program> = (0..n)
                .map(|i| {
                    let r = if distinct {
                        mem.alloc(&format!("R{i}"), 0u64)
                    } else {
                        shared.clone()
                    };
                    Box::new(move |_| r.write(i as u64)) as crate::Program
                })
                .collect();
            world.run(programs, driver, 100)
        }
    }

    #[test]
    fn driver_explorer_matches_legacy_count_without_pruning() {
        let explorer = Explorer {
            prune: false,
            ..Explorer::default()
        };
        let outcome = explorer.explore(writers_runner(3, false));
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 6);
        assert_eq!(outcome.pruned, 0);
    }

    #[test]
    fn pruning_collapses_commuting_writers_to_one_schedule() {
        // Three writers to three *distinct* registers: all 6
        // interleavings are equivalent, so sleep sets leave one.
        let explorer = Explorer::default();
        let outcome = explorer.explore(writers_runner(3, true));
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 1, "all interleavings commute");
        assert!(outcome.pruned > 0);
    }

    #[test]
    fn pruning_keeps_all_conflicting_interleavings() {
        // Same register: nothing commutes, the full 6 remain.
        let explorer = Explorer::default();
        let outcome = explorer.explore(writers_runner(3, false));
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 6);
        assert_eq!(outcome.pruned, 0);
    }

    #[test]
    fn parallel_exploration_visits_the_same_schedules() {
        use std::collections::BTreeSet;
        let runner = writers_runner(3, false);
        let seq_scripts = Mutex::new(BTreeSet::new());
        let explorer = Explorer {
            prune: false,
            ..Explorer::default()
        };
        let out = explorer.explore(|d| {
            let o = runner(d);
            seq_scripts.lock().unwrap().insert(o.script());
            o
        });
        assert!(out.exhausted);
        let par_scripts = Mutex::new(BTreeSet::new());
        let explorer = Explorer {
            prune: false,
            workers: 3,
            ..Explorer::default()
        };
        let out = explorer.explore(|d| {
            let o = runner(d);
            par_scripts.lock().unwrap().insert(o.script());
            o
        });
        assert!(out.exhausted);
        assert_eq!(out.runs, 6);
        assert_eq!(
            seq_scripts.into_inner().unwrap(),
            par_scripts.into_inner().unwrap()
        );
    }

    #[test]
    fn stem_restricts_exploration_to_extensions() {
        // Stem forces p2 first; the rest is the 2-writer space.
        let explorer = Explorer {
            prune: false,
            stem: vec![2],
            ..Explorer::default()
        };
        let scripts = Mutex::new(Vec::new());
        let out = explorer.explore(|d| {
            let o = writers_runner(3, false)(d);
            scripts.lock().unwrap().push(o.script());
            o
        });
        assert!(out.exhausted);
        assert_eq!(out.runs, 2);
        for s in scripts.into_inner().unwrap() {
            assert_eq!(s[0], 2, "every schedule extends the stem");
        }
    }

    #[test]
    fn run_budget_reports_not_exhausted() {
        let explorer = Explorer {
            prune: false,
            max_runs: 3,
            ..Explorer::default()
        };
        let outcome = explorer.explore(writers_runner(3, false));
        assert_eq!(outcome.runs, 3);
        assert!(!outcome.exhausted);
    }
}
