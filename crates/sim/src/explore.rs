//! Bounded exhaustive exploration of scheduling choices.
//!
//! Two generations of explorer live here:
//!
//! * [`explore`] — the original script-replay enumerator, kept for
//!   compatibility. It re-derives branch points from
//!   `RunOutcome::decisions` after each run and prunes nothing.
//! * [`Explorer`] — the stateless depth-first explorer built for the
//!   step VM. The caller's runner executes a world per schedule under a
//!   [`ScheduleDriver`] (an adversarial [`Scheduler`] handed to
//!   `SimWorld::run`); the driver replays a decision prefix, extends it
//!   depth-first, and prunes per the configured [`PruneMode`]:
//!
//!   - [`PruneMode::Unpruned`] branches on every enabled process at
//!     every decision — the full schedule tree.
//!   - [`PruneMode::SleepSet`] additionally maintains **sleep sets**
//!     over the VM's declared [`PendingAccess`]es, so schedules
//!     differing only in the order of commuting steps (accesses by
//!     different processes to different registers) are explored once.
//!     Branches are still recorded for every non-sleeping sibling, and
//!     frames are distributed over a work-stealing pool of workers.
//!   - [`PruneMode::SourceDpor`] runs **source-set dynamic
//!     partial-order reduction** (the wakeup-free variant of
//!     Abdulla–Aronis–Jonsson–Sagonas SDPOR) on top of the same sleep
//!     sets: instead of eagerly branching on every sibling, the
//!     explorer detects *races* in each executed schedule with vector
//!     clocks over the declared accesses, and backtracks only where a
//!     reversal is actually demanded. Schedules that sleep sets would
//!     replay just to cut are mostly never scheduled at all.
//!   - [`PruneMode::ValueDpor`] (the default) is source-set DPOR with a
//!     **value-aware** independence relation for race detection: two
//!     same-register steps additionally commute when they are a
//!     read/read pair, or a write/write pair storing the *same*
//!     (interned) value — provided no high-level event marker rode on
//!     either step's activation. The execution metadata (value id +
//!     event flag) is observed post-hoc from the recorded trace, so
//!     only *race detection* is refined; sleep-set filtering keeps the
//!     conservative syntactic relation (see the soundness section).
//!   - [`PruneMode::StaticDpor`] is value-aware DPOR plus a **static
//!     placement relaxation** licensed by an `sl-analyze` footprint
//!     certificate ([`crate::StaticConflicts`]): a `Local` (pause)
//!     step carrying at most an *invocation* marker commutes with a
//!     marker-free data step on a certificate-licensed register,
//!     cutting the invocation-placement branching that dominates
//!     mixed-role workloads. Every dynamically detected data race is
//!     validated against the certificate's may-conflict matrix, and
//!     an unpredicted race aborts the exploration — the static
//!     analysis is load-bearing but fail-closed.
//!   - [`PruneMode::OptimalDpor`] upgrades the wakeup-free source sets
//!     to **wakeup sequences**: a detected race inserts the entire
//!     reversing continuation (not just its first process) into the
//!     racing node's wakeup queue, and backtracking replays that
//!     sequence wholesale before extending freely — so exploration
//!     never *initiates* a run that sleep sets would abandon. Race
//!     detection additionally uses the **observer** refinement: two
//!     same-register writes commute whenever neither written value is
//!     observed before being overwritten. A static certificate is
//!     consulted when installed (enabling the placement relaxation)
//!     but, unlike [`PruneMode::StaticDpor`], is not required.
//!
//! # Parallel source-set DPOR
//!
//! Source DPOR's backtrack sets mutate while descendants run, which
//! pinned exploration to a sequential spine until this revision. The
//! explorer now parallelises it with **per-subtree ownership**: when a
//! decision node holds several unexplored backtrack candidates, the
//! owning worker keeps the first as its own continuation and publishes
//! the rest as frozen [`SubtreeTask`]s — decision prefix, the declared
//! access of every prefix step, the prefix's vector clocks, and the
//! sleep set at the subtree root — onto a work-stealing deque. A task
//! explores its subtree with the ordinary sequential algorithm (its
//! backtrack sets are worker-local); race reversals that point *above*
//! the subtree root cannot be applied locally, so they are recorded as
//! **escapes** (decision depth, demanded process, weak initials) in
//! detection order and merged by the owner when it joins the task —
//! exactly where the sequential algorithm would have applied them,
//! because the owner joins delegated siblings right after retiring its
//! own child and before scanning the node for new candidates. The
//! sleep set handed to each delegated sibling is accumulated in the
//! same publish order the sequential candidate scan would have used.
//!
//! The result is *bit-identical* to the sequential explorer at any
//! worker count (schedule set, replay and cut counts, pruned totals),
//! provided the exploration exhausts within its run budget: when the
//! budget caps exploration mid-space, which schedules fit under the cap
//! depends on worker timing. The differential suites assert the
//! equality at 1/2/4/8 workers.
//!
//! Transcript consumers that need the depth-first ingestion order
//! (`sl_check::DagBuilder`) implement [`ReplayCtx`]: the explorer
//! brackets every task with `subtree_begin`/`subtree_end`, so a context
//! can keep one DFS-ordered shard per subtree and hash-cons-merge the
//! shards afterwards.
//!
//! # Why the pruning is sound here
//!
//! Strong linearizability quantifies over the *tree* of transcripts, so
//! pruning schedules changes the checked object. Two guarantees keep
//! the verdict intact, for sleep sets and source sets alike (both prune
//! exactly reorderings of *independent* steps):
//!
//! 1. Only steps with [`PendingAccess::independent`] are commuted:
//!    different processes, different registers, neither a `Local`
//!    (pause) step. Swapping two such steps changes neither the memory
//!    state, nor either step's record, nor any process's continuation —
//!    and because invocation/response events ride on `Local` steps,
//!    which are never commuted, the *history* along both orders is
//!    identical event-for-event.
//! 2. A pruned schedule therefore differs from some explored schedule
//!    only by reordering adjacent independent internal steps. A strong
//!    linearization function for the explored tree extends to the
//!    pruned branches by assigning each reordered prefix the
//!    linearization of its explored permutation image: the history at
//!    corresponding nodes is equal, and prefix preservation transfers
//!    because commitments forced at response events are untouched.
//!
//! Source-set DPOR additionally relies on the completeness theorem of
//! SDPOR: every Mazurkiewicz trace of the schedule space is reachable
//! from the explored set by the recorded race reversals, so for every
//! pruned schedule some explored schedule is equivalent to it under
//! the (conservative) independence relation above. In
//! [`PruneMode::SourceDpor`] the dependence relation used for race
//! detection is *exactly* `!PendingAccess::independent` —
//! same-register accesses always conflict (even two reads), and
//! `Local` steps conflict with everything — so the argument above
//! covers it verbatim. The parallel partitioning does not touch this
//! argument: it changes *who* runs a subtree and *when* a backtrack
//! demand is written into its node, not which demands are raised or
//! which candidates are explored.
//!
//! # Why the value-aware refinement is sound
//!
//! [`PruneMode::ValueDpor`] refines the independence relation used for
//! **race detection only**: two executed same-register steps of
//! different processes additionally commute when they are (a) both
//! reads, or (b) both writes of the same interned value — and in either
//! case no invocation/response marker rode on either step's activation
//! (observed from the recorded trace; unknown metadata is treated as
//! conflicting). Swapping two adjacent such steps changes nothing
//! observable: memory is identical after both orders (reads don't
//! write; same-value writes leave the same value, and the intermediate
//! state between two same-value writes is that value either way), each
//! step's record — process, register, kind, value — is unchanged, each
//! process's continuation is unchanged (a read returns the same value
//! in both orders), and because neither step carries an event marker,
//! the interleaving of high-level events with all *other* steps is
//! untouched. So guarantee (1) above holds for the refined relation,
//! and guarantee (2) transfers verbatim: a pruned schedule differs
//! from an explored one only by such swaps, and the strong
//! linearization function extends along the permutation image exactly
//! as before.
//!
//! Sleep-set filtering deliberately keeps the conservative syntactic
//! relation (pending accesses are *future* steps — their values and
//! event markers are unknowable at filter time). Mixing a coarser
//! relation into sleep sets is sound: sleeping processes wake *more*
//! often, so sleep sets only ever under-prune relative to the refined
//! relation, and every subtree a sleep set cuts is covered under the
//! syntactic relation, hence a fortiori under the refined one. Race
//! detection and the vector clocks it builds on use the refined
//! relation consistently with each other, which is what SDPOR's
//! completeness theorem needs. The pruned-vs-unpruned and
//! DPOR-vs-value-DPOR verdict-equivalence suites cross-check all of
//! this on small configurations.
//!
//! # Why the static placement relaxation is sound
//!
//! [`PruneMode::StaticDpor`] relaxes the rule "`Local` steps conflict
//! with everything" in exactly one shape: a pause step `l` of process
//! `p` and a data step `d` of process `q ≠ p` commute when (a) no
//! *response* marker rode on `l` (an invocation marker may), (b) no
//! event marker at all rode on `d`, and (c) `d`'s register is licensed
//! by the static certificate. Swapping two such adjacent steps:
//!
//! * changes no memory state and no step record — a pause touches no
//!   register, so `d` reads/writes identically in both orders, and
//!   `p`'s continuation after its pause cannot depend on `d` before
//!   `p`'s *next* declared access (which is a later step, ordered
//!   after both);
//! * changes the *transcript* only by moving `l` (and any invocation
//!   riding on it) across `d`. The event *sequence restricted to
//!   responses* is untouched — `l` carries no response by (a), `d`
//!   carries nothing by (b) — so every linearization commitment forced
//!   at a response event is identical along both orders. A strong
//!   linearization function for the explored tree extends to the
//!   pruned branch by assigning the intermediate node the
//!   linearization of its parent: the only history difference is a
//!   *pending* invocation, which no prefix-preserving linearization is
//!   obliged to linearize before its response.
//!
//! Guard (b) also blocks the converse hazard — moving an invocation
//! across a *response-carrying* data step would change which
//! operations precede it in real-time order. The certificate's license
//! (c) is not needed for the commutation argument itself; it is what
//! makes the static analysis *load-bearing and checkable*: relaxation
//! happens only where the footprint probe actually observed the
//! register, and the dynamic race detector validates every observed
//! data race against the same certificate, aborting on any race the
//! static matrix failed to predict ([`validate_race`]). Unknown
//! execution metadata (untraced runs) satisfies neither (a) nor (b),
//! so the relaxation degrades to [`PruneMode::ValueDpor`] behaviour.
//!
//! # Why the per-op-pair relaxations are sound
//!
//! Version-2 certificates carry an **op-pair may-conflict matrix**
//! (see [`StaticConflicts::pair_probed`] /
//! [`StaticConflicts::pair_licensed`]), keyed by the interned op
//! identity the event log stamps on each invocation marker and the
//! driver threads through [`ExecMeta`]. It licenses two further
//! relaxation shapes:
//!
//! * **R1 — pause/pause.** Two pause steps of different processes,
//!   *neither* carrying a response marker, commute when both
//!   activations are attributed to known ops whose pair the analysis
//!   probed. A pause touches no register, so memory and step records
//!   are unchanged in either order; the transcript changes only by
//!   swapping two adjacent *invocation* events (or nothing at all, for
//!   marker-free pauses). No response moves, so no
//!   response-before-invocation precedence pair — the real-time order
//!   strong linearizability constrains — changes. A strong
//!   linearization function extends to the pruned intermediate node by
//!   assigning it the parent's linearization: the two histories differ
//!   only in the order of two *pending* invocations, which no
//!   prefix-preserving linearization is obliged to linearize yet.
//!   The pair-probed license is, as with (c) above, attribution
//!   discipline rather than part of the commutation argument: unknown
//!   ops ([`sl_check::OpSym::NONE`] — untraced runs, steps outside any
//!   invocation) never match a cell, so the relaxation fails closed.
//!
//! * **R2 — one-marked value pairs.** The value rules (read/read,
//!   same-value write/write, observer writes) classically require both
//!   steps marker-free: moving an event across another *event* would
//!   reorder the history. If however *at most one* of the pair carries
//!   markers, every event of the marked step moves across an
//!   *event-free* step — the recorded event sequence is unchanged, and
//!   the memory argument is the value rule's own (same values, same
//!   records, same continuations). Prefix-preservation holds in both
//!   directions: the intermediate node of the reversed order has
//!   either the same events as the parent (assign the parent's
//!   linearization) or the same events as the final node (assign the
//!   final node's — valid because the event-free step leaves the
//!   history equal). The relaxation is licensed per op pair on the
//!   shared register (`pair_licensed`), which keeps it attributable:
//!   [`validate_race`] maps every dynamic race back to the licensing
//!   cell and aborts if the matrix failed to predict it.
//!
//! # Why the observer refinement is sound
//!
//! [`PruneMode::OptimalDpor`] further refines race detection with an
//! **observer** rule (after Aronis–Jonsson–Lång–Sagonas): two
//! same-register writes of different processes, neither carrying an
//! event marker, additionally commute when each write is *unobserved
//! and overwritten* in the executed word — the next same-register
//! access after it exists and is a plain write (not a read, not an
//! RMW, which returns the old value). Swapping two adjacent such
//! writes `w_j`, `w_k` changes the register's value only *between* the
//! two writes and between `w_k` and its overwriter — intervals in
//! which, by construction, no step reads the register (any
//! same-register read between them would order the pair through
//! happens-before and no race would be reported). Every step record is
//! unchanged (a write's record carries its own value, which does not
//! depend on the register's prior state), every continuation is
//! unchanged (writes return nothing), the final register state is
//! unchanged (the overwriter executes in both orders), and no event
//! marker moves. So guarantee (1) holds and guarantee (2) transfers
//! exactly as for the value-aware rule, which this one strictly
//! subsumes together with it (a same-value pair commutes by the value
//! rule even when the value *is* later read).
//!
//! Observer status is a property of the whole executed word, so it is
//! recomputed after every replay; when a prefix step's status changes
//! (the suffix changed), race detection re-runs from the first changed
//! index — the cached vector clocks are truncated there — so clocks
//! and race tests always agree with the current word's relation, which
//! is what conditional-independence SDPOR requires.
//!
//! # Why wakeup sequences preserve completeness
//!
//! The wakeup-free engine backtracks by inserting a single process
//! into a node's source set; the resulting run may wander into a
//! subtree that sleep sets then abandon (a *cut* replay — sound, but
//! wasted work). [`PruneMode::OptimalDpor`] instead inserts the whole
//! reversing continuation `v` (the race's not-happens-after fragment,
//! a genuine suffix of an already-executed word) as a **wakeup
//! sequence** at the racing node, skipping the insertion when a weak
//! initial of `v` is already in the node's backtrack set (that child
//! covers the reversal — the ordinary source-set argument) or in its
//! sleep set (the reversal's trace was explored in the subtree that
//! put the process to sleep — the ordinary sleep-set argument).
//! Backtracking pops the first pending sequence and replays it in
//! full: every forced step is a step some explored word actually
//! performed, with an up-to-date sleep set threaded through the forced
//! prefix (the driver filters the sleep set across replayed decisions
//! exactly as it does across fresh ones).
//!
//! One side condition makes the cut-freedom claim structural rather
//! than probabilistic: a sequence is only *initiated* if it conflicts
//! with every process sleeping at its node ([`seq_wakes_all`] — the
//! defining property of a wakeup sequence for ⟨node, Sleep⟩). A
//! sleeping process independent of every step of the sequence would
//! sleep through the entire forced part, and the free extension could
//! then block on it; dropping such a sequence loses nothing, because
//! orderings that never wake the sleeper are covered by the subtree
//! that put it to sleep, and orderings where some later step *does*
//! conflict with it are demanded by the race with that step — whose
//! reversing continuation contains the waking step and passes the
//! check. Conversely, an initiated sequence wakes every sleeper by its
//! end (the driver filters with the same access-level relation), the
//! sleep set is empty when the free extension begins, and a sleep set
//! that only ever shrinks cannot block it: **no initiated replay is
//! ever cut**. Completeness is therefore the SDPOR argument verbatim —
//! every reversal demand is either enqueued or provably covered —
//! while the enqueued runs start deep inside the reversed trace
//! instead of gambling on its first step.
//! Delegated [`SubtreeTask`]s carry their sequence in the frozen
//! decision prefix (beyond the ghost-spine accesses) the same way they
//! carry sleep sets; escapes merge at the owner's join point, so the
//! schedule set stays bit-identical at any worker count.
//!
//! All of this is **conservative**, and the pruned-vs-unpruned (and
//! DPOR-vs-sleep-set, and parallel-vs-sequential) verdict-equivalence
//! tests in the model-check and fuzz suites cross-check it on small
//! configurations.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use sl_check::{OpSym, RegSym, ValueId};

use crate::checkpoint::{
    panic_message, write_poison_report, Checkpoint, CheckpointPolicy, CheckpointStore, CkptAccess,
    CkptCounters, CkptNext, CkptNode, CkptTask, CkptWriter, FaultCrash, FaultPlan, FaultPoint,
    PoisonReport, ResumeExpectation, ResumeSession,
};
use crate::sched::{Scheduler, STOP_RUN};
use crate::statics::StaticConflicts;
use crate::world::{AccessKind, PendingAccess, RegId, RunOutcome, SchedView, TraceItem};

/// Statistics of an exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreOutcome {
    /// Number of complete runs (schedules) executed.
    pub runs: usize,
    /// `true` if the schedule space was exhausted within the run budget;
    /// `false` if exploration stopped at `max_runs` with schedules
    /// left, drained to a checkpoint, or quarantined a subtree.
    pub exhausted: bool,
    /// Number of branch candidates skipped by pruning (0 when pruning
    /// is off or the legacy [`explore`] entry point is used).
    pub pruned: u64,
    /// Number of replays abandoned mid-run because every enabled
    /// process was sleeping — continuations that sleep-set theory
    /// proves are covered by some explored schedule.
    pub cut_runs: usize,
    /// Retry attempts performed on panicking subtree tasks (whether or
    /// not the task eventually succeeded).
    pub retried: u64,
    /// Subtree tasks that panicked through every retry and were
    /// quarantined — their schedule subspaces are **unexplored**, so
    /// any verdict over this outcome is partial (see [`Self::partial`]
    /// and the `checkpoint` module's soundness argument).
    pub quarantined: u64,
    /// The exploration drained to a checkpoint on budget expiry
    /// ([`crate::CheckpointPolicy`]); resume with
    /// [`Explorer::explore_resumable`] to continue.
    pub drained: bool,
    /// Partial-verdict marker: the schedule space was not fully covered
    /// because of a drain or a quarantine. A partial outcome must never
    /// be read as a PASS.
    pub partial: bool,
    /// One report per quarantined subtree: the replayable decision
    /// prefix, the attempt count, and the panic message.
    pub poisoned: Vec<PoisonReport>,
}

impl ExploreOutcome {
    /// Total schedules replayed: completed runs plus cut replays — the
    /// quantity that bounds exploration wall-clock.
    pub fn schedules_replayed(&self) -> usize {
        self.runs + self.cut_runs
    }

    /// An outcome with no robustness events (no retries, quarantines,
    /// or drains) — the frame explorers and the legacy entry point.
    fn clean(runs: usize, exhausted: bool, pruned: u64, cut_runs: usize) -> ExploreOutcome {
        ExploreOutcome {
            runs,
            exhausted,
            pruned,
            cut_runs,
            retried: 0,
            quarantined: 0,
            drained: false,
            partial: false,
            poisoned: Vec::new(),
        }
    }
}

/// The largest worker count `SL_EXPLORE_THREADS` accepts literally.
/// Anything above it is a typo or a unit confusion (milliseconds,
/// bytes), not a thread pool this explorer could use — sleep masks cap
/// the *process* universe at 64 and oversubscribing cores only slows
/// replays down — so it is rejected, not clamped.
const MAX_ENV_WORKERS: usize = 1024;

/// The worker count requested via the `SL_EXPLORE_THREADS` environment
/// variable: unset means `1` (sequential), `0` means "one per available
/// CPU", any other number up to `1024` is taken literally. Malformed or
/// absurd values panic with a named diagnostic — a typo in a CI matrix
/// must not silently degrade a parallel lane to sequential.
pub fn env_workers() -> usize {
    let s = match std::env::var("SL_EXPLORE_THREADS") {
        Err(std::env::VarError::NotPresent) => return 1,
        Err(std::env::VarError::NotUnicode(raw)) => panic!(
            "SL_EXPLORE_THREADS: not valid unicode: {raw:?} \
             (fail-closed: refusing to guess a worker count)"
        ),
        Ok(s) => s,
    };
    env_workers_of(&s)
}

/// The parse half of [`env_workers`], split out so the rejection rules
/// are unit-testable without mutating the process environment.
fn env_workers_of(s: &str) -> usize {
    match s.trim().parse::<usize>() {
        Ok(0) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Ok(n) if n <= MAX_ENV_WORKERS => n,
        Ok(n) => panic!(
            "SL_EXPLORE_THREADS: {n} workers is absurd (max {MAX_ENV_WORKERS}; \
             0 = one per available CPU)"
        ),
        Err(_) => panic!(
            "SL_EXPLORE_THREADS: not a worker count: {s:?} \
             (expected an unsigned integer; 0 = one per available CPU)"
        ),
    }
}

/// Explores the schedule space of a deterministic simulated system
/// (legacy script-replay interface).
///
/// `run_with_script` must build a **fresh** world (same programs, same
/// initial state) and run it under a [`crate::Scripted`] scheduler
/// seeded with the given decision prefix; it returns the run's
/// [`RunOutcome`]. `visit` is called once per executed run.
///
/// Exploration is depth-first and stops after `max_runs` runs; the
/// returned [`ExploreOutcome`] says whether the space was exhausted.
/// No pruning is performed; prefer [`Explorer`] for new code.
pub fn explore<F, V>(mut run_with_script: F, max_runs: usize, mut visit: V) -> ExploreOutcome
where
    F: FnMut(&[usize]) -> RunOutcome,
    V: FnMut(&[usize], &RunOutcome),
{
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    let mut runs = 0;
    while let Some(script) = stack.pop() {
        if runs >= max_runs {
            return ExploreOutcome::clean(runs, false, 0, 0);
        }
        let outcome = run_with_script(&script);
        runs += 1;
        // Branch on every decision beyond the replayed prefix: the next
        // scripts share the actually-chosen decisions up to that point
        // and substitute one alternative.
        for (i, d) in outcome.decisions.iter().enumerate().skip(script.len()) {
            for &alt in d.runnable.iter().rev() {
                if alt == d.chosen {
                    continue;
                }
                let mut next: Vec<usize> =
                    outcome.decisions[..i].iter().map(|d| d.chosen).collect();
                next.push(alt);
                stack.push(next);
            }
        }
        visit(&script, &outcome);
    }
    ExploreOutcome::clean(runs, true, 0, 0)
}

/// How the [`Explorer`] prunes the schedule tree. See the module docs
/// for the four levels and the soundness arguments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PruneMode {
    /// Branch on every enabled process at every decision.
    Unpruned,
    /// Sleep sets over declared pending accesses; parallel frontier.
    SleepSet,
    /// Source-set DPOR (wakeup-free) + sleep sets over the syntactic
    /// independence relation: backtrack only at detected races.
    /// Parallelised by per-subtree ownership (see the module docs);
    /// typically replays far fewer schedules than
    /// [`PruneMode::SleepSet`].
    SourceDpor,
    /// Source-set DPOR with **value-aware** race detection (the
    /// default): same-register read/read pairs and same-value
    /// write/write pairs additionally commute when no high-level event
    /// marker rode on either step. Replays strictly no more schedules
    /// than [`PruneMode::SourceDpor`], and markedly fewer on
    /// mixed-role (reader-heavy) workloads.
    #[default]
    ValueDpor,
    /// [`PruneMode::ValueDpor`] plus the **static placement
    /// relaxation**: a `Local` (pause) step carrying at most an
    /// *invocation* marker additionally commutes with a marker-free
    /// data step whose register is licensed by the
    /// [`StaticConflicts`] certificate installed in
    /// [`Explorer::statics`] (produced by the `sl-analyze` footprint
    /// probe). Every dynamically detected data race is validated
    /// against the certificate's may-conflict matrix; an unpredicted
    /// race aborts the exploration (fail closed). Requires
    /// `Explorer::statics`; panics without it.
    StaticDpor,
    /// Source-set DPOR with **wakeup sequences** and **observer-aware**
    /// race detection: race reversals enqueue the entire reversing
    /// continuation at the racing node (replayed in full before free
    /// extension, so no sleep-set-blocked run is ever initiated), and
    /// two same-register writes additionally commute when neither
    /// written value is observed before being overwritten (strictly
    /// subsuming the same-value rule together with it). A
    /// [`StaticConflicts`] certificate in [`Explorer::statics`] is
    /// consulted when present (placement relaxation + fail-closed race
    /// validation) but is not required.
    OptimalDpor,
}

impl PruneMode {
    /// Stable name recorded in checkpoint metadata; resume rejects a
    /// checkpoint taken under a different mode (the frontier encoding
    /// is mode-specific).
    pub fn name(self) -> &'static str {
        match self {
            PruneMode::Unpruned => "Unpruned",
            PruneMode::SleepSet => "SleepSet",
            PruneMode::SourceDpor => "SourceDpor",
            PruneMode::ValueDpor => "ValueDpor",
            PruneMode::StaticDpor => "StaticDpor",
            PruneMode::OptimalDpor => "OptimalDpor",
        }
    }
}

/// Per-worker replay state owned by the caller of
/// [`Explorer::explore_with`]: one value is built per worker thread and
/// handed to every runner invocation on that thread — the natural home
/// for a reusable [`crate::SimWorld`], scratch buffers, and transcript
/// sinks.
///
/// The two hooks bracket **subtrees** in source-DPOR mode: every
/// delegated [`SubtreeTask`] a worker executes (and the root
/// exploration itself) is wrapped in `subtree_begin`/`subtree_end`, and
/// the replays in between stream that subtree's transcripts in
/// depth-first order — exactly the contract `sl_check::DagBuilder`
/// needs, so a context can keep a stack of DFS-ordered shards (tasks
/// nest when a worker helps with another task while waiting at a join)
/// and merge them afterwards. Frame modes call the hooks once per
/// worker.
pub trait ReplayCtx {
    /// A new subtree's replays start after this call.
    fn subtree_begin(&mut self) {}
    /// The current subtree is fully explored.
    fn subtree_end(&mut self) {}
}

impl ReplayCtx for () {}

/// One unexplored node of the schedule tree: the decision prefix that
/// reaches it and the sleep set holding there.
#[derive(Clone, Debug)]
struct Frame {
    script: Vec<usize>,
    sleep: u64,
}

/// One decision observed by a DPOR-mode driver: the configuration at
/// the decision point (the chosen process is in the driver's script).
struct Observed {
    runnable: Vec<usize>,
    pending: Vec<PendingAccess>,
    /// Sleep set in force at this decision (meaningful for fresh
    /// decisions; replayed decisions re-use the spine's bookkeeping).
    sleep: u64,
}

/// What the execution of one granted step revealed, observed post-hoc
/// from the recorded trace: the interned value the step read/wrote,
/// the step's interned register identity, and what event markers rode
/// on the step's activation. [`ExecMeta::UNKNOWN`] is the conservative
/// unknown (untraced runs): marker flags set, no register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct ExecMeta {
    pub(crate) value: ValueId,
    /// Globally interned register identity of the step
    /// ([`RegSym::LOCAL`] for pauses and untraced runs) — what the
    /// static placement relaxation keys its license on.
    pub(crate) reg: RegSym,
    /// Any high-level event marker (invocation *or* response) rode on
    /// this step's activation.
    pub(crate) hi: bool,
    /// A *response* marker rode on this step (implies `hi`).
    /// Responses pin real-time order, so a step carrying one is never
    /// commuted by any relaxation.
    pub(crate) resp: bool,
    /// This write's value is **unobserved and overwritten** in the
    /// current executed word: the next same-register access after it
    /// exists and is a plain write. Meaningful only for write steps,
    /// and only in [`PruneMode::OptimalDpor`]; recomputed over the
    /// whole word after every replay (see [`refresh_observer_flags`]),
    /// never set by the driver. `false` is the conservative unknown.
    pub(crate) unobs_w: bool,
    /// The high-level operation this step belongs to: the op of the
    /// invocation marker most recently observed for the step's process
    /// (a step whose activation *carries* an invocation marker belongs
    /// to the invoked op — that is the placement being commuted), or
    /// [`OpSym::NONE`] after a response, before the first invocation,
    /// and in untraced runs. Keys the per-op-pair placement relaxation.
    pub(crate) op: OpSym,
}

impl ExecMeta {
    const UNKNOWN: ExecMeta = ExecMeta {
        value: ValueId::NONE,
        reg: RegSym::LOCAL,
        hi: true,
        resp: true,
        unobs_w: false,
        op: OpSym::NONE,
    };
}

enum DriverMode {
    /// Record every eligible sibling as a frame (Unpruned / SleepSet).
    Frames { prune: bool, branches: Vec<Frame> },
    /// Record the observed configuration of each decision from
    /// `record_from` onwards for post-run race detection (the DPOR
    /// modes), plus per-decision execution metadata for value-aware
    /// race detection.
    Dpor {
        record_from: usize,
        observed: Vec<Observed>,
        /// Execution metadata per decision, aligned with `chosen`;
        /// decision `i` is finalised at decision `i + 1` (or at
        /// [`Scheduler::run_end`]), when its step is in the trace.
        exec: Vec<ExecMeta>,
        /// Trace items consumed by exec finalisation so far.
        trace_seen: usize,
        /// The op each process is currently executing (indexed by
        /// process id, grown on demand): set by the invocation marker
        /// riding a step's activation, cleared by a response marker.
        /// Deterministic — metadata is observed from decision 0 in
        /// every replay, so the attribution replays identically.
        cur_op: Vec<OpSym>,
    },
}

/// The adversarial scheduler driving one replay of the depth-first
/// explorer: replays the frame's decision prefix, then extends the
/// schedule (lowest eligible process first). In frame mode it records
/// every eligible sibling as a new frame with its sleep set; in DPOR
/// mode it records each decision's configuration so the explorer can
/// detect races afterwards.
///
/// Handed to the caller's runner, which passes it to `SimWorld::run` as
/// the scheduler of a (fresh or reset) world.
pub struct ScheduleDriver {
    prefix: Vec<usize>,
    /// Decisions taken so far in this run.
    chosen: Vec<usize>,
    /// Current sleep set: seeded with the sleep set holding at decision
    /// `record_from` (DPOR mode) or at the first decision past the
    /// prefix (frame modes — identical, since frame replays never touch
    /// it earlier), then evolves across recorded decisions.
    z: u64,
    mode: DriverMode,
    pruned: u64,
    cut: bool,
}

/// Keeps the bits of `set` whose process's pending access (looked up in
/// `runnable`/`pending`) is independent of `of`.
fn filter_independent(
    set: u64,
    of: PendingAccess,
    runnable: &[usize],
    pending: &[PendingAccess],
) -> u64 {
    if set == 0 {
        return 0;
    }
    let mut kept = 0u64;
    for (i, &p) in runnable.iter().enumerate() {
        if set & (1 << p) != 0 {
            let indep = match pending.get(i) {
                Some(b) => of.independent(b),
                // Unknown pending: assume conflict.
                None => false,
            };
            if indep {
                kept |= 1 << p;
            }
        }
    }
    kept
}

impl ScheduleDriver {
    fn frames(frame: Frame, prune: bool) -> ScheduleDriver {
        ScheduleDriver {
            z: frame.sleep,
            chosen: Vec::with_capacity(frame.script.len() + 16),
            prefix: frame.script,
            mode: DriverMode::Frames {
                prune,
                branches: Vec::new(),
            },
            pruned: 0,
            cut: false,
        }
    }

    /// `record_from`: first decision index whose configuration the
    /// explorer still needs (everything below already has a spine
    /// node) — replayed decisions before it are not recorded, which
    /// keeps the replay hot path allocation-free. `sleep_at_record` is
    /// the sleep set holding at decision `record_from`; prefix
    /// decisions from there on (the forced steps of a wakeup sequence)
    /// are recorded and evolve it.
    fn dpor(prefix: Vec<usize>, sleep_at_record: u64, record_from: usize) -> ScheduleDriver {
        ScheduleDriver {
            z: sleep_at_record,
            chosen: Vec::with_capacity(prefix.len() + 16),
            prefix,
            mode: DriverMode::Dpor {
                record_from,
                observed: Vec::new(),
                exec: Vec::new(),
                trace_seen: 0,
                cur_op: Vec::new(),
            },
            pruned: 0,
            cut: false,
        }
    }

    /// Finalises the execution metadata of the previous decision from
    /// the trace items recorded since it was granted: the step's value
    /// id, and whether event markers followed it in the same
    /// activation. No-op outside DPOR mode.
    fn observe_exec(&mut self, trace: &[TraceItem]) {
        let DriverMode::Dpor {
            exec,
            trace_seen,
            cur_op,
            ..
        } = &mut self.mode
        else {
            return;
        };
        let window = &trace[(*trace_seen).min(trace.len())..];
        *trace_seen = trace.len();
        if exec.len() >= self.chosen.len() {
            return; // nothing pending (first decision, or already done)
        }
        let p = self.chosen[exec.len()];
        if cur_op.len() <= p {
            cur_op.resize(p + 1, OpSym::NONE);
        }
        let mut meta = ExecMeta::UNKNOWN;
        // Default attribution: the op the process was already inside.
        meta.op = cur_op[p];
        let mut seen_step = false;
        for item in window {
            match item {
                TraceItem::Step(s) => {
                    seen_step = true;
                    meta.value = s.value();
                    meta.reg = s.reg_sym();
                    meta.hi = false;
                    meta.resp = false;
                }
                TraceItem::HiInvoke(_, tag) if seen_step => {
                    meta.hi = true;
                    // The step *carries* the invocation: it belongs to
                    // the op it places, as do the following steps.
                    meta.op = *tag;
                    cur_op[p] = *tag;
                }
                TraceItem::Hi(_) if seen_step => {
                    meta.hi = true;
                    meta.resp = true;
                    // Response (or unknown) marker: the activation
                    // completes its op; later steps are outside it.
                    cur_op[p] = OpSym::NONE;
                }
                TraceItem::Hi(_) | TraceItem::HiInvoke(..) => {}
            }
        }
        exec.push(meta);
    }

    /// The decision script of the run so far (the full schedule once
    /// the run finishes).
    pub fn script(&self) -> &[usize] {
        &self.chosen
    }

    /// How many decisions were replayed from the frame prefix.
    pub fn replayed(&self) -> usize {
        self.prefix.len()
    }

    /// Whether this replay was abandoned because every enabled process
    /// was sleeping (the run's continuations are covered elsewhere).
    /// Cut runs still produce genuine transcript *prefixes*; ingesting
    /// them is sound but optional.
    pub fn was_cut(&self) -> bool {
        self.cut
    }
}

impl Scheduler for ScheduleDriver {
    fn pick(&mut self, view: &SchedView<'_>) -> usize {
        self.observe_exec(view.trace);
        let i = self.chosen.len();
        if i < self.prefix.len() {
            // Replay: runs are deterministic, so the prefix choice must
            // still be runnable.
            let want = self.prefix[i];
            assert!(
                view.runnable.contains(&want),
                "explorer replay diverged: {want} not runnable at decision {i} \
                 (runnable: {:?})",
                view.runnable
            );
            if let DriverMode::Dpor {
                record_from,
                observed,
                ..
            } = &mut self.mode
            {
                if i >= *record_from {
                    observed.push(Observed {
                        runnable: view.runnable.to_vec(),
                        pending: view.pending.to_vec(),
                        sleep: self.z,
                    });
                    // Recorded replay decisions are the forced steps of
                    // a wakeup sequence (or a stem): the sleep set must
                    // evolve across them exactly as across fresh
                    // decisions, so the first free decision — and every
                    // recorded node on the way — sees the sleep set the
                    // sequential explorer would have. (`z` starts as
                    // `sleep_after_prefix`, the sleep set holding at
                    // decision `record_from`.)
                    if let Some(of) = view.pending_of(want) {
                        self.z = filter_independent(self.z, of, view.runnable, view.pending);
                    } else {
                        self.z = 0;
                    }
                }
            }
            self.chosen.push(want);
            return want;
        }
        // Hard limit, not a debug assertion: `1 << p` would silently
        // alias sleep bits for p >= 64 in release builds, making the
        // pruning unsound — a verification tool must fail loudly.
        assert!(
            view.runnable.iter().all(|&p| p < 64),
            "sleep sets support at most 64 processes"
        );
        let prune = !matches!(self.mode, DriverMode::Frames { prune: false, .. });
        // Candidates: runnable processes not in the sleep set.
        let mut first: Option<usize> = None;
        let mut candidates = 0u64;
        for &p in view.runnable {
            if !prune || self.z & (1 << p) == 0 {
                candidates |= 1 << p;
                if first.is_none() {
                    first = Some(p);
                }
            }
        }
        let Some(chosen) = first else {
            // Every enabled process is sleeping: any continuation from
            // here only reorders commuting steps of schedules explored
            // elsewhere. Abandon the run.
            self.cut = true;
            self.pruned += view.runnable.len() as u64;
            return STOP_RUN;
        };
        self.pruned += (view.runnable.len() as u64) - (candidates.count_ones() as u64);
        match &mut self.mode {
            DriverMode::Frames { prune, branches } => {
                // Record sibling branches. Sibling `alt` sleeps on the
                // chosen process and on every candidate listed before
                // it: exactly one representative interleaving of each
                // commuting pair survives.
                let mut acc = self.z | (1 << chosen);
                for &alt in view.runnable {
                    if alt == chosen || candidates & (1 << alt) == 0 {
                        continue;
                    }
                    let sleep = if *prune {
                        // Unknown pending: the conservative LOCAL access
                        // conflicts with everything.
                        let of = view.pending_of(alt).unwrap_or(PendingAccess::LOCAL);
                        filter_independent(acc, of, view.runnable, view.pending)
                    } else {
                        0
                    };
                    let mut script = self.chosen.clone();
                    script.push(alt);
                    branches.push(Frame { script, sleep });
                    acc |= 1 << alt;
                }
            }
            DriverMode::Dpor { observed, .. } => {
                observed.push(Observed {
                    runnable: view.runnable.to_vec(),
                    pending: view.pending.to_vec(),
                    sleep: self.z,
                });
            }
        }
        // Descend along `chosen`: sleeping processes stay asleep only
        // while the executed steps commute with their pending access.
        if prune {
            if let Some(of) = view.pending_of(chosen) {
                self.z = filter_independent(self.z, of, view.runnable, view.pending);
            } else {
                self.z = 0;
            }
        }
        self.chosen.push(chosen);
        chosen
    }

    fn run_end(&mut self, trace: &[TraceItem]) {
        // The final decision's step (and any trailing event markers)
        // entered the trace after the last `pick`: finalise it here.
        self.observe_exec(trace);
    }
}

/// The stateless depth-first schedule explorer with partial-order
/// reduction. See the module docs.
#[derive(Clone, Debug)]
pub struct Explorer {
    /// Stop after this many replays (completed + cut; the space may not
    /// be exhausted).
    pub max_runs: usize,
    /// Partial-order reduction level (default: value-aware source-set
    /// DPOR).
    pub mode: PruneMode,
    /// Worker threads replaying schedules. `1` explores sequentially on
    /// the calling thread; source-set DPOR partitions the schedule tree
    /// into delegated subtrees (deterministic result at any count).
    pub workers: usize,
    /// Initial decision prefix: exploration covers exactly the
    /// schedules extending this stem (empty = the full space).
    pub stem: Vec<usize>,
    /// Static conflict certificate consulted by
    /// [`PruneMode::StaticDpor`] (required for that mode) and
    /// [`PruneMode::OptimalDpor`] (optional there; ignored by every
    /// other mode). Shared by `Arc` so one certificate serves all
    /// workers and repeated explorations.
    pub statics: Option<Arc<StaticConflicts>>,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_runs: 1_000_000,
            mode: PruneMode::default(),
            workers: 1,
            stem: Vec::new(),
            statics: None,
        }
    }
}

impl Explorer {
    /// An explorer with the given run budget and defaults otherwise.
    pub fn with_max_runs(max_runs: usize) -> Explorer {
        Explorer {
            max_runs,
            ..Explorer::default()
        }
    }

    /// Explores the schedule space of the deterministic system embodied
    /// by `runner`, with no per-worker state. See [`Explorer::explore_with`].
    pub fn explore<F>(&self, runner: F) -> ExploreOutcome
    where
        F: Fn(&mut ScheduleDriver) -> RunOutcome + Sync,
    {
        self.explore_with(
            || (),
            |_, driver| {
                let _ = runner(driver);
            },
        )
    }

    /// Explores the schedule space of the deterministic system embodied
    /// by `runner`, threading caller-owned per-worker state through
    /// every replay.
    ///
    /// `new_ctx` is invoked once on each worker thread (including the
    /// calling thread) to build that worker's [`ReplayCtx`]. `runner`
    /// must execute one schedule of the system — same programs, same
    /// initial state every time, on a fresh world or a
    /// [`crate::SimWorld::reset`] one kept in the context — with the
    /// given [`ScheduleDriver`] as its scheduler, typically also
    /// streaming the run's transcript into a sink before returning. It
    /// is invoked once per explored schedule.
    pub fn explore_with<C, NF, F>(&self, new_ctx: NF, runner: F) -> ExploreOutcome
    where
        C: ReplayCtx,
        NF: Fn() -> C + Sync,
        F: Fn(&mut C, &mut ScheduleDriver) + Sync,
    {
        match self.mode {
            PruneMode::SourceDpor
            | PruneMode::ValueDpor
            | PruneMode::StaticDpor
            | PruneMode::OptimalDpor => self.explore_dpor(&new_ctx, &runner),
            PruneMode::Unpruned | PruneMode::SleepSet => {
                let root = Frame {
                    script: self.stem.clone(),
                    sleep: 0,
                };
                let prune = self.mode == PruneMode::SleepSet;
                if self.workers <= 1 {
                    self.explore_sequential(root, prune, &new_ctx, &runner)
                } else {
                    self.explore_parallel(root, prune, &new_ctx, &runner)
                }
            }
        }
    }

    fn explore_sequential<C, NF, F>(
        &self,
        root: Frame,
        prune: bool,
        new_ctx: &NF,
        runner: &F,
    ) -> ExploreOutcome
    where
        C: ReplayCtx,
        NF: Fn() -> C + Sync,
        F: Fn(&mut C, &mut ScheduleDriver) + Sync,
    {
        let mut ctx = new_ctx();
        ctx.subtree_begin();
        let mut stack = vec![root];
        let mut runs = 0usize;
        let mut cut_runs = 0usize;
        let mut pruned = 0u64;
        let mut exhausted = true;
        while let Some(frame) = stack.pop() {
            if runs + cut_runs >= self.max_runs {
                exhausted = false;
                break;
            }
            let mut driver = ScheduleDriver::frames(frame, prune);
            runner(&mut ctx, &mut driver);
            if driver.cut {
                cut_runs += 1;
            } else {
                runs += 1;
            }
            pruned += driver.pruned;
            if let DriverMode::Frames { branches, .. } = &mut driver.mode {
                stack.append(branches);
            }
        }
        ctx.subtree_end();
        ExploreOutcome::clean(runs, exhausted, pruned, cut_runs)
    }

    fn explore_parallel<C, NF, F>(
        &self,
        root: Frame,
        prune: bool,
        new_ctx: &NF,
        runner: &F,
    ) -> ExploreOutcome
    where
        C: ReplayCtx,
        NF: Fn() -> C + Sync,
        F: Fn(&mut C, &mut ScheduleDriver) + Sync,
    {
        let workers = self.workers;
        let deques: Vec<Mutex<VecDeque<Frame>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        deques[0].lock().unwrap().push_back(root);
        let runs = AtomicUsize::new(0);
        let cut_runs = AtomicUsize::new(0);
        let pruned = AtomicU64::new(0);
        let active = AtomicUsize::new(0);
        let capped = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for me in 0..workers {
                let deques = &deques;
                let runs = &runs;
                let cut_runs = &cut_runs;
                let pruned = &pruned;
                let active = &active;
                let capped = &capped;
                let max_runs = self.max_runs;
                scope.spawn(move || {
                    /// Decrements `active` when dropped, so the count
                    /// stays correct on every exit path — including a
                    /// panic inside the runner (a simulated program or
                    /// a runner assertion failing), which would
                    /// otherwise leave peers spinning on `active != 0`
                    /// forever.
                    struct ActiveGuard<'a>(&'a AtomicUsize);
                    impl Drop for ActiveGuard<'_> {
                        fn drop(&mut self) {
                            self.0.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    let mut ctx = new_ctx();
                    ctx.subtree_begin();
                    loop {
                        // `active` is raised *before* looking for work:
                        // a frame is never out of a deque while its
                        // holder is invisible to the termination check.
                        active.fetch_add(1, Ordering::SeqCst);
                        // Own deque first (LIFO: depth-first locally),
                        // then steal oldest frames from siblings
                        // (FIFO: breadth-first stealing splits the tree
                        // near the root, the classic work-stealing
                        // shape).
                        let frame = {
                            let own = deques[me].lock().unwrap().pop_back();
                            own.or_else(|| {
                                (0..workers)
                                    .filter(|v| *v != me)
                                    .find_map(|v| deques[v].lock().unwrap().pop_front())
                            })
                        };
                        let Some(frame) = frame else {
                            active.fetch_sub(1, Ordering::SeqCst);
                            if active.load(Ordering::SeqCst) == 0 {
                                // No frames anywhere and nobody holding
                                // one who could produce more: done.
                                let empty =
                                    (0..workers).all(|v| deques[v].lock().unwrap().is_empty());
                                if empty && active.load(Ordering::SeqCst) == 0 {
                                    break;
                                }
                            }
                            std::thread::yield_now();
                            continue;
                        };
                        // The guard owns the decrement from here on —
                        // every exit path, including a runner panic.
                        let _guard = ActiveGuard(active);
                        if runs.load(Ordering::SeqCst) + cut_runs.load(Ordering::SeqCst) >= max_runs
                        {
                            capped.store(true, Ordering::SeqCst);
                            break;
                        }
                        let mut driver = ScheduleDriver::frames(frame, prune);
                        runner(&mut ctx, &mut driver);
                        if driver.cut {
                            cut_runs.fetch_add(1, Ordering::SeqCst);
                        } else {
                            runs.fetch_add(1, Ordering::SeqCst);
                        }
                        pruned.fetch_add(driver.pruned, Ordering::Relaxed);
                        if let DriverMode::Frames { branches, .. } = &mut driver.mode {
                            if !branches.is_empty() {
                                let mut own = deques[me].lock().unwrap();
                                own.extend(branches.drain(..));
                            }
                        }
                    }
                    ctx.subtree_end();
                });
            }
        });
        let capped = capped.load(Ordering::SeqCst);
        ExploreOutcome::clean(
            runs.load(Ordering::SeqCst),
            !capped,
            pruned.load(Ordering::SeqCst),
            cut_runs.load(Ordering::SeqCst),
        )
    }
}

// ---------------------------------------------------------------------
// Source-set DPOR: the task engine shared by the sequential and the
// partitioned parallel explorer.
// ---------------------------------------------------------------------

/// One decision point on a DPOR spine: the configuration, the child
/// currently being explored, the children already retired, and the
/// backtrack (source) set grown by race detection in descendant runs.
///
/// *Ghost* nodes (empty `runnable`) stand in for the frozen prefix of a
/// delegated subtree: race detection needs their `chosen`/`access`, but
/// they are never backtracked into — demands against them escape to the
/// subtree's owner instead.
struct SpineNode {
    runnable: Vec<usize>,
    pending: Vec<PendingAccess>,
    /// Sleep set on entry plus retired children — the SDPOR `Sleep`
    /// after each explored child is added.
    sleep_now: u64,
    /// Children whose subtrees are fully explored or delegated.
    done: u64,
    /// Source set: children demanded by detected races (grows while
    /// descendants run). Always contains the first explored child.
    backtrack: Vec<usize>,
    /// Child currently being explored.
    chosen: usize,
    /// The step `chosen` executes from here — declared access plus
    /// execution metadata — the step of the execution word used for
    /// race detection. The metadata half is overwritten from the
    /// driver's execution record after every replay (deterministic:
    /// replayed prefixes re-derive identical metadata).
    meta: StepMeta,
    /// Siblings published as frozen subtree tasks, in publish order —
    /// joined (results and escapes merged) when the owner next retires
    /// a child of this node.
    delegated: Vec<(usize, Arc<TaskSlot>)>,
    /// Pending **wakeup sequences** ([`PruneMode::OptimalDpor`] only):
    /// full reversing continuations enqueued by race detection, FIFO.
    /// Each sequence's first process is also in `backtrack` (the
    /// redundancy check keys on it); backtracking pops the first
    /// sequence whose initial is neither done nor sleeping *and* which
    /// conflicts with every sleeping process ([`seq_wakes_all`]), and
    /// replays it wholesale.
    wakeups: VecDeque<WakeupSeq>,
}

/// One wakeup sequence: the steps of a reversing continuation, in
/// execution order (`seq[0]` is the weak initial the sequence starts
/// with), each as `(process, declared access)`. The accesses are the
/// race-time declarations of the continuation's steps — replay is
/// deterministic, so they are exactly what the forced steps re-declare
/// — and exist to decide [`seq_wakes_all`] without replaying anything.
type WakeupSeq = Vec<(usize, PendingAccess)>;

/// Whether `seq` conflicts with every process sleeping at `node`
/// (`sleep` is the caller's view of the sleep set — the live
/// `sleep_now`, or the accumulator a parallel publish threads through).
///
/// This is the defining side condition of a *wakeup sequence* for
/// ⟨node, Sleep⟩: a sleeping process whose pending access is
/// independent of **every** step of the sequence would sleep through
/// the entire forced part, and the replay could then block on it — the
/// one way a sleep-set-blocked run could still be initiated. Such a
/// sequence is redundant: orderings that never wake the sleeper are
/// covered by the subtree that put it to sleep, and orderings where a
/// later step does conflict with it are demanded by the race with that
/// step, whose reversing continuation contains the waking step and so
/// passes this check. Conversely, when the check holds, the driver —
/// which filters its sleep set with the same access-level relation at
/// every forced decision — has woken every sleeper by the end of the
/// sequence, so the free extension beyond it can never block.
fn seq_wakes_all(node: &SpineNode, sleep: u64, seq: &[(usize, PendingAccess)]) -> bool {
    if sleep == 0 {
        return true;
    }
    for (i, &p) in node.runnable.iter().enumerate() {
        if sleep & (1 << p) == 0 {
            continue;
        }
        let pending = node.pending.get(i).copied().unwrap_or(PendingAccess::LOCAL);
        if seq.iter().all(|(_, a)| a.independent(&pending)) {
            return false;
        }
    }
    true
}

impl SpineNode {
    fn ghost(chosen: usize, meta: StepMeta) -> SpineNode {
        SpineNode {
            runnable: Vec::new(),
            pending: Vec::new(),
            sleep_now: 0,
            done: 0,
            backtrack: Vec::new(),
            chosen,
            meta,
            delegated: Vec::new(),
            wakeups: VecDeque::new(),
        }
    }

    fn pending_of(&self, p: usize) -> PendingAccess {
        let i = self
            .runnable
            .iter()
            .position(|&q| q == p)
            .expect("backtrack candidate must be enabled");
        self.pending[i]
    }
}

/// One step of the executed word as race detection sees it: the
/// declared [`PendingAccess`] plus the post-hoc [`ExecMeta`].
#[derive(Clone, Copy, Debug)]
struct StepMeta {
    access: PendingAccess,
    exec: ExecMeta,
}

impl StepMeta {
    /// A step whose execution metadata is not (yet) known — treated as
    /// conflicting by the value-aware refinement.
    fn unknown(access: PendingAccess) -> StepMeta {
        StepMeta {
            access,
            exec: ExecMeta::UNKNOWN,
        }
    }
}

/// Whether two executed steps of *different* processes commute, under
/// the mode's independence relation. The syntactic half delegates to
/// [`PendingAccess::independent`]; `value_aware` adds same-register
/// read/read and same-value write/write commutation when no high-level
/// event marker rode on either step; `observers` (set only in
/// [`PruneMode::OptimalDpor`]) additionally commutes two writes whose
/// values are both unobserved-and-overwritten in the current word;
/// `statics` (set in [`PruneMode::StaticDpor`], optionally in
/// [`PruneMode::OptimalDpor`]) adds the **placement relaxation**: a
/// `Local` step carrying at most an invocation marker commutes with a
/// marker-free data step whose register the certificate licenses (see
/// the module-level soundness arguments).
fn step_independent(
    a: &StepMeta,
    b: &StepMeta,
    value_aware: bool,
    observers: bool,
    statics: Option<&StaticConflicts>,
) -> bool {
    if a.access.independent(&b.access) {
        return true;
    }
    if let Some(st) = statics {
        // Exactly one of the pair is a pause: the placement relaxation
        // candidate.
        let local_data = match (a.access.is_local(), b.access.is_local()) {
            (true, false) => Some((a, b)),
            (false, true) => Some((b, a)),
            _ => None,
        };
        if let Some((local, data)) = local_data {
            if !local.exec.resp
                && !data.exec.hi
                && data.exec.reg != RegSym::LOCAL
                && st.licensed(data.exec.reg)
            {
                st.note_relaxed();
                return true;
            }
        }
        // Pause/pause, response-free on both sides, both activations
        // attributed to probed ops: swapping reorders two adjacent
        // *invocation* events only, which changes no
        // response-before-invocation precedence pair (module-level
        // soundness argument R1). The pair-probed license keeps the
        // relaxation attributable — and fail-closed for unknown ops.
        if a.access.is_local()
            && b.access.is_local()
            && !a.exec.resp
            && !b.exec.resp
            && st.pair_probed(a.exec.op, b.exec.op)
        {
            st.note_relaxed();
            return true;
        }
    }
    if !value_aware || a.access.is_local() || b.access.is_local() {
        return false;
    }
    // Value rules require marker-free steps: moving a step that carries
    // an event marker reorders the history. Exception (argument R2): if
    // *at most one* of the pair carries markers and the certificate's
    // op-pair matrix licenses the pair on this register, the marked
    // step's events move across an event-free step — the recorded event
    // sequence is unchanged.
    if a.exec.hi || b.exec.hi {
        let pair_ok = statics.is_some_and(|st| {
            !(a.exec.hi && b.exec.hi)
                && a.exec.reg != RegSym::LOCAL
                && st.pair_licensed(a.exec.op, b.exec.op, a.exec.reg)
        });
        if !pair_ok {
            return false;
        }
    }
    let commutes = match (a.access.kind, b.access.kind) {
        (AccessKind::Read, AccessKind::Read) => true,
        (AccessKind::Write, AccessKind::Write) => {
            (!a.exec.value.is_none() && a.exec.value == b.exec.value)
                // Observer rule: both values die unread — swapping the
                // writes changes no read, no record, and (because the
                // overwriter executes either way) no final state.
                || (observers && a.exec.unobs_w && b.exec.unobs_w)
        }
        _ => false,
    };
    if commutes && (a.exec.hi || b.exec.hi) {
        // Reached only through the op-pair license above.
        if let Some(st) = statics {
            st.note_relaxed();
        }
    }
    commutes
}

/// Recomputes every spine step's unobserved-and-overwritten flag
/// ([`ExecMeta::unobs_w`]) for the current executed word: a write is
/// flagged when the next same-register access after it exists and is a
/// plain write. Keys on the *declared* accesses (register identity and
/// kind are known even when execution metadata is not).
///
/// Returns the smallest index whose flag changed (`spine.len()` when
/// none did): observer status is suffix-dependent, so a changed prefix
/// flag invalidates the cached vector clocks and race conclusions from
/// that index on — the caller lowers its race-detection window
/// accordingly.
fn refresh_observer_flags(spine: &mut [SpineNode]) -> usize {
    let mut changed = spine.len();
    // Kind of the next (in word order) access per register, maintained
    // by a backward scan. Registers are few; linear probing is fine.
    let mut next_kind: Vec<(crate::world::RegId, AccessKind)> = Vec::new();
    for i in (0..spine.len()).rev() {
        let access = spine[i].meta.access;
        if access.is_local() {
            continue; // pauses touch no register and keep no flag
        }
        let slot = next_kind.iter().position(|(r, _)| *r == access.reg);
        let flag = access.kind == AccessKind::Write
            && matches!(slot.map(|s| next_kind[s].1), Some(AccessKind::Write));
        match slot {
            Some(s) => next_kind[s].1 = access.kind,
            None => next_kind.push((access.reg, access.kind)),
        }
        if spine[i].meta.exec.unobs_w != flag {
            spine[i].meta.exec.unobs_w = flag;
            changed = i;
        }
    }
    changed
}

/// `a ≤ b` pointwise: the step with clock `a` happens-before the step
/// with clock `b`.
fn clock_leq(a: &[u32], b: &[u32]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// A frozen unexplored subtree of the source-DPOR schedule tree,
/// publishable onto the work-stealing deque: everything a worker needs
/// to explore the subtree without touching the owner's spine.
///
/// `Clone` so a [`TaskSlot`] can retain the frozen spec for the
/// checkpointer and for quarantine retries while a claimed copy runs.
#[derive(Clone)]
struct SubtreeTask {
    /// Full decision prefix from the schedule-tree root; the last entry
    /// is the backtrack candidate this task reverses into.
    prefix: Vec<usize>,
    /// Step metadata of each prefix step (the task's ghost spine for
    /// race detection). Empty for the root task, whose stem accesses
    /// are observed on the first replay instead.
    accesses: Vec<StepMeta>,
    /// Vector clocks of prefix steps `0..prefix.len()-1`, cloned from
    /// the owner's cache (the last prefix step's clock is computed by
    /// the task's own first race-detection pass).
    clocks: Vec<Vec<u32>>,
    /// Sleep set at the subtree root.
    sleep: u64,
    /// Backtrack floor: decision indices below this belong to the
    /// parent (ghosts); demands against them escape.
    floor: usize,
}

/// A backtrack demand raised inside a subtree against a decision node
/// above its floor, carried to the owner and merged at the join.
struct Escape {
    /// Global decision index of the demanding race's earlier step.
    depth: usize,
    /// Process of the first reversing step (added if no initial is
    /// present).
    first_proc: usize,
    /// Weak initials of the reversing continuation.
    initials: Vec<usize>,
    /// The full reversing continuation ([`PruneMode::OptimalDpor`]
    /// only): enqueued as a wakeup sequence when the demand is applied.
    seq: Option<WakeupSeq>,
}

/// Exploration totals and escapes of one finished subtree.
#[derive(Default)]
struct TaskOutput {
    runs: usize,
    cut_runs: usize,
    pruned: u64,
    capped: bool,
    escapes: Vec<Escape>,
    /// Panicking-subtree retry attempts folded up from descendants.
    retried: u64,
    /// Subtrees quarantined after exhausting retries.
    quarantined: u64,
    /// The budget expired: this task abandoned work at a replay
    /// boundary (the root wrote a checkpoint first).
    drained: bool,
    /// One report per quarantined subtree.
    poisoned: Vec<PoisonReport>,
}

// ---------------------------------------------------------------------
// Process-portable task freezing (distributed dispatch)
// ---------------------------------------------------------------------

/// A frozen subtree task in process-portable form: the same shape the
/// checkpoint wire format persists ([`CkptTask`]), minus the
/// checkpoint-local id. Vector clocks and execution metadata are
/// deliberately absent — [`restore_spine`] proves a task rebuilt from
/// `(prefix, accesses, sleep, floor)` with [`StepMeta::unknown`] ghosts
/// and empty clocks explores bit-identically, because the first counted
/// replay recomputes both exactly as the owner would have.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireTask {
    /// Full decision prefix from the schedule-tree root.
    pub prefix: Vec<usize>,
    /// Declared accesses of the ghost spine, one per prefix step.
    pub accesses: Vec<CkptAccess>,
    /// Sleep set at the subtree root.
    pub sleep: u64,
    /// Backtrack floor: decision indices below this belong to the
    /// dispatching owner; demands against them escape.
    pub floor: usize,
}

impl WireTask {
    fn freeze(spec: &SubtreeTask) -> WireTask {
        WireTask {
            prefix: spec.prefix.clone(),
            accesses: spec
                .accesses
                .iter()
                .map(|m| wire_access_of(&m.access))
                .collect(),
            sleep: spec.sleep,
            floor: spec.floor,
        }
    }

    fn thaw(&self) -> SubtreeTask {
        SubtreeTask {
            prefix: self.prefix.clone(),
            accesses: self
                .accesses
                .iter()
                .map(|a| StepMeta::unknown(live_access_of(a)))
                .collect(),
            clocks: Vec::new(),
            sleep: self.sleep,
            floor: self.floor,
        }
    }
}

/// A subtree's escaped backtrack demand in process-portable form (see
/// [`Escape`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireEscape {
    /// Global decision index of the demanding race's earlier step.
    pub depth: usize,
    /// Process of the first reversing step.
    pub first_proc: usize,
    /// Weak initials of the reversing continuation.
    pub initials: Vec<usize>,
    /// The full reversing continuation ([`PruneMode::OptimalDpor`]
    /// only).
    pub seq: Option<Vec<(usize, CkptAccess)>>,
}

impl WireEscape {
    fn freeze(e: &Escape) -> WireEscape {
        WireEscape {
            depth: e.depth,
            first_proc: e.first_proc,
            initials: e.initials.clone(),
            seq: e
                .seq
                .as_ref()
                .map(|seq| seq.iter().map(|(p, a)| (*p, wire_access_of(a))).collect()),
        }
    }

    fn thaw(&self) -> Escape {
        Escape {
            depth: self.depth,
            first_proc: self.first_proc,
            initials: self.initials.clone(),
            seq: self
                .seq
                .as_ref()
                .map(|seq| seq.iter().map(|(p, a)| (*p, live_access_of(a))).collect()),
        }
    }
}

/// The completed exploration of one dispatched subtree, in
/// process-portable form: [`TaskOutput`] minus `drained` (a remote
/// worker holds no budget; draining is the coordinator's call).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireTaskResult {
    /// Completed runs.
    pub runs: usize,
    /// Sleep-set-cut replays.
    pub cut_runs: usize,
    /// Pruned branch candidates.
    pub pruned: u64,
    /// The subtree hit its run budget (never set by
    /// [`Explorer::explore_frozen_task`], which runs uncapped).
    pub capped: bool,
    /// Panicking-subtree retry attempts.
    pub retried: u64,
    /// Subtrees quarantined after exhausting retries.
    pub quarantined: u64,
    /// One report per quarantined subtree.
    pub poisoned: Vec<PoisonReport>,
    /// Backtrack demands against decisions above the task's floor.
    pub escapes: Vec<WireEscape>,
}

impl WireTaskResult {
    fn freeze(out: &TaskOutput) -> WireTaskResult {
        WireTaskResult {
            runs: out.runs,
            cut_runs: out.cut_runs,
            pruned: out.pruned,
            capped: out.capped,
            retried: out.retried,
            quarantined: out.quarantined,
            poisoned: out.poisoned.clone(),
            escapes: out.escapes.iter().map(WireEscape::freeze).collect(),
        }
    }

    fn thaw(&self) -> TaskOutput {
        TaskOutput {
            runs: self.runs,
            cut_runs: self.cut_runs,
            pruned: self.pruned,
            capped: self.capped,
            retried: self.retried,
            quarantined: self.quarantined,
            drained: false,
            poisoned: self.poisoned.clone(),
            escapes: self.escapes.iter().map(WireEscape::thaw).collect(),
        }
    }
}

fn wire_access_of(a: &PendingAccess) -> CkptAccess {
    CkptAccess {
        reg: a.reg.0,
        kind: a.kind,
    }
}

fn live_access_of(a: &CkptAccess) -> PendingAccess {
    PendingAccess {
        reg: RegId(a.reg),
        kind: a.kind,
    }
}

/// Farms frozen subtree tasks to somewhere else — typically worker
/// processes, via `sl-dist`'s lease-table coordinator.
///
/// `dispatch` either returns the subtree's completed
/// [`WireTaskResult`] (possibly a quarantine verdict, after the remote
/// retry budget is spent) or `None`, which makes the calling worker
/// run the task in-process — the graceful-degradation path when no
/// worker process can be spawned or every lease was revoked without a
/// verdict. Called concurrently from every exploration thread.
pub trait TaskDispatcher: Sync {
    /// Executes one frozen task remotely, or declines with `None`.
    fn dispatch(&self, task: &WireTask) -> Option<WireTaskResult>;
}

const TASK_QUEUED: u8 = 0;
const TASK_RUNNING: u8 = 1;
const TASK_DONE: u8 = 2;

/// A published subtree task: claimable exactly once, completed with its
/// [`TaskOutput`]. Deques may hold stale handles to already-claimed
/// slots; `claim` arbitrates.
struct TaskSlot {
    state: AtomicU8,
    /// The frozen spec, immutable after construction: the checkpointer
    /// reads it lock-free regardless of claim state, and claiming hands
    /// out a clone.
    spec: SubtreeTask,
    output: Mutex<Option<TaskOutput>>,
}

impl TaskSlot {
    fn new(spec: SubtreeTask) -> TaskSlot {
        TaskSlot {
            state: AtomicU8::new(TASK_QUEUED),
            spec,
            output: Mutex::new(None),
        }
    }

    /// Takes the task for execution; `None` if someone else already has.
    fn claim(&self) -> Option<SubtreeTask> {
        if self
            .state
            .compare_exchange(
                TASK_QUEUED,
                TASK_RUNNING,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            Some(self.spec.clone())
        } else {
            None
        }
    }

    fn complete(&self, out: TaskOutput) {
        *self.output.lock().unwrap() = Some(out);
        self.state.store(TASK_DONE, Ordering::SeqCst);
    }

    fn is_done(&self) -> bool {
        self.state.load(Ordering::SeqCst) == TASK_DONE
    }
}

/// State shared by every worker of one source-DPOR exploration.
struct DporShared<'a, NF, F> {
    new_ctx: &'a NF,
    runner: &'a F,
    max_runs: usize,
    /// Race detection uses the value-aware independence relation
    /// ([`PruneMode::ValueDpor`] and up).
    value_aware: bool,
    /// [`PruneMode::OptimalDpor`]: wakeup sequences and observer-aware
    /// race detection.
    optimal: bool,
    /// The static certificate, when the mode is
    /// [`PruneMode::StaticDpor`] (required) or
    /// [`PruneMode::OptimalDpor`] (optional): enables the placement
    /// relaxation in [`step_independent`] and fail-closed race
    /// validation in [`add_race_reversals`].
    statics: Option<&'a StaticConflicts>,
    /// Length of the user-supplied stem: demands below it are dropped
    /// (the stem is never backtracked into).
    hard_stem: usize,
    /// Per-worker deques of published subtree tasks.
    deques: Vec<Mutex<VecDeque<Arc<TaskSlot>>>>,
    /// Published-but-unclaimed task count — the split heuristic keeps
    /// this shallow instead of shattering the tree near its leaves.
    queued: AtomicUsize,
    /// Global replay reservation counter (runs + cuts).
    replays: AtomicUsize,
    /// Root exploration finished (or aborted): workers exit.
    shutdown: AtomicBool,
    /// First panic payload raised by any worker's runner.
    poison: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    poisoned: AtomicBool,
    /// Deterministic fault injection (resumable sessions only; `None`
    /// everywhere else, making every `fire` a no-op).
    fault: Option<&'a FaultPlan>,
    /// The budget expired: every task abandons work at its next replay
    /// boundary. Raised only by the root, after it wrote a checkpoint.
    draining: AtomicBool,
    /// Where quarantine writes poisoned-task reports (`SL_POISON_DIR`;
    /// unset means reports only travel in the outcome).
    poison_dir: Option<std::path::PathBuf>,
    /// Remote dispatch hook ([`Explorer::explore_dispatched`] only):
    /// non-root tasks are offered here before running in-process.
    dispatcher: Option<&'a dyn TaskDispatcher>,
}

/// Waiting at a join, a worker helps with other queued tasks; the
/// recursion this nests is bounded to keep stack usage predictable.
const MAX_HELP_DEPTH: usize = 32;

impl<'a, NF, F> DporShared<'a, NF, F> {
    fn record_poison(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.poison.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
        self.poisoned.store(true, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Pops a claimable task: own deque LIFO first (depth-first
    /// locally), then FIFO-steal from siblings (splits near the root).
    fn steal_task(&self, me: usize) -> Option<(Arc<TaskSlot>, SubtreeTask)> {
        let order = std::iter::once(me).chain((0..self.deques.len()).filter(move |v| *v != me));
        for (i, v) in order.enumerate() {
            loop {
                let slot = {
                    let mut dq = self.deques[v].lock().unwrap();
                    if i == 0 {
                        dq.pop_back()
                    } else {
                        dq.pop_front()
                    }
                };
                let Some(slot) = slot else { break };
                if let Some(task) = slot.claim() {
                    self.queued.fetch_sub(1, Ordering::Relaxed);
                    if let Some(plan) = self.fault {
                        plan.fire(FaultPoint::Steal);
                    }
                    return Some((slot, task));
                }
                // Stale handle (claimed back at a join): drop and keep
                // draining this deque.
            }
        }
        None
    }
}

impl Explorer {
    /// Source-set DPOR exploration: sequential on the calling thread
    /// for `workers <= 1`, partitioned across a work-stealing pool
    /// otherwise. Identical results either way (see the module docs).
    fn explore_dpor<C, NF, F>(&self, new_ctx: &NF, runner: &F) -> ExploreOutcome
    where
        C: ReplayCtx,
        NF: Fn() -> C + Sync,
        F: Fn(&mut C, &mut ScheduleDriver) + Sync,
    {
        self.explore_dpor_session(new_ctx, runner, None, None)
    }

    /// Source-set DPOR exploration with a remote dispatch hook: every
    /// delegated (non-root) subtree task is first offered to
    /// `dispatcher`, and only runs in-process when the dispatcher
    /// declines — see [`TaskDispatcher`]. With a dispatcher that always
    /// declines this is exactly [`Explorer::explore_with`]; with one
    /// that farms tasks to `sl-dist` worker processes the merged result
    /// is still bit-identical (the wire task shape round-trips the
    /// frozen spec, and counters/escapes merge the same way a local
    /// join does).
    ///
    /// Panics unless [`Explorer::mode`] is one of the DPOR modes — the
    /// frame explorers have no subtree tasks to dispatch.
    pub fn explore_dispatched<C, NF, F>(
        &self,
        new_ctx: NF,
        runner: F,
        dispatcher: &dyn TaskDispatcher,
    ) -> ExploreOutcome
    where
        C: ReplayCtx,
        NF: Fn() -> C + Sync,
        F: Fn(&mut C, &mut ScheduleDriver) + Sync,
    {
        assert!(
            matches!(
                self.mode,
                PruneMode::SourceDpor
                    | PruneMode::ValueDpor
                    | PruneMode::StaticDpor
                    | PruneMode::OptimalDpor
            ),
            "explore_dispatched requires a DPOR mode (fail-closed: the frame \
             explorers have no subtree tasks to dispatch)"
        );
        self.explore_dpor_session(&new_ctx, &runner, None, Some(dispatcher))
    }

    /// Worker-process side of distributed dispatch: explores one frozen
    /// [`WireTask`] to exhaustion on the calling thread and returns its
    /// portable result. The explorer must be configured identically to
    /// the dispatching coordinator's (mode, stem, statics) — `sl-dist`
    /// pins both to one named workload. Runs uncapped: the coordinator
    /// owns the global run budget and banks dispatched counters
    /// against it.
    pub fn explore_frozen_task<C, NF, F>(
        &self,
        new_ctx: NF,
        runner: F,
        task: &WireTask,
    ) -> WireTaskResult
    where
        C: ReplayCtx,
        NF: Fn() -> C + Sync,
        F: Fn(&mut C, &mut ScheduleDriver) + Sync,
    {
        assert!(
            matches!(
                self.mode,
                PruneMode::SourceDpor
                    | PruneMode::ValueDpor
                    | PruneMode::StaticDpor
                    | PruneMode::OptimalDpor
            ),
            "explore_frozen_task requires a DPOR mode (fail-closed: the frame \
             explorers have no subtree tasks to thaw)"
        );
        let statics = match self.mode {
            PruneMode::StaticDpor => Some(self.statics.as_deref().expect(
                "PruneMode::StaticDpor requires Explorer::statics \
                 (a StaticConflicts certificate from sl-analyze)",
            )),
            PruneMode::OptimalDpor => self.statics.as_deref(),
            _ => None,
        };
        let shared = DporShared {
            new_ctx: &new_ctx,
            runner: &runner,
            max_runs: usize::MAX,
            value_aware: matches!(
                self.mode,
                PruneMode::ValueDpor | PruneMode::StaticDpor | PruneMode::OptimalDpor
            ),
            optimal: self.mode == PruneMode::OptimalDpor,
            statics,
            hard_stem: self.stem.len(),
            deques: vec![Mutex::new(VecDeque::new())],
            queued: AtomicUsize::new(0),
            replays: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            poison: Mutex::new(None),
            poisoned: AtomicBool::new(false),
            fault: None,
            draining: AtomicBool::new(false),
            poison_dir: std::env::var_os("SL_POISON_DIR").map(std::path::PathBuf::from),
            dispatcher: None,
        };
        let spec = task.thaw();
        let mut ctx = (shared.new_ctx)();
        let out = run_task_guarded(&shared, 0, 0, &mut ctx, &spec, None);
        WireTaskResult::freeze(&out)
    }

    /// Resumable exploration: source-set DPOR with periodic frontier
    /// checkpoints, budget-drained degradation, and (optionally)
    /// deterministic fault injection — see the [`crate::checkpoint`]
    /// module docs for the format, the budget semantics, and the
    /// quarantine soundness argument.
    ///
    /// If `session.store` holds a checkpoint, it is loaded (fail-closed:
    /// any load error panics with the store's named diagnostic) and the
    /// exploration continues from the snapshotted frontier; otherwise a
    /// fresh exploration starts. On budget expiry
    /// ([`CheckpointPolicy::max_schedules`] /
    /// [`CheckpointPolicy::deadline`]) the explorer drains to a clean
    /// checkpoint and returns a partial outcome with
    /// [`ExploreOutcome::drained`] set; the union of a drained run and
    /// its resumption is bit-identical to an uninterrupted run at any
    /// worker count. A finished (non-drained) resumable run deletes its
    /// checkpoint.
    ///
    /// Panics unless [`Explorer::mode`] is one of the DPOR modes — the
    /// frame explorers have no task frontier to checkpoint.
    pub fn explore_resumable<C, NF, F>(
        &self,
        new_ctx: NF,
        runner: F,
        session: &ResumeSession<'_>,
    ) -> ExploreOutcome
    where
        C: ReplayCtx,
        NF: Fn() -> C + Sync,
        F: Fn(&mut C, &mut ScheduleDriver) + Sync,
    {
        assert!(
            matches!(
                self.mode,
                PruneMode::SourceDpor
                    | PruneMode::ValueDpor
                    | PruneMode::StaticDpor
                    | PruneMode::OptimalDpor
            ),
            "explore_resumable requires a DPOR mode (fail-closed: the frame \
             explorers have no task frontier to checkpoint)"
        );
        let workers = self.workers.max(1);
        let (restore, base) = if session.store.exists() {
            let expect = ResumeExpectation {
                workers,
                mode: self.mode.name(),
                stem_len: self.stem.len(),
                expected_shards: session.expected_shards.as_deref(),
            };
            let ckpt = session
                .store
                .load(Some(&expect), session.fault.as_deref())
                .unwrap_or_else(|e| panic!("cannot resume (fail-closed): {e}"));
            let base = ckpt.counters;
            (Some(ckpt), base)
        } else {
            (None, CkptCounters::default())
        };
        self.explore_dpor_session(
            &new_ctx,
            &runner,
            Some(SessionState {
                store: session.store,
                policy: &session.policy,
                fault: session.fault.as_deref(),
                shard_hashes: session.shard_hashes,
                restore,
                base,
            }),
            None,
        )
    }

    fn explore_dpor_session<C, NF, F>(
        &self,
        new_ctx: &NF,
        runner: &F,
        session: Option<SessionState<'_>>,
        dispatcher: Option<&dyn TaskDispatcher>,
    ) -> ExploreOutcome
    where
        C: ReplayCtx,
        NF: Fn() -> C + Sync,
        F: Fn(&mut C, &mut ScheduleDriver) + Sync,
    {
        let workers = self.workers.max(1);
        let statics = match self.mode {
            PruneMode::StaticDpor => Some(self.statics.as_deref().expect(
                "PruneMode::StaticDpor requires Explorer::statics \
                 (a StaticConflicts certificate from sl-analyze)",
            )),
            // Optional for optimal DPOR: consulted when installed.
            PruneMode::OptimalDpor => self.statics.as_deref(),
            _ => None,
        };
        let base = session.as_ref().map(|s| s.base).unwrap_or_default();
        let base_schedules = (base.runs + base.cut_runs) as usize;
        let fault = session.as_ref().and_then(|s| s.fault);
        let shared = DporShared {
            new_ctx,
            runner,
            // Already-banked schedules count against the run budget, so
            // an interrupted + resumed run caps at the same total.
            max_runs: self.max_runs.saturating_sub(base_schedules),
            value_aware: matches!(
                self.mode,
                PruneMode::ValueDpor | PruneMode::StaticDpor | PruneMode::OptimalDpor
            ),
            optimal: self.mode == PruneMode::OptimalDpor,
            statics,
            hard_stem: self.stem.len(),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            replays: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            poison: Mutex::new(None),
            poisoned: AtomicBool::new(false),
            fault,
            draining: AtomicBool::new(false),
            poison_dir: std::env::var_os("SL_POISON_DIR").map(std::path::PathBuf::from),
            dispatcher,
        };
        // Checkpoint IO runs on a dedicated writer thread: filesystem
        // commit latency (temp write + rename, ~1ms on a journaling
        // filesystem) would otherwise stall every cadence tick of the
        // root walk. Under fault injection the writer is disabled so
        // `ckpt-write` crashes stay synchronous and deterministic.
        let writer = session
            .as_ref()
            .filter(|s| s.fault.is_none())
            .map(|s| CkptWriter::spawn(s.store));
        let mut rc = session.map(|s| RootCkpt {
            store: s.store,
            policy: s.policy,
            fault: s.fault,
            writer: writer.as_ref(),
            shard_hashes: s.shard_hashes,
            mode: self.mode.name(),
            workers,
            stem_len: self.stem.len(),
            base: s.base,
            seq: s.restore.as_ref().map(|c| c.seq + 1).unwrap_or(1),
            replays_since: 0,
            restore: s.restore,
        });
        let root = SubtreeTask {
            prefix: self.stem.clone(),
            accesses: Vec::new(),
            clocks: Vec::new(),
            sleep: 0,
            floor: self.stem.len(),
        };
        let root_out = if workers <= 1 {
            let mut ctx = new_ctx();
            run_task_guarded(&shared, 0, 0, &mut ctx, &root, rc.as_mut())
        } else {
            let mut root_out = None;
            std::thread::scope(|scope| {
                for me in 1..workers {
                    let shared = &shared;
                    scope.spawn(move || worker_loop(shared, me));
                }
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut ctx = (shared.new_ctx)();
                    run_task_guarded(&shared, 0, 0, &mut ctx, &root, rc.as_mut())
                }));
                match result {
                    Ok(out) => root_out = Some(out),
                    Err(payload) => shared.record_poison(payload),
                }
                shared.shutdown.store(true, Ordering::SeqCst);
            });
            if let Some(payload) = shared.poison.lock().unwrap().take() {
                std::panic::resume_unwind(payload);
            }
            root_out.expect("root exploration completed without a panic")
        };
        let quarantined = base.quarantined + root_out.quarantined;
        let outcome = ExploreOutcome {
            runs: base.runs as usize + root_out.runs,
            exhausted: !root_out.capped && !root_out.drained && quarantined == 0,
            pruned: base.pruned + root_out.pruned,
            cut_runs: base.cut_runs as usize + root_out.cut_runs,
            retried: base.retried + root_out.retried,
            quarantined,
            drained: root_out.drained,
            partial: root_out.drained || quarantined > 0,
            poisoned: root_out.poisoned,
        };
        let ckpt_store = rc.as_ref().map(|r| r.store.clone());
        drop(rc);
        // Flush the async writer before touching the file: the drain
        // snapshot becomes durable here, and a queued periodic write
        // must not land after `clear()` resurrects nothing.
        if let Some(writer) = writer {
            writer.finish();
        }
        if let Some(store) = ckpt_store {
            // A run that actually finished (did not drain) owns no
            // resumable state any more: delete the checkpoint so a
            // later resumable invocation starts fresh. Quarantined
            // prefixes live in the poisoned-task reports, not here.
            if !outcome.drained {
                store.clear();
            }
        }
        outcome
    }
}

/// Per-invocation state of a resumable DPOR session, threaded into
/// [`Explorer::explore_dpor_session`].
struct SessionState<'a> {
    store: &'a CheckpointStore,
    policy: &'a CheckpointPolicy,
    fault: Option<&'a FaultPlan>,
    shard_hashes: Option<&'a (dyn Fn() -> Vec<u64> + Sync)>,
    /// The loaded checkpoint to restore from (`None` = fresh start).
    restore: Option<Checkpoint>,
    /// Counters banked by the interrupted run (zero on a fresh start).
    base: CkptCounters,
}

/// Root-only checkpointing state: owned by whichever thread runs the
/// root task (checkpoints snapshot the **root's** spine — delegated
/// subtrees are represented by their frozen specs, so nothing another
/// worker mutates is ever read).
struct RootCkpt<'a> {
    store: &'a CheckpointStore,
    policy: &'a CheckpointPolicy,
    fault: Option<&'a FaultPlan>,
    /// Asynchronous publication path (absent under fault injection,
    /// where writes stay synchronous so `ckpt-write` crashes land
    /// deterministically on the exploring thread).
    writer: Option<&'a CkptWriter>,
    shard_hashes: Option<&'a (dyn Fn() -> Vec<u64> + Sync)>,
    mode: &'static str,
    workers: usize,
    stem_len: usize,
    /// Counters banked by the interrupted run; snapshots write
    /// `base + out` so each checkpoint carries run-total counters.
    base: CkptCounters,
    seq: u64,
    replays_since: u64,
    restore: Option<Checkpoint>,
}

/// Serializes the root spine into a [`Checkpoint`] and writes it
/// through the store (atomic temp + rename). Skipped while the spine is
/// still empty — there is nothing to resume before the first replay.
///
/// When an async [`CkptWriter`] is installed, periodic snapshots
/// (`durable = false`) are handed to the writer thread best-effort
/// (skipped if it is behind) and the drain snapshot (`durable = true`)
/// is enqueued guaranteed — it is on disk once the writer is finished,
/// which [`Explorer::explore_resumable`] does before returning.
fn write_root_checkpoint(
    rc: &mut RootCkpt<'_>,
    spine: &[SpineNode],
    next: (&[usize], u64, usize),
    out: &TaskOutput,
    durable: bool,
) {
    if spine.is_empty() {
        return;
    }
    let wire_access = |a: &PendingAccess| CkptAccess {
        reg: a.reg.0,
        kind: a.kind,
    };
    let counters = CkptCounters {
        runs: rc.base.runs + out.runs as u64,
        cut_runs: rc.base.cut_runs + out.cut_runs as u64,
        pruned: rc.base.pruned + out.pruned,
        retried: rc.base.retried + out.retried,
        quarantined: rc.base.quarantined + out.quarantined,
    };
    let mut shard_hashes = rc.shard_hashes.map(|f| f()).unwrap_or_default();
    shard_hashes.sort_unstable();
    let mut task_id = 0u64;
    let ckpt_spine = spine
        .iter()
        .map(|node| CkptNode {
            chosen: node.chosen,
            done: node.done,
            sleep: node.sleep_now,
            backtrack: node.backtrack.clone(),
            runnable: node.runnable.clone(),
            pending: node.pending.iter().map(wire_access).collect(),
            wakeups: node
                .wakeups
                .iter()
                .map(|seq| seq.iter().map(|(p, a)| (*p, wire_access(a))).collect())
                .collect(),
            tasks: node
                .delegated
                .iter()
                .map(|(proc, slot)| {
                    task_id += 1;
                    CkptTask {
                        id: task_id,
                        proc: *proc,
                        prefix: slot.spec.prefix.clone(),
                        accesses: slot
                            .spec
                            .accesses
                            .iter()
                            .map(|m| wire_access(&m.access))
                            .collect(),
                        sleep: slot.spec.sleep,
                        floor: slot.spec.floor,
                    }
                })
                .collect(),
        })
        .collect();
    let ckpt = Checkpoint {
        workload: rc.store.workload().to_string(),
        mode: rc.mode.to_string(),
        workers: rc.workers,
        seq: rc.seq,
        stem_len: rc.stem_len,
        counters,
        shard_hashes,
        next: CkptNext {
            prefix: next.0.to_vec(),
            sleep: next.1,
            new_from: next.2,
        },
        spine: ckpt_spine,
    };
    rc.seq += 1;
    rc.replays_since = 0;
    match rc.writer {
        Some(writer) => {
            let text = ckpt.render();
            if durable {
                writer.publish_durable(text);
            } else {
                writer.publish(text);
            }
        }
        None => {
            if let Err(e) = rc.store.save(&ckpt, rc.fault) {
                panic!("checkpoint write failed (fail-closed): {e}");
            }
        }
    }
}

/// Rebuilds the root spine (and republishes its delegated tasks onto
/// `deques[me]`) from a loaded checkpoint. No replay runs here: the
/// wire format carries every configuration field race detection needs
/// structurally (`runnable`/`pending`/sleep/backtrack/wakeups), and the
/// execution metadata + vector clocks are recomputed by the first
/// counted replay exactly as the interrupted run would have refreshed
/// them — so the resumed DAG shards see no extra transcript.
fn restore_spine<NF, F>(
    shared: &DporShared<'_, NF, F>,
    me: usize,
    ckpt: &Checkpoint,
) -> Vec<SpineNode> {
    let live_access = |a: &CkptAccess| PendingAccess {
        reg: RegId(a.reg),
        kind: a.kind,
    };
    ckpt.spine
        .iter()
        .map(|node| {
            let pending: Vec<PendingAccess> = node.pending.iter().map(live_access).collect();
            // Ghost prefix nodes have empty `runnable`; their access is
            // unknowable here, but also never consulted (the first
            // replay's exec pass refreshes every node's meta).
            let access = node
                .runnable
                .iter()
                .position(|&p| p == node.chosen)
                .map(|i| pending[i])
                .unwrap_or(PendingAccess::LOCAL);
            let delegated = node
                .tasks
                .iter()
                .map(|t| {
                    let spec = SubtreeTask {
                        prefix: t.prefix.clone(),
                        accesses: t
                            .accesses
                            .iter()
                            .map(|a| StepMeta::unknown(live_access(a)))
                            .collect(),
                        clocks: Vec::new(),
                        sleep: t.sleep,
                        floor: t.floor,
                    };
                    let slot = Arc::new(TaskSlot::new(spec));
                    shared.deques[me]
                        .lock()
                        .unwrap()
                        .push_back(Arc::clone(&slot));
                    shared.queued.fetch_add(1, Ordering::Relaxed);
                    (t.proc, slot)
                })
                .collect();
            SpineNode {
                runnable: node.runnable.clone(),
                pending,
                sleep_now: node.sleep,
                done: node.done,
                backtrack: node.backtrack.clone(),
                chosen: node.chosen,
                meta: StepMeta::unknown(access),
                delegated,
                wakeups: node
                    .wakeups
                    .iter()
                    .map(|seq| seq.iter().map(|(p, a)| (*p, live_access(a))).collect())
                    .collect(),
            }
        })
        .collect()
}

/// Body of a spawned DPOR worker: steal and execute subtree tasks until
/// the root exploration shuts the pool down.
fn worker_loop<C, NF, F>(shared: &DporShared<'_, NF, F>, me: usize)
where
    C: ReplayCtx,
    NF: Fn() -> C + Sync,
    F: Fn(&mut C, &mut ScheduleDriver) + Sync,
{
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut ctx = (shared.new_ctx)();
        let mut idle = 0u32;
        while !shared.shutdown.load(Ordering::SeqCst) {
            match shared.steal_task(me) {
                Some((slot, task)) => {
                    idle = 0;
                    execute_task(shared, me, 0, &mut ctx, task, &slot);
                }
                None => backoff(&mut idle),
            }
        }
    }));
    if let Err(payload) = result {
        shared.record_poison(payload);
    }
}

/// Runs one claimed task under the quarantine guard and publishes the
/// result on its slot.
fn execute_task<C, NF, F>(
    shared: &DporShared<'_, NF, F>,
    me: usize,
    help_depth: usize,
    ctx: &mut C,
    task: SubtreeTask,
    slot: &TaskSlot,
) where
    C: ReplayCtx,
    NF: Fn() -> C + Sync,
    F: Fn(&mut C, &mut ScheduleDriver) + Sync,
{
    let out = run_task_guarded(shared, me, help_depth, ctx, &task, None);
    slot.complete(out);
}

/// Retries on a panicking subtree before giving up on it.
const QUARANTINE_RETRIES: u32 = 2;
/// Deterministic backoff before retry attempt 2 and 3 (milliseconds).
const QUARANTINE_BACKOFF_MS: [u64; QUARANTINE_RETRIES as usize] = [1, 5];

/// Runs a subtree task inside its `subtree_begin`/`subtree_end` bracket
/// with **panic quarantine**: a panic out of the runner (an object bug,
/// a fail-closed `validate_race`, a scheduler assertion) is caught, the
/// task retried up to [`QUARANTINE_RETRIES`] times with deterministic
/// backoff, and on exhaustion quarantined into a [`PoisonReport`]
/// (written to `SL_POISON_DIR` when set) while the rest of the frontier
/// completes. The quarantined subtree's schedules stay unexplored, so
/// the outcome is marked partial — never a false PASS (see the
/// [`crate::checkpoint`] module docs).
///
/// Two panic classes are **re-raised**, not quarantined: injected
/// [`FaultCrash`]es (a fault-injection run must crash so the harness
/// can exercise recovery-by-resume) and panics observed after the pool
/// is poisoned (the abort is already propagating).
///
/// Every attempt gets its own subtree bracket, so a failed attempt's
/// partially-flushed DAG shard holds a strict subset of the retry's
/// transcripts — hash-consing dedupes them in the merged DAG.
fn run_task_guarded<C, NF, F>(
    shared: &DporShared<'_, NF, F>,
    me: usize,
    help_depth: usize,
    ctx: &mut C,
    spec: &SubtreeTask,
    mut root: Option<&mut RootCkpt<'_>>,
) -> TaskOutput
where
    C: ReplayCtx,
    NF: Fn() -> C + Sync,
    F: Fn(&mut C, &mut ScheduleDriver) + Sync,
{
    // Distributed dispatch: a delegated task may be farmed to a worker
    // process instead of running here. Delegated means published by
    // `publish_extras` — such tasks always carry at least their
    // candidate's ghost access, while the session root's `accesses` is
    // empty (checking `root` alone would not do: the checkpoint root
    // context is `None` in plain sessions, and farming the root would
    // ship the *entire* exploration to one single-threaded worker).
    // `None` from the dispatcher — no spawnable worker, every lease
    // revoked without a verdict — degrades gracefully to in-process
    // execution below. A returned result banks its replays against the
    // shared budget, exactly as the local replay loop would have
    // reserved them.
    if root.is_none() && !spec.accesses.is_empty() {
        if let Some(dispatcher) = shared.dispatcher {
            if let Some(plan) = shared.fault {
                plan.fire(FaultPoint::Dispatch);
            }
            if let Some(res) = dispatcher.dispatch(&WireTask::freeze(spec)) {
                shared
                    .replays
                    .fetch_add(res.runs + res.cut_runs, Ordering::SeqCst);
                return res.thaw();
            }
        }
    }
    // A root retry must restart from the same restore plan; `run_task`
    // consumes it, so keep a copy to reinstate between attempts.
    let restore_backup = root.as_ref().and_then(|rc| rc.restore.clone());
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        ctx.subtree_begin();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_task(
                shared,
                me,
                help_depth,
                ctx,
                spec.clone(),
                root.as_deref_mut(),
            )
        }));
        ctx.subtree_end();
        match result {
            Ok(mut out) => {
                out.retried += u64::from(attempts - 1);
                return out;
            }
            Err(payload) => {
                if payload.is::<FaultCrash>() || shared.poisoned.load(Ordering::SeqCst) {
                    std::panic::resume_unwind(payload);
                }
                if attempts > QUARANTINE_RETRIES {
                    let report = PoisonReport {
                        prefix: spec.prefix.clone(),
                        attempts,
                        message: panic_message(&*payload),
                    };
                    if let Some(dir) = &shared.poison_dir {
                        // Best-effort: the report also travels in the
                        // outcome, so a failed write loses nothing vital.
                        let _ = write_poison_report(dir, &report);
                    }
                    let mut out = TaskOutput {
                        retried: u64::from(attempts - 1),
                        quarantined: 1,
                        ..Default::default()
                    };
                    out.poisoned.push(report);
                    return out;
                }
                std::thread::sleep(std::time::Duration::from_millis(
                    QUARANTINE_BACKOFF_MS[(attempts - 1) as usize],
                ));
                if let Some(rc) = root.as_deref_mut() {
                    rc.restore = restore_backup.clone();
                }
            }
        }
    }
}

/// Blocks until `slot` is done, claiming it back (and running it on
/// this thread) if no thief took it, or helping with other queued tasks
/// while a thief finishes.
fn join_slot<C, NF, F>(
    shared: &DporShared<'_, NF, F>,
    me: usize,
    help_depth: usize,
    ctx: &mut C,
    slot: &Arc<TaskSlot>,
) -> TaskOutput
where
    C: ReplayCtx,
    NF: Fn() -> C + Sync,
    F: Fn(&mut C, &mut ScheduleDriver) + Sync,
{
    if let Some(task) = slot.claim() {
        shared.queued.fetch_sub(1, Ordering::Relaxed);
        // Never stolen: run it right here, exactly where the sequential
        // explorer would have.
        let out = run_task_guarded(shared, me, help_depth, ctx, &task, None);
        slot.state.store(TASK_DONE, Ordering::SeqCst);
        return out;
    }
    let mut idle = 0u32;
    loop {
        if slot.is_done() {
            return slot
                .output
                .lock()
                .unwrap()
                .take()
                .expect("done task has an output");
        }
        if shared.poisoned.load(Ordering::SeqCst) {
            panic!("source-DPOR exploration aborted: a worker's runner panicked");
        }
        // The thief is still working: make progress on other tasks
        // instead of spinning (bounded nesting keeps the stack sane).
        if help_depth < MAX_HELP_DEPTH {
            if let Some((other, task)) = shared.steal_task(me) {
                idle = 0;
                execute_task(shared, me, help_depth + 1, ctx, task, &other);
                continue;
            }
        }
        backoff(&mut idle);
    }
}

/// Idle wait: yield a few times, then sleep briefly — keeps oversubscribed
/// pools (more workers than cores) from starving the productive thread.
fn backoff(idle: &mut u32) {
    *idle += 1;
    if *idle < 64 {
        std::thread::yield_now();
    } else {
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
}

/// Explores one subtree to exhaustion (or budget cap): the sequential
/// wakeup-free source-set DPOR loop of PR 3, generalised with a ghost
/// prefix, escaping race demands, and sibling delegation.
fn run_task<C, NF, F>(
    shared: &DporShared<'_, NF, F>,
    me: usize,
    help_depth: usize,
    ctx: &mut C,
    task: SubtreeTask,
    mut root: Option<&mut RootCkpt<'_>>,
) -> TaskOutput
where
    C: ReplayCtx,
    NF: Fn() -> C + Sync,
    F: Fn(&mut C, &mut ScheduleDriver) + Sync,
{
    let floor = task.floor;
    let mut out = TaskOutput::default();
    let mut spine: Vec<SpineNode> = task
        .prefix
        .iter()
        .zip(&task.accesses)
        .map(|(&chosen, &meta)| SpineNode::ghost(chosen, meta))
        .collect();
    let mut clocks = task.clocks;
    // Each queued replay carries the decision index from which this
    // run's steps are *new* (its race-detection window): for a
    // delegated subtree the last ghost — the reversal itself — is new
    // (and a wakeup sequence's forced steps all lie beyond it); for the
    // root task it is 0, as in the sequential explorer. The zip above
    // truncates at `accesses` — a wakeup-sequence task's prefix is
    // longer, and the forced tail is observed on the first replay.
    let first_window = spine.len().saturating_sub(1);
    let mut next: Option<(Vec<usize>, u64, usize)> = Some((task.prefix, task.sleep, first_window));
    // Resuming: swap in the checkpointed frontier. Clocks restart empty
    // — they are a pure cache over the spine and the first counted
    // replay recomputes them (and every node's exec metadata)
    // deterministically, exactly as the interrupted run refreshed them.
    if let Some(rc) = root.as_deref_mut() {
        if let Some(ckpt) = rc.restore.take() {
            spine = restore_spine(shared, me, &ckpt);
            clocks = Vec::new();
            next = Some((ckpt.next.prefix, ckpt.next.sleep, ckpt.next.new_from));
        }
    }
    while let Some((prefix, sleep_at_record, new_from)) = next.take() {
        // Abort promptly when any worker's runner panicked: tasks are
        // deliberately coarse, so waiting for the subtree to finish
        // could mean millions of further replays before the panic
        // surfaces. The output is discarded on poison anyway.
        if shared.poisoned.load(Ordering::SeqCst) {
            panic!("source-DPOR exploration aborted: a worker's runner panicked");
        }
        // Resumable-session hooks, all at the replay boundary (the only
        // point where the frontier is fully materialised in the spine +
        // `next` + frozen delegated specs):
        //  * root: on budget expiry write a final checkpoint, raise the
        //    drain flag, and abandon this subtree *without joining the
        //    delegated tasks* — their outputs must not be folded in, or
        //    the checkpointed counters (which exclude them, since their
        //    specs re-run on resume) would diverge from the totals;
        //  * root: otherwise write a periodic checkpoint every
        //    `every_replays` replays;
        //  * non-root tasks: see the drain flag and abandon likewise.
        match root.as_deref_mut() {
            None => {
                if shared.draining.load(Ordering::SeqCst) {
                    out.drained = true;
                    return out;
                }
            }
            Some(rc) => {
                let spent = rc.base.runs + rc.base.cut_runs + (out.runs + out.cut_runs) as u64;
                let expired = rc.policy.max_schedules.is_some_and(|m| spent >= m)
                    || rc
                        .policy
                        .deadline
                        .is_some_and(|d| std::time::Instant::now() >= d);
                if expired {
                    write_root_checkpoint(
                        rc,
                        &spine,
                        (&prefix, sleep_at_record, new_from),
                        &out,
                        true,
                    );
                    shared.draining.store(true, Ordering::SeqCst);
                    out.drained = true;
                    return out;
                }
                if rc.policy.every_replays > 0 && rc.replays_since >= rc.policy.every_replays {
                    write_root_checkpoint(
                        rc,
                        &spine,
                        (&prefix, sleep_at_record, new_from),
                        &out,
                        false,
                    );
                }
                rc.replays_since += 1;
            }
        }
        // Reserve a replay against the global budget.
        if shared.replays.fetch_add(1, Ordering::SeqCst) >= shared.max_runs {
            shared.replays.fetch_sub(1, Ordering::SeqCst);
            out.capped = true;
            drain_delegated(shared, me, help_depth, ctx, &mut spine, floor, &mut out);
            return out;
        }
        let mut driver = ScheduleDriver::dpor(prefix, sleep_at_record, spine.len());
        (shared.runner)(ctx, &mut driver);
        if driver.cut {
            out.cut_runs += 1;
        } else {
            out.runs += 1;
        }
        out.pruned += driver.pruned;
        let DriverMode::Dpor { observed, exec, .. } = driver.mode else {
            unreachable!("DPOR explorer uses DPOR drivers");
        };
        // Extend the spine with this run's recorded decisions
        // (observed[0] is the decision at the current spine tip).
        for obs in observed {
            let chosen = driver.chosen[spine.len()];
            let access = obs
                .pending
                .get(
                    obs.runnable
                        .iter()
                        .position(|&p| p == chosen)
                        .unwrap_or(usize::MAX),
                )
                .copied()
                .unwrap_or(PendingAccess::LOCAL);
            spine.push(SpineNode {
                runnable: obs.runnable,
                pending: obs.pending,
                sleep_now: obs.sleep,
                done: 0,
                backtrack: vec![chosen],
                chosen,
                meta: StepMeta::unknown(access),
                delegated: Vec::new(),
                wakeups: VecDeque::new(),
            });
        }
        // Refresh execution metadata from this run's record before
        // detecting races: replays are deterministic, so replayed
        // prefix steps re-derive identical metadata; the backtracked
        // child and the fresh extension get their first real values
        // here (until now they carried the conservative unknown). The
        // observer flag is word-level, not per-step — preserve it
        // across the refresh, then recompute it below.
        for (node, em) in spine.iter_mut().zip(&exec) {
            let unobs_w = node.meta.exec.unobs_w;
            node.meta.exec = *em;
            node.meta.exec.unobs_w = unobs_w;
        }
        // Race detection: only pairs whose later step is new this run
        // (pairs entirely inside the replayed prefix were handled when
        // that prefix first ran). Observer status is suffix-dependent:
        // when the new suffix flips a prefix step's flag, the cached
        // clocks and race conclusions from that index on are stale, so
        // the window is lowered to the first change (re-detected
        // demands are deduplicated by `apply_escape`).
        let mut first_new = new_from;
        if shared.optimal {
            first_new = first_new.min(refresh_observer_flags(&mut spine));
        }
        add_race_reversals(
            &mut spine,
            &mut clocks,
            first_new,
            floor,
            shared.hard_stem,
            shared.value_aware,
            shared.optimal,
            shared.statics,
            &mut out.escapes,
        );
        // Backtrack: retire finished children bottom-up until a
        // decision point with an unexplored backtrack candidate is
        // found, then descend into it.
        loop {
            if spine.len() <= floor {
                return out;
            }
            let d = spine.len() - 1;
            {
                let node = &mut spine[d];
                node.done |= 1 << node.chosen;
                node.sleep_now |= 1 << node.chosen;
            }
            // Join delegated siblings before scanning for further
            // candidates: their escapes merge exactly where the
            // sequential explorer would have applied them.
            join_delegated(shared, me, help_depth, ctx, &mut spine, d, floor, &mut out);
            // Optimal mode explores pending wakeup sequences first
            // (FIFO — insertion order is what the bit-identity argument
            // keys on); a sequence whose initial has been explored or
            // put to sleep since insertion is covered and dropped. The
            // wakeup-free scan below remains the fallback (and the only
            // source of candidates outside optimal mode).
            let mut descend: Option<(usize, WakeupSeq)> = None;
            if shared.optimal {
                while let Some(seq) = spine[d].wakeups.pop_front() {
                    let q = seq[0].0;
                    if spine[d].done & (1 << q) != 0
                        || spine[d].sleep_now & (1 << q) != 0
                        || !seq_wakes_all(&spine[d], spine[d].sleep_now, &seq)
                    {
                        continue;
                    }
                    descend = Some((q, seq));
                    break;
                }
            }
            if descend.is_none() {
                let node = &spine[d];
                descend = node
                    .backtrack
                    .iter()
                    .copied()
                    .find(|&q| {
                        node.done & (1 << q) == 0
                            && node.sleep_now & (1 << q) == 0
                            // Optimal mode: a backtrack entry whose wakeup
                            // sequence was dropped is only reachable here;
                            // its single step wakes no more sleepers than
                            // the dropped sequence did, so the same side
                            // condition applies.
                            && (!shared.optimal
                                || seq_wakes_all(
                                    node,
                                    node.sleep_now,
                                    &[(q, node.pending_of(q))],
                                ))
                    })
                    .map(|q| (q, vec![(q, node.pending_of(q))]));
            }
            if let Some((q, seq)) = descend {
                let (access, sleep_child) = {
                    let node = &spine[d];
                    let access = node.pending_of(q);
                    (
                        access,
                        filter_independent(node.sleep_now, access, &node.runnable, &node.pending),
                    )
                };
                publish_extras(shared, me, &mut spine, d, q, &clocks);
                let node = &mut spine[d];
                node.chosen = q;
                node.meta = StepMeta::unknown(access);
                let mut prefix: Vec<usize> = spine.iter().map(|n| n.chosen).collect();
                // The sequence's remaining steps ride as forced replay
                // decisions past the spine tip; the driver records them
                // (and threads the sleep set through them) because
                // `record_from` stays at the tip.
                prefix.extend(seq[1..].iter().map(|&(p, _)| p));
                next = Some((prefix, sleep_child, d));
                break;
            }
            let node = &spine[d];
            out.pruned += (node.runnable.len() as u64) - u64::from(node.done.count_ones());
            debug_assert!(node.delegated.is_empty(), "popping a node with open joins");
            spine.pop();
        }
    }
    unreachable!("the DPOR task loop exits via its returns")
}

/// Publishes every further eligible backtrack candidate of `spine[d]`
/// (beyond the owner's own continuation `q`) as a frozen subtree task,
/// accumulating the sleep set in the same order the sequential
/// candidate scan would have — delegated or not, each candidate is
/// explored with identical inputs. In optimal mode the candidates are
/// the node's pending wakeup sequences (in queue order — the same order
/// the sequential selection pops them); each frozen task carries its
/// sequence in the decision prefix beyond the ghost accesses, the same
/// way it carries its sleep set.
fn publish_extras<NF, F>(
    shared: &DporShared<'_, NF, F>,
    me: usize,
    spine: &mut [SpineNode],
    d: usize,
    q: usize,
    clocks: &[Vec<u32>],
) {
    if shared.deques.len() <= 1 {
        return; // sequential exploration: candidates stay on the spine
    }
    // Starvation-driven splitting: publish only while the backlog is
    // short of one task per worker. Most backtrack visits are
    // leaf-adjacent, and publishing there would shatter the tree into
    // thousands of tiny tasks — all prefix-replay and shard overhead,
    // no parallelism gain.
    let backlog_cap = shared.deques.len();
    let mut sleep_acc = spine[d].sleep_now | (1 << q);
    let mut done_acc = spine[d].done | (1 << q);
    let mut published: Vec<(usize, Arc<TaskSlot>)> = Vec::new();
    let publish_one = |spine: &mut [SpineNode],
                       published: &mut Vec<(usize, Arc<TaskSlot>)>,
                       sleep_acc: &mut u64,
                       done_acc: &mut u64,
                       seq: WakeupSeq| {
        if let Some(plan) = shared.fault {
            plan.fire(FaultPoint::TaskFreeze);
        }
        let e = seq[0].0;
        let access_e = spine[d].pending_of(e);
        let sleep_e =
            filter_independent(*sleep_acc, access_e, &spine[d].runnable, &spine[d].pending);
        let mut prefix: Vec<usize> = spine[..d].iter().map(|n| n.chosen).collect();
        prefix.extend(seq.iter().map(|&(p, _)| p));
        let mut accesses: Vec<StepMeta> = spine[..d].iter().map(|n| n.meta).collect();
        // The candidate's own step has not executed in this ordering
        // yet; the task's first replay fills its execution metadata in.
        // A sequence's further forced steps stay prefix-only (beyond
        // the ghost spine) and are observed on the first replay.
        accesses.push(StepMeta::unknown(access_e));
        debug_assert!(clocks.len() >= d, "prefix clocks cached up to the tip");
        let task = SubtreeTask {
            floor: accesses.len(),
            prefix,
            accesses,
            clocks: clocks[..d].to_vec(),
            sleep: sleep_e,
        };
        let slot = Arc::new(TaskSlot::new(task));
        shared.deques[me]
            .lock()
            .unwrap()
            .push_back(Arc::clone(&slot));
        shared.queued.fetch_add(1, Ordering::Relaxed);
        published.push((e, slot));
        spine[d].done |= 1 << e;
        *done_acc |= 1 << e;
        *sleep_acc |= 1 << e;
    };
    if shared.optimal {
        while shared.queued.load(Ordering::Relaxed) < backlog_cap {
            let Some(seq) = spine[d].wakeups.pop_front() else {
                break;
            };
            let e = seq[0].0;
            if done_acc & (1 << e) != 0
                || sleep_acc & (1 << e) != 0
                || !seq_wakes_all(&spine[d], sleep_acc, &seq)
            {
                // Covered — dropped exactly as the sequential selection
                // would drop it (the accumulators mirror the sleep set
                // the sequential pop would see at its turn).
                continue;
            }
            publish_one(spine, &mut published, &mut sleep_acc, &mut done_acc, seq);
        }
    } else {
        for i in 0..spine[d].backtrack.len() {
            if shared.queued.load(Ordering::Relaxed) >= backlog_cap {
                break;
            }
            let e = spine[d].backtrack[i];
            if done_acc & (1 << e) != 0 || sleep_acc & (1 << e) != 0 {
                // Explored, delegated, or permanently sleep-blocked (sleep
                // sets only grow, so a blocked candidate stays blocked).
                continue;
            }
            let access = spine[d].pending_of(e);
            publish_one(
                spine,
                &mut published,
                &mut sleep_acc,
                &mut done_acc,
                vec![(e, access)],
            );
        }
    }
    spine[d].delegated.extend(published);
}

/// Joins every delegated sibling of `spine[d]` in publish order,
/// merging counters and escapes: demands at or above this task's floor
/// apply to the live spine, deeper-escaping demands bubble up.
#[allow(clippy::too_many_arguments)]
fn join_delegated<C, NF, F>(
    shared: &DporShared<'_, NF, F>,
    me: usize,
    help_depth: usize,
    ctx: &mut C,
    spine: &mut [SpineNode],
    d: usize,
    floor: usize,
    out: &mut TaskOutput,
) where
    C: ReplayCtx,
    NF: Fn() -> C + Sync,
    F: Fn(&mut C, &mut ScheduleDriver) + Sync,
{
    if spine[d].delegated.is_empty() {
        return;
    }
    let delegated = std::mem::take(&mut spine[d].delegated);
    for (proc, slot) in delegated {
        if let Some(plan) = shared.fault {
            plan.fire(FaultPoint::JoinMerge);
        }
        let res = join_slot(shared, me, help_depth, ctx, &slot);
        out.runs += res.runs;
        out.cut_runs += res.cut_runs;
        out.pruned += res.pruned;
        out.capped |= res.capped;
        out.retried += res.retried;
        out.quarantined += res.quarantined;
        out.drained |= res.drained;
        out.poisoned.extend(res.poisoned);
        for esc in res.escapes {
            if esc.depth >= floor {
                apply_escape(&mut spine[esc.depth], esc);
            } else {
                out.escapes.push(esc);
            }
        }
        let node = &mut spine[d];
        node.done |= 1 << proc;
        node.sleep_now |= 1 << proc;
    }
}

/// On a budget cap the task unwinds early; its delegated subtrees still
/// need joining (their workers observe the cap and finish quickly) so
/// the totals stay consistent and no slot is orphaned.
fn drain_delegated<C, NF, F>(
    shared: &DporShared<'_, NF, F>,
    me: usize,
    help_depth: usize,
    ctx: &mut C,
    spine: &mut [SpineNode],
    floor: usize,
    out: &mut TaskOutput,
) where
    C: ReplayCtx,
    NF: Fn() -> C + Sync,
    F: Fn(&mut C, &mut ScheduleDriver) + Sync,
{
    for d in (0..spine.len()).rev() {
        if spine[d].delegated.is_empty() {
            continue;
        }
        join_delegated(shared, me, help_depth, ctx, spine, d, floor, out);
    }
}

/// Applies one escaped backtrack demand to its decision node, identical
/// to the in-task application in [`add_race_reversals`]. Wakeup-free
/// modes use the source-set rule (add the first process unless a weak
/// initial is already planned). [`PruneMode::OptimalDpor`] demands
/// carry the full reversing continuation and additionally skip the
/// insertion when a weak initial is *sleeping* at the node — the
/// reversal's trace was explored in the subtree that put that process
/// to sleep — so no enqueued sequence ever initiates a sleep-set-blocked
/// run.
fn apply_escape(node: &mut SpineNode, esc: Escape) {
    if esc.initials.iter().any(|p| node.backtrack.contains(p)) {
        return;
    }
    debug_assert!(esc.initials.contains(&esc.first_proc));
    if let Some(seq) = esc.seq {
        if esc.initials.iter().any(|&p| node.sleep_now & (1 << p) != 0) {
            return;
        }
        debug_assert_eq!(seq[0].0, esc.first_proc);
        node.backtrack.push(esc.first_proc);
        node.wakeups.push_back(seq);
    } else {
        node.backtrack.push(esc.first_proc);
    }
}

/// Detects races in the executed word `spine` and extends the
/// backtrack (source) sets of the racing decision points.
///
/// Happens-before is computed with vector clocks over the dependence
/// relation `!PendingAccess::independent` (program order + conflicting
/// accesses). A pair `(j, k)` races when the steps are dependent, by
/// different processes, and `j` does not happen-before `k` through any
/// intermediate step — i.e. the two could have been adjacent. For each
/// race, the wakeup-free source-set rule applies: if no *weak initial*
/// of the reversing continuation is already in `backtrack(j)`, the
/// process of the first reversing step is added.
///
/// Demands at depths below `apply_floor` cannot be applied here (those
/// nodes are ghosts owned by a parent task): they are recorded in
/// `escapes` in detection order, except below `hard_stem` (the
/// user-supplied stem, which is never backtracked into at all).
///
/// `value_aware` and `statics` select the independence relation for
/// both the vector clocks and the race test (they must agree):
/// syntactic ([`PendingAccess::independent`]), value-aware, or
/// value-aware plus the static placement relaxation
/// ([`step_independent`]).
///
/// When `statics` is present, every dependent concurrent data/data
/// pair is additionally **validated** against the certificate's
/// may-conflict matrix: a dynamically observed race on a register the
/// matrix does not predict racy aborts the exploration with a
/// diagnostic (fail closed — see [`StaticConflicts`]).
#[allow(clippy::too_many_arguments)]
fn add_race_reversals(
    spine: &mut [SpineNode],
    clocks: &mut Vec<Vec<u32>>,
    first_new: usize,
    apply_floor: usize,
    hard_stem: usize,
    value_aware: bool,
    optimal: bool,
    statics: Option<&StaticConflicts>,
    escapes: &mut Vec<Escape>,
) {
    let len = spine.len();
    if len == 0 {
        clocks.clear();
        return;
    }
    // Ghost nodes have empty `runnable`; their `chosen` still bounds
    // the process universe.
    let nprocs = spine
        .iter()
        .flat_map(|n| n.runnable.iter().copied())
        .chain(spine.iter().map(|n| n.chosen))
        .max()
        .unwrap_or(0)
        + 1;
    // Clocks of the replayed prefix are cached across runs (the prefix
    // steps are identical replay to replay); recompute only from the
    // first decision that changed. The width check guards the first
    // runs, before the process universe is fully observed.
    let mut start = first_new.min(clocks.len());
    if clocks[..start].iter().any(|c| c.len() != nprocs) {
        start = 0;
    }
    clocks.truncate(start);
    let mut proc_clock: Vec<Vec<u32>> = vec![vec![0u32; nprocs]; nprocs];
    {
        // Rebuild each process's last-step clock from the cached
        // prefix: backward scan, one clone per process.
        let mut filled = vec![false; nprocs];
        for i in (0..start).rev() {
            let p = spine[i].chosen;
            if !filled[p] {
                filled[p] = true;
                proc_clock[p] = clocks[i].clone();
                if filled.iter().all(|&f| f) {
                    break;
                }
            }
        }
    }
    // (decision index j, process to add if no initial is present yet,
    //  weak initials of the reversing continuation, the continuation
    //  itself as a wakeup sequence in optimal mode)
    let mut additions: Vec<(usize, usize, Vec<usize>, Option<WakeupSeq>)> = Vec::new();
    for k in start..len {
        let (p, a) = (spine[k].chosen, spine[k].meta);
        let mut base = proc_clock[p].clone();
        let mut races: Vec<usize> = Vec::new();
        for j in (0..k).rev() {
            let (q, b) = (spine[j].chosen, spine[j].meta);
            if step_independent(&a, &b, value_aware, optimal, statics) {
                continue;
            }
            if !clock_leq(&clocks[j], &base) {
                // Not yet happens-before `k` through closer steps: this
                // is an immediate race (when by another process).
                if q != p {
                    if let Some(st) = statics {
                        validate_race(st, &a, &b);
                    }
                    if k >= first_new && j >= hard_stem {
                        races.push(j);
                    }
                }
                for (x, y) in base.iter_mut().zip(&clocks[j]) {
                    *x = (*x).max(*y);
                }
            }
        }
        base[p] += 1;
        clocks.push(base);
        proc_clock[p] = clocks[k].clone();
        for &j in &races {
            // The reversing continuation: every step between `j` and
            // `k` not happens-after `j`, then `k`'s process.
            let v: Vec<usize> = (j + 1..k)
                .filter(|&m| !clock_leq(&clocks[j], &clocks[m]))
                .chain([k])
                .collect();
            // Weak initials: processes whose first step in `v` is not
            // happens-after any earlier step of `v`.
            let mut seen: Vec<usize> = Vec::new();
            let mut initials: Vec<usize> = Vec::new();
            for (mi, &m) in v.iter().enumerate() {
                let pm = spine[m].chosen;
                if seen.contains(&pm) {
                    continue;
                }
                seen.push(pm);
                if v[..mi].iter().all(|&l| !clock_leq(&clocks[l], &clocks[m])) {
                    initials.push(pm);
                }
            }
            // In optimal mode the whole continuation is the demand: its
            // steps' processes, in word order, form the wakeup
            // sequence (every step of `v` is a step some explored word
            // actually executed from this node on).
            let seq = optimal.then(|| {
                v.iter()
                    .map(|&m| (spine[m].chosen, spine[m].meta.access))
                    .collect::<WakeupSeq>()
            });
            additions.push((j, spine[v[0]].chosen, initials, seq));
        }
    }
    for (j, first_proc, initials, seq) in additions {
        if j >= apply_floor {
            apply_escape(
                &mut spine[j],
                Escape {
                    depth: j,
                    first_proc,
                    initials,
                    seq,
                },
            );
        } else {
            escapes.push(Escape {
                depth: j,
                first_proc,
                initials,
                seq,
            });
        }
    }
}

/// Fail-closed check of one dynamically detected race against the
/// static may-conflict matrix. Placement conflicts (a `Local` step on
/// either side) are inherent to scheduling and not part of the data
/// matrix; races whose registers are unknown (untraced runs) cannot be
/// attributed and are counted, not validated. Everything else must be
/// predicted — an unpredicted race means the static analysis missed a
/// real conflict, and silently continuing would let it license unsound
/// pruning elsewhere, so the exploration aborts.
///
/// Attribution is two-tier, mirroring the licensing side: when both
/// steps carry known op identities, the race is first attributed to the
/// op-pair cell of the version-2 matrix (the cell whose evidence
/// licensed any per-op-pair relaxation of this pair); the per-register
/// racy partition remains the fallback for unprobed pairs and unknown
/// ops. A race the pair cell predicts counts as validated even if the
/// per-register partition would too — the diagnostics of an
/// *unpredicted* race name the op pair, so a missed concurrent-probe
/// path is reported as such.
fn validate_race(st: &StaticConflicts, a: &StepMeta, b: &StepMeta) {
    if a.access.is_local() || b.access.is_local() {
        return;
    }
    let (ra, rb) = (a.exec.reg, b.exec.reg);
    if ra == RegSym::LOCAL || rb == RegSym::LOCAL {
        st.note_unattributed();
        return;
    }
    let (oa, ob) = (a.exec.op, b.exec.op);
    st.note_race(oa, ob, ra);
    if st.pair_predicts(oa, ob, ra) == Some(true) || st.pair_predicts(oa, ob, rb) == Some(true) {
        st.note_validated();
        return;
    }
    if st.racy(ra) || st.racy(rb) {
        st.note_validated();
        return;
    }
    panic!(
        "static conflict matrix failed closed: dynamic {:?}/{:?} race on {} \
         (op pair {:?}/{:?}) is not predicted by the certificate — the \
         sl-analyze footprint probe missed a conflicting access path; \
         regenerate the certificate or fall back to PruneMode::ValueDpor",
        a.access.kind,
        b.access.kind,
        st.describe(ra),
        oa,
        ob,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scripted, SimWorld};
    use sl_mem::{Mem, Register};

    /// Two processes, one register write each: the schedule space has
    /// exactly 2 decision points with 2, then 1 choices ⇒ 2 schedules.
    fn run_two_writers(script: &[usize]) -> RunOutcome {
        let world = SimWorld::new(2);
        let mem = world.mem();
        let reg = mem.alloc("X", 0u64);
        let r0 = reg.clone();
        let r1 = reg;
        let mut sched = Scripted::new(script.to_vec());
        world.run(
            vec![
                Box::new(move |_| r0.write(1)),
                Box::new(move |_| r1.write(2)),
            ],
            &mut sched,
            100,
        )
    }

    #[test]
    fn env_workers_accepts_literal_counts_and_zero_for_all_cores() {
        assert_eq!(env_workers_of("1"), 1);
        assert_eq!(env_workers_of(" 8 "), 8);
        assert_eq!(
            env_workers_of(&MAX_ENV_WORKERS.to_string()),
            MAX_ENV_WORKERS
        );
        assert!(env_workers_of("0") >= 1, "0 = one per available CPU");
    }

    #[test]
    fn env_workers_rejects_malformed_and_absurd_values_with_named_diagnostics() {
        for (value, needle) in [
            ("banana", "not a worker count"),
            ("-2", "not a worker count"),
            ("3.5", "not a worker count"),
            ("", "not a worker count"),
            ("1025", "workers is absurd"),
            ("86400000", "workers is absurd"),
        ] {
            let caught = std::panic::catch_unwind(|| env_workers_of(value))
                .expect_err(&format!("{value:?} must be rejected"));
            let msg = crate::checkpoint::panic_message(&*caught);
            assert!(
                msg.starts_with("SL_EXPLORE_THREADS:") && msg.contains(needle),
                "diagnostic for {value:?} must name the variable and the reason: {msg}"
            );
        }
    }

    #[test]
    fn explores_all_interleavings_of_two_single_step_programs() {
        let mut finals = Vec::new();
        let outcome = explore(run_two_writers, 100, |_script, run| {
            let last = run.steps().last().unwrap().value().render();
            finals.push(last);
        });
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 2);
        finals.sort();
        assert_eq!(finals, vec!["1".to_string(), "2".to_string()]);
    }

    #[test]
    fn respects_run_budget() {
        let outcome = explore(run_two_writers, 1, |_, _| {});
        assert_eq!(outcome.runs, 1);
        assert!(!outcome.exhausted);
    }

    /// Three single-step processes ⇒ 3! = 6 schedules.
    #[test]
    fn counts_schedules_of_three_writers() {
        let run = |script: &[usize]| {
            let world = SimWorld::new(3);
            let mem = world.mem();
            let reg = mem.alloc("X", 0u64);
            let handles: Vec<_> = (0..3).map(|_| reg.clone()).collect();
            let mut sched = Scripted::new(script.to_vec());
            let programs: Vec<crate::Program> = handles
                .into_iter()
                .enumerate()
                .map(|(i, r)| Box::new(move |_| r.write(i as u64)) as crate::Program)
                .collect();
            world.run(programs, &mut sched, 100)
        };
        let outcome = explore(run, 1000, |_, _| {});
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 6);
    }

    /// Driver-based runner over `n` writers to one shared or `n`
    /// distinct registers.
    fn writers_runner(
        n: usize,
        distinct: bool,
    ) -> impl Fn(&mut ScheduleDriver) -> RunOutcome + Sync {
        move |driver: &mut ScheduleDriver| {
            let world = SimWorld::new(n);
            let mem = world.mem();
            let shared = mem.alloc("X", 0u64);
            let programs: Vec<crate::Program> = (0..n)
                .map(|i| {
                    let r = if distinct {
                        mem.alloc(&format!("R{i}"), 0u64)
                    } else {
                        shared.clone()
                    };
                    Box::new(move |_| r.write(i as u64)) as crate::Program
                })
                .collect();
            world.run(programs, driver, 100)
        }
    }

    /// A bushier racy workload for the parallel differential tests:
    /// `n` processes, each writing the shared register and its own.
    fn mixed_runner(n: usize) -> impl Fn(&mut ScheduleDriver) -> RunOutcome + Sync {
        move |driver: &mut ScheduleDriver| {
            let world = SimWorld::new(n);
            let mem = world.mem();
            let shared = mem.alloc("X", 0u64);
            let programs: Vec<crate::Program> = (0..n)
                .map(|i| {
                    let s = shared.clone();
                    let own = mem.alloc(&format!("R{i}"), 0u64);
                    Box::new(move |_| {
                        s.write(i as u64);
                        own.write(1);
                        let v = s.read();
                        own.write(v);
                    }) as crate::Program
                })
                .collect();
            world.run(programs, driver, 1_000)
        }
    }

    #[test]
    fn driver_explorer_matches_legacy_count_without_pruning() {
        let explorer = Explorer {
            mode: PruneMode::Unpruned,
            ..Explorer::default()
        };
        let outcome = explorer.explore(writers_runner(3, false));
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 6);
        assert_eq!(outcome.pruned, 0);
    }

    #[test]
    fn sleep_sets_collapse_commuting_writers_to_one_schedule() {
        // Three writers to three *distinct* registers: all 6
        // interleavings are equivalent, so sleep sets leave one.
        let explorer = Explorer {
            mode: PruneMode::SleepSet,
            ..Explorer::default()
        };
        let outcome = explorer.explore(writers_runner(3, true));
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 1, "all interleavings commute");
        assert!(outcome.pruned > 0);
    }

    #[test]
    fn dispatched_exploration_matches_local_counters_and_degrades_on_decline() {
        let base = Explorer::default().explore(mixed_runner(3));
        assert!(base.exhausted);

        // Round-trips every delegated task through the portable wire
        // form and explores it with `explore_frozen_task`, exactly as a
        // worker process behind `sl-dist` would.
        struct Loopback {
            hits: AtomicUsize,
        }
        impl TaskDispatcher for Loopback {
            fn dispatch(&self, task: &WireTask) -> Option<WireTaskResult> {
                self.hits.fetch_add(1, Ordering::SeqCst);
                let run = mixed_runner(3);
                Some(Explorer::default().explore_frozen_task(
                    || (),
                    move |_: &mut (), d: &mut ScheduleDriver| {
                        let _ = run(d);
                    },
                    task,
                ))
            }
        }
        let loopback = Loopback {
            hits: AtomicUsize::new(0),
        };
        let explorer = Explorer {
            workers: 4,
            ..Explorer::default()
        };
        let run = mixed_runner(3);
        let out = explorer.explore_dispatched(
            || (),
            |_: &mut (), d: &mut ScheduleDriver| {
                let _ = run(d);
            },
            &loopback,
        );
        assert!(out.exhausted);
        assert_eq!(
            (out.runs, out.cut_runs, out.pruned),
            (base.runs, base.cut_runs, base.pruned),
            "dispatched exploration must be bit-identical to sequential"
        );
        assert!(
            loopback.hits.load(Ordering::SeqCst) > 0,
            "the dispatcher saw delegated work"
        );

        // A dispatcher that always declines: pure in-process
        // degradation, still bit-identical.
        struct Decline;
        impl TaskDispatcher for Decline {
            fn dispatch(&self, _: &WireTask) -> Option<WireTaskResult> {
                None
            }
        }
        let run = mixed_runner(3);
        let out = explorer.explore_dispatched(
            || (),
            |_: &mut (), d: &mut ScheduleDriver| {
                let _ = run(d);
            },
            &Decline,
        );
        assert!(out.exhausted);
        assert_eq!(
            (out.runs, out.cut_runs, out.pruned),
            (base.runs, base.cut_runs, base.pruned),
            "a declining dispatcher degrades to plain in-process exploration"
        );
    }

    #[test]
    fn dpor_collapses_commuting_writers_to_one_schedule() {
        let explorer = Explorer::default();
        assert_eq!(explorer.mode, PruneMode::ValueDpor);
        for mode in [
            PruneMode::SourceDpor,
            PruneMode::ValueDpor,
            PruneMode::OptimalDpor,
        ] {
            let explorer = Explorer {
                mode,
                ..Explorer::default()
            };
            let outcome = explorer.explore(writers_runner(3, true));
            assert!(outcome.exhausted, "{mode:?}");
            assert_eq!(outcome.runs, 1, "no races ⇒ a single schedule ({mode:?})");
            assert_eq!(outcome.cut_runs, 0, "DPOR does not even replay-and-cut");
            assert!(outcome.pruned > 0, "unexplored enabled children counted");
        }
    }

    #[test]
    fn pruning_keeps_all_conflicting_interleavings() {
        // Same register, distinct written values: nothing commutes
        // (value-aware or not), all 6 traces remain, in every mode.
        for mode in [
            PruneMode::Unpruned,
            PruneMode::SleepSet,
            PruneMode::SourceDpor,
            PruneMode::ValueDpor,
        ] {
            let explorer = Explorer {
                mode,
                ..Explorer::default()
            };
            let outcome = explorer.explore(writers_runner(3, false));
            assert!(outcome.exhausted, "{mode:?}");
            assert_eq!(outcome.runs, 6, "{mode:?} must keep all 6 traces");
        }
    }

    /// Mixed workload: two same-register writers (a real race) plus one
    /// independent writer. 3! = 6 interleavings, but only the order of
    /// the two racing writers matters ⇒ 2 Mazurkiewicz traces. DPOR
    /// must explore exactly one schedule per trace.
    #[test]
    fn dpor_explores_one_schedule_per_trace() {
        let runner = move |driver: &mut ScheduleDriver| {
            let world = SimWorld::new(3);
            let mem = world.mem();
            let shared = mem.alloc("X", 0u64);
            let lone = mem.alloc("Y", 0u64);
            let s0 = shared.clone();
            let s1 = shared;
            let programs: Vec<crate::Program> = vec![
                Box::new(move |_| s0.write(1)),
                Box::new(move |_| s1.write(2)),
                Box::new(move |_| lone.write(3)),
            ];
            world.run(programs, driver, 100)
        };
        let explorer = Explorer::default();
        let outcome = explorer.explore(runner);
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 2, "one schedule per Mazurkiewicz trace");
    }

    #[test]
    fn parallel_exploration_visits_the_same_schedules() {
        use std::collections::BTreeSet;
        let runner = writers_runner(3, false);
        let seq_scripts = Mutex::new(BTreeSet::new());
        let explorer = Explorer {
            mode: PruneMode::Unpruned,
            ..Explorer::default()
        };
        let out = explorer.explore(|d| {
            let o = runner(d);
            seq_scripts.lock().unwrap().insert(o.script());
            o
        });
        assert!(out.exhausted);
        let par_scripts = Mutex::new(BTreeSet::new());
        let explorer = Explorer {
            mode: PruneMode::Unpruned,
            workers: 3,
            ..Explorer::default()
        };
        let out = explorer.explore(|d| {
            let o = runner(d);
            par_scripts.lock().unwrap().insert(o.script());
            o
        });
        assert!(out.exhausted);
        assert_eq!(out.runs, 6);
        assert_eq!(
            seq_scripts.into_inner().unwrap(),
            par_scripts.into_inner().unwrap()
        );
    }

    /// The headline determinism guarantee of the partitioned DPOR
    /// explorer: at any worker count, runs, cut replays, pruned totals,
    /// and the set of explored schedules are bit-identical to the
    /// sequential exploration.
    #[test]
    fn parallel_dpor_is_bit_identical_to_sequential() {
        use std::collections::BTreeSet;
        for (n, mode) in [
            (3, PruneMode::SourceDpor),
            (4, PruneMode::SourceDpor),
            (3, PruneMode::ValueDpor),
            (4, PruneMode::ValueDpor),
            (3, PruneMode::OptimalDpor),
            (4, PruneMode::OptimalDpor),
        ] {
            let explore_at = |workers: usize| {
                let runner = mixed_runner(n);
                let scripts = Mutex::new(BTreeSet::new());
                let explorer = Explorer {
                    mode,
                    workers,
                    ..Explorer::default()
                };
                let out = explorer.explore(|d| {
                    let o = runner(d);
                    if !d.was_cut() {
                        scripts.lock().unwrap().insert(o.script());
                    }
                    o
                });
                assert!(out.exhausted, "{n} procs at {workers} workers");
                (out, scripts.into_inner().unwrap())
            };
            let (seq, seq_scripts) = explore_at(1);
            for workers in [2, 4, 8] {
                let (par, par_scripts) = explore_at(workers);
                assert_eq!(seq, par, "{n} procs: outcome diverged at {workers} workers");
                assert_eq!(
                    seq_scripts, par_scripts,
                    "{n} procs: schedule set diverged at {workers} workers"
                );
            }
        }
    }

    /// Parallel DPOR with a stem: same restriction, same counts.
    #[test]
    fn parallel_dpor_respects_the_stem() {
        let explore_at = |workers: usize| {
            let explorer = Explorer {
                mode: PruneMode::SourceDpor,
                workers,
                stem: vec![2],
                ..Explorer::default()
            };
            let runner = mixed_runner(3);
            let scripts = Mutex::new(Vec::new());
            let out = explorer.explore(|d| {
                let o = runner(d);
                scripts.lock().unwrap().push(o.script());
                o
            });
            for s in scripts.into_inner().unwrap() {
                assert_eq!(s[0], 2, "every schedule extends the stem");
            }
            out
        };
        let seq = explore_at(1);
        assert!(seq.exhausted);
        assert_eq!(seq, explore_at(4));
    }

    /// Every mode visits the same set of final memory states (the
    /// verdict-relevant abstraction of the schedule space) on a racy
    /// workload.
    #[test]
    fn all_modes_cover_the_same_final_states() {
        use std::collections::BTreeSet;
        let finals_for = |mode: PruneMode| {
            let finals = Mutex::new(BTreeSet::new());
            let explorer = Explorer {
                mode,
                ..Explorer::default()
            };
            let runner = writers_runner(3, false);
            let out = explorer.explore(|d| {
                let o = runner(d);
                if !d.was_cut() {
                    let last = o.steps().last().unwrap().value();
                    finals.lock().unwrap().insert(last);
                }
                o
            });
            assert!(out.exhausted, "{mode:?}");
            finals.into_inner().unwrap()
        };
        let unpruned = finals_for(PruneMode::Unpruned);
        assert_eq!(unpruned.len(), 3, "last write can be any of the three");
        assert_eq!(finals_for(PruneMode::SleepSet), unpruned);
        assert_eq!(finals_for(PruneMode::SourceDpor), unpruned);
        assert_eq!(finals_for(PruneMode::ValueDpor), unpruned);
        // The observer rule only ever commutes a write that is later
        // overwritten, so the last write of every trace — and with it
        // the final state — survives the collapse.
        assert_eq!(finals_for(PruneMode::OptimalDpor), unpruned);
    }

    /// Two readers of one shared register: syntactic DPOR treats the
    /// reads as conflicting (2 schedules); the value-aware relation
    /// commutes read/read pairs (1 schedule). A writer of the *same*
    /// value as the initial write commutes too; distinct values don't.
    #[test]
    fn value_dpor_commutes_reads_and_same_value_writes() {
        let readers = |driver: &mut ScheduleDriver| {
            let world = SimWorld::new(2);
            let mem = world.mem();
            let reg = mem.alloc("X", 0u64);
            let r0 = reg.clone();
            let r1 = reg;
            let programs: Vec<crate::Program> = vec![
                Box::new(move |_| {
                    let _ = r0.read();
                }),
                Box::new(move |_| {
                    let _ = r1.read();
                }),
            ];
            world.run(programs, driver, 100)
        };
        let same_writers = |driver: &mut ScheduleDriver| {
            let world = SimWorld::new(2);
            let mem = world.mem();
            let reg = mem.alloc("X", 0u64);
            let r0 = reg.clone();
            let r1 = reg;
            let programs: Vec<crate::Program> = vec![
                Box::new(move |_| r0.write(7)),
                Box::new(move |_| r1.write(7)),
            ];
            world.run(programs, driver, 100)
        };
        let count =
            |mode: PruneMode, runner: &(dyn Fn(&mut ScheduleDriver) -> RunOutcome + Sync)| {
                let explorer = Explorer {
                    mode,
                    ..Explorer::default()
                };
                let out = explorer.explore(runner);
                assert!(out.exhausted, "{mode:?}");
                out.schedules_replayed()
            };
        assert_eq!(count(PruneMode::SourceDpor, &readers), 2);
        assert_eq!(
            count(PruneMode::ValueDpor, &readers),
            1,
            "read/read commutes"
        );
        assert_eq!(count(PruneMode::SourceDpor, &same_writers), 2);
        assert_eq!(
            count(PruneMode::ValueDpor, &same_writers),
            1,
            "same-value writes commute"
        );
        // Distinct values: the write/write race is real in both modes.
        assert_eq!(count(PruneMode::ValueDpor, &writers_runner(2, false)), 2);
    }

    /// The event guard: when a high-level event marker rides on a step
    /// (here: each process's read is the last access before its
    /// `respond`-style marker), the value-aware relation must *not*
    /// commute it — swapping would move the event across the other
    /// process's step in the transcript.
    #[test]
    fn value_dpor_never_commutes_steps_carrying_events() {
        let runner = |driver: &mut ScheduleDriver| {
            let world = SimWorld::new(2);
            let mem = world.mem();
            let reg = mem.alloc("X", 0u64);
            let r0 = reg.clone();
            let r1 = reg;
            let w0 = world.clone();
            let w1 = world.clone();
            let programs: Vec<crate::Program> = vec![
                Box::new(move |_| {
                    let _ = r0.read();
                    w0.push_hi_marker(0, None);
                }),
                Box::new(move |_| {
                    let _ = r1.read();
                    w1.push_hi_marker(1, None);
                }),
            ];
            world.run(programs, driver, 100)
        };
        for mode in [PruneMode::SourceDpor, PruneMode::ValueDpor] {
            let explorer = Explorer {
                mode,
                ..Explorer::default()
            };
            let out = explorer.explore(runner);
            assert!(out.exhausted, "{mode:?}");
            assert_eq!(
                out.schedules_replayed(),
                2,
                "{mode:?}: event-carrying reads must stay ordered both ways"
            );
        }
    }

    /// Data-register symbols touched by one run of `runner` —
    /// interning is global and keyed by `(name, alloc site)`, so the
    /// symbols collected from one replay identify the same registers
    /// in every replay of the same runner.
    fn collect_data_syms<R>(runner: &R) -> Vec<RegSym>
    where
        R: Fn(&mut ScheduleDriver) -> RunOutcome + Sync,
    {
        let syms = Mutex::new(Vec::new());
        let explorer = Explorer {
            mode: PruneMode::Unpruned,
            max_runs: 1,
            ..Explorer::default()
        };
        explorer.explore(|d| {
            let o = runner(d);
            let mut s = syms.lock().unwrap();
            for step in o.steps() {
                let r = step.reg_sym();
                if r != RegSym::LOCAL && !s.contains(&r) {
                    s.push(r);
                }
            }
            o
        });
        syms.into_inner().unwrap()
    }

    /// One pausing invoker vs one writer: the pause carries an
    /// invocation marker, so `ValueDpor` treats it as conflicting with
    /// the write (2 placements), while `StaticDpor` with the writer's
    /// register licensed commutes the pair (1 schedule).
    fn invoke_placement_runner(respond: bool) -> impl Fn(&mut ScheduleDriver) -> RunOutcome + Sync {
        move |driver: &mut ScheduleDriver| {
            let world = SimWorld::new(2);
            let mem = world.mem();
            let reg = mem.alloc("X", 0u64);
            let w0 = world.clone();
            let programs: Vec<crate::Program> = vec![
                Box::new(move |ctx| {
                    ctx.pause();
                    w0.push_hi_marker(0, (!respond).then(|| OpSym::intern("TestInvoke")));
                }),
                Box::new(move |_| reg.write(1)),
            ];
            world.run(programs, driver, 100)
        }
    }

    #[test]
    fn static_dpor_relaxes_licensed_invocation_placement() {
        let runner = invoke_placement_runner(false);
        let syms = collect_data_syms(&runner);
        assert_eq!(syms.len(), 1, "one data register");
        let value = Explorer {
            mode: PruneMode::ValueDpor,
            ..Explorer::default()
        }
        .explore(&runner);
        assert!(value.exhausted);
        assert_eq!(value.schedules_replayed(), 2, "placement branches");
        let st = Arc::new(StaticConflicts::new(syms.clone(), syms));
        let out = Explorer {
            mode: PruneMode::StaticDpor,
            statics: Some(Arc::clone(&st)),
            ..Explorer::default()
        }
        .explore(&runner);
        assert!(out.exhausted);
        assert_eq!(
            out.schedules_replayed(),
            1,
            "licensed invoke-pause commutes with the marker-free write"
        );
        assert!(st.telemetry().relaxed > 0, "relaxation actually fired");
    }

    #[test]
    fn static_dpor_never_relaxes_response_markers() {
        let runner = invoke_placement_runner(true);
        let syms = collect_data_syms(&runner);
        let st = Arc::new(StaticConflicts::new(syms.clone(), syms));
        let out = Explorer {
            mode: PruneMode::StaticDpor,
            statics: Some(st),
            ..Explorer::default()
        }
        .explore(&runner);
        assert!(out.exhausted);
        assert_eq!(
            out.schedules_replayed(),
            2,
            "a response-carrying pause pins real-time order"
        );
    }

    #[test]
    fn static_dpor_keeps_all_conflicting_interleavings() {
        // Same register, distinct values: fully racy. With the
        // register licensed *and* predicted racy, StaticDpor must keep
        // every trace ValueDpor keeps.
        let runner = writers_runner(3, false);
        let syms = collect_data_syms(&runner);
        let st = Arc::new(StaticConflicts::new(syms.clone(), syms));
        let out = Explorer {
            mode: PruneMode::StaticDpor,
            statics: Some(Arc::clone(&st)),
            ..Explorer::default()
        }
        .explore(&runner);
        assert!(out.exhausted);
        assert_eq!(out.runs, 6, "all 6 conflicting traces kept");
        assert!(st.telemetry().validated > 0, "races were validated");
    }

    #[test]
    fn static_dpor_fails_closed_on_unpredicted_race() {
        let runner = writers_runner(2, false);
        let syms = collect_data_syms(&runner);
        // Licensed but *not* predicted racy: the dynamic write/write
        // race must abort the subtree. Quarantine converts the abort
        // into a partial verdict (never a silent PASS) whose poisoned
        // report carries the named diagnostic.
        let st = Arc::new(StaticConflicts::new(syms, []));
        let out = Explorer {
            mode: PruneMode::StaticDpor,
            statics: Some(st),
            ..Explorer::default()
        }
        .explore(&runner);
        assert!(
            !out.exhausted,
            "an unpredicted race never reads as a full pass"
        );
        assert!(out.partial, "quarantine marks the outcome partial");
        assert_eq!(out.quarantined, 1);
        assert_eq!(out.retried, QUARANTINE_RETRIES as u64);
        let msg = &out.poisoned[0].message;
        assert!(
            msg.contains("not predicted") && msg.contains("register `X`"),
            "diagnostic names the register: {msg}"
        );
    }

    #[test]
    fn static_dpor_requires_a_certificate() {
        let runner = writers_runner(2, true);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Explorer {
                mode: PruneMode::StaticDpor,
                ..Explorer::default()
            }
            .explore(&runner)
        }));
        assert!(result.is_err(), "StaticDpor without statics must panic");
    }

    /// The bit-identity guarantee extends to StaticDpor: same outcome
    /// and schedule set at any worker count, and — on a workload with
    /// no pauses — identical to ValueDpor.
    #[test]
    fn parallel_static_dpor_is_bit_identical_to_sequential() {
        use std::collections::BTreeSet;
        let syms = collect_data_syms(&mixed_runner(3));
        let st = Arc::new(StaticConflicts::new(syms.clone(), syms));
        let explore_at = |workers: usize, mode: PruneMode| {
            let runner = mixed_runner(3);
            let scripts = Mutex::new(BTreeSet::new());
            let explorer = Explorer {
                mode,
                workers,
                statics: (mode == PruneMode::StaticDpor).then(|| Arc::clone(&st)),
                ..Explorer::default()
            };
            let out = explorer.explore(|d| {
                let o = runner(d);
                if !d.was_cut() {
                    scripts.lock().unwrap().insert(o.script());
                }
                o
            });
            assert!(out.exhausted, "{mode:?} at {workers} workers");
            (out, scripts.into_inner().unwrap())
        };
        let (seq, seq_scripts) = explore_at(1, PruneMode::StaticDpor);
        let (value, value_scripts) = explore_at(1, PruneMode::ValueDpor);
        assert_eq!(seq, value, "no pauses: StaticDpor == ValueDpor");
        assert_eq!(seq_scripts, value_scripts);
        for workers in [2, 4, 8] {
            let (par, par_scripts) = explore_at(workers, PruneMode::StaticDpor);
            assert_eq!(seq, par, "outcome diverged at {workers} workers");
            assert_eq!(seq_scripts, par_scripts, "schedules diverged at {workers}");
        }
    }

    /// One process writes `X` twice (distinct values), the other once:
    /// in the schedule where the lone write lands between the pair,
    /// both racing writes are overwritten before any read, so the
    /// observer relation commutes them. `ValueDpor` keeps all three
    /// placements; `OptimalDpor` collapses to two.
    fn overwritten_writers_runner(
        marker: bool,
    ) -> impl Fn(&mut ScheduleDriver) -> RunOutcome + Sync {
        move |driver: &mut ScheduleDriver| {
            let world = SimWorld::new(2);
            let mem = world.mem();
            let reg = mem.alloc("X", 0u64);
            let r0 = reg.clone();
            let r1 = reg;
            let w1 = world.clone();
            let programs: Vec<crate::Program> = vec![
                Box::new(move |_| {
                    r0.write(1);
                    r0.write(3);
                }),
                Box::new(move |_| {
                    r1.write(2);
                    if marker {
                        w1.push_hi_marker(1, None);
                    }
                }),
            ];
            world.run(programs, driver, 100)
        }
    }

    #[test]
    fn optimal_dpor_commutes_unobserved_overwritten_writes() {
        let count =
            |mode: PruneMode, runner: &(dyn Fn(&mut ScheduleDriver) -> RunOutcome + Sync)| {
                let explorer = Explorer {
                    mode,
                    ..Explorer::default()
                };
                let out = explorer.explore(runner);
                assert!(out.exhausted, "{mode:?}");
                if mode == PruneMode::OptimalDpor {
                    assert_eq!(out.cut_runs, 0, "optimal mode never initiates a cut run");
                }
                out.schedules_replayed()
            };
        let plain = overwritten_writers_runner(false);
        assert_eq!(count(PruneMode::ValueDpor, &plain), 3);
        assert_eq!(
            count(PruneMode::OptimalDpor, &plain),
            2,
            "both overwritten writes commute before the final write"
        );
        // A marker riding on the lone write pins it against both of the
        // other process's writes: the event guard fires before the
        // observer arm is ever consulted.
        let marked = overwritten_writers_runner(true);
        assert_eq!(count(PruneMode::ValueDpor, &marked), 3);
        assert_eq!(
            count(PruneMode::OptimalDpor, &marked),
            3,
            "event-carrying writes must stay ordered both ways"
        );
    }

    /// A read between the two program-ordered writes observes the
    /// first one in every schedule, so no write/write pair is ever
    /// unobserved-on-both-sides and `OptimalDpor` keeps every
    /// placement `ValueDpor` keeps.
    #[test]
    fn optimal_dpor_keeps_writes_observed_by_a_read() {
        let runner = |driver: &mut ScheduleDriver| {
            let world = SimWorld::new(2);
            let mem = world.mem();
            let reg = mem.alloc("X", 0u64);
            let r0 = reg.clone();
            let r1 = reg;
            let programs: Vec<crate::Program> = vec![
                Box::new(move |_| {
                    r0.write(1);
                    let _ = r0.read();
                    r0.write(3);
                }),
                Box::new(move |_| r1.write(2)),
            ];
            world.run(programs, driver, 100)
        };
        for mode in [PruneMode::ValueDpor, PruneMode::OptimalDpor] {
            let explorer = Explorer {
                mode,
                ..Explorer::default()
            };
            let out = explorer.explore(runner);
            assert!(out.exhausted, "{mode:?}");
            assert_eq!(
                out.schedules_replayed(),
                4,
                "{mode:?}: the observing read blocks every collapse"
            );
        }
    }

    /// Three same-register writers with distinct values under
    /// `OptimalDpor`: within any one word the two overwritten writes
    /// commute, but every reversal demand is anchored at the pinned
    /// *last* write, so both members of each conditional-independence
    /// class are still reached (collapsing them needs full wakeup-tree
    /// subsumption, which the FIFO queue deliberately does not do).
    /// What the mode guarantees here is completeness without a single
    /// sleep-set-blocked initiation.
    #[test]
    fn optimal_dpor_keeps_conflicting_interleavings_cut_free() {
        let runner = writers_runner(3, false);
        let explorer = Explorer {
            mode: PruneMode::OptimalDpor,
            ..Explorer::default()
        };
        let out = explorer.explore(&runner);
        assert!(out.exhausted);
        assert_eq!(out.runs, 6, "all conflicting traces kept");
        assert_eq!(out.cut_runs, 0, "no sleep-set-blocked run is initiated");
    }

    /// `OptimalDpor` consults an installed access-footprint
    /// certificate exactly like `StaticDpor` does — but unlike
    /// `StaticDpor` it never requires one.
    #[test]
    fn optimal_dpor_consults_an_optional_certificate() {
        let runner = invoke_placement_runner(false);
        let syms = collect_data_syms(&runner);
        let bare = Explorer {
            mode: PruneMode::OptimalDpor,
            ..Explorer::default()
        }
        .explore(&runner);
        assert!(bare.exhausted, "no certificate required");
        assert_eq!(bare.schedules_replayed(), 2, "placement branches");
        let st = Arc::new(StaticConflicts::new(syms.clone(), syms));
        let out = Explorer {
            mode: PruneMode::OptimalDpor,
            statics: Some(Arc::clone(&st)),
            ..Explorer::default()
        }
        .explore(&runner);
        assert!(out.exhausted);
        assert_eq!(
            out.schedules_replayed(),
            1,
            "licensed invoke-pause commutes with the marker-free write"
        );
        assert!(st.telemetry().relaxed > 0, "relaxation actually fired");
    }

    /// The headline optimality property on the bushier mixed workload:
    /// `OptimalDpor` explores no more schedules than `ValueDpor`,
    /// initiates zero sleep-set-blocked runs, and still covers the
    /// same final shared-register states.
    #[test]
    fn optimal_dpor_is_cut_free_on_the_mixed_workload() {
        use std::collections::BTreeSet;
        let explore_at = |mode: PruneMode| {
            let runner = mixed_runner(3);
            let finals = Mutex::new(BTreeSet::new());
            let explorer = Explorer {
                mode,
                ..Explorer::default()
            };
            let out = explorer.explore(|d| {
                let o = runner(d);
                if !d.was_cut() {
                    let last = o.steps().last().unwrap().value();
                    finals.lock().unwrap().insert(last);
                }
                o
            });
            assert!(out.exhausted, "{mode:?}");
            (out, finals.into_inner().unwrap())
        };
        let (value, value_finals) = explore_at(PruneMode::ValueDpor);
        let (optimal, optimal_finals) = explore_at(PruneMode::OptimalDpor);
        assert_eq!(optimal.cut_runs, 0, "no sleep-set-blocked run initiated");
        assert!(
            optimal.runs <= value.schedules_replayed(),
            "optimal ({}) must not exceed value-DPOR ({})",
            optimal.runs,
            value.schedules_replayed()
        );
        assert_eq!(optimal_finals, value_finals, "verdict-relevant coverage");
    }

    #[test]
    fn stem_restricts_exploration_to_extensions() {
        // Stem forces p2 first; the rest is the 2-writer space.
        for mode in [PruneMode::Unpruned, PruneMode::SourceDpor] {
            let explorer = Explorer {
                mode,
                stem: vec![2],
                ..Explorer::default()
            };
            let scripts = Mutex::new(Vec::new());
            let out = explorer.explore(|d| {
                let o = writers_runner(3, false)(d);
                scripts.lock().unwrap().push(o.script());
                o
            });
            assert!(out.exhausted, "{mode:?}");
            assert_eq!(out.runs, 2, "{mode:?}");
            for s in scripts.into_inner().unwrap() {
                assert_eq!(s[0], 2, "every schedule extends the stem ({mode:?})");
            }
        }
    }

    #[test]
    fn run_budget_reports_not_exhausted() {
        for mode in [PruneMode::Unpruned, PruneMode::SourceDpor] {
            let explorer = Explorer {
                mode,
                max_runs: 3,
                ..Explorer::default()
            };
            let outcome = explorer.explore(writers_runner(3, false));
            assert_eq!(outcome.schedules_replayed(), 3, "{mode:?}");
            assert!(!outcome.exhausted, "{mode:?}");
        }
    }

    #[test]
    fn env_workers_parses_the_env_contract() {
        // Not set in the test environment by default.
        if std::env::var("SL_EXPLORE_THREADS").is_err() {
            assert_eq!(env_workers(), 1);
        }
    }

    /// The subtree hooks bracket the root exploration sequentially and
    /// every delegated task in parallel mode (counts balance).
    #[test]
    fn replay_ctx_subtree_hooks_balance() {
        struct Hooked<'a> {
            begun: &'a AtomicUsize,
            ended: &'a AtomicUsize,
            open: usize,
        }
        impl ReplayCtx for Hooked<'_> {
            fn subtree_begin(&mut self) {
                self.begun.fetch_add(1, Ordering::SeqCst);
                self.open += 1;
            }
            fn subtree_end(&mut self) {
                assert!(self.open > 0, "end without begin");
                self.open -= 1;
                self.ended.fetch_add(1, Ordering::SeqCst);
            }
        }
        for workers in [1, 4] {
            let begun = AtomicUsize::new(0);
            let ended = AtomicUsize::new(0);
            let runner = mixed_runner(3);
            let explorer = Explorer {
                mode: PruneMode::SourceDpor,
                workers,
                ..Explorer::default()
            };
            let out = explorer.explore_with(
                || Hooked {
                    begun: &begun,
                    ended: &ended,
                    open: 0,
                },
                |_, d| {
                    runner(d);
                },
            );
            assert!(out.exhausted);
            let b = begun.load(Ordering::SeqCst);
            assert_eq!(b, ended.load(Ordering::SeqCst), "{workers} workers");
            assert!(b >= 1);
        }
    }

    // -----------------------------------------------------------------
    // Crash resilience: quarantine, budgets + drain, checkpointed
    // resume, and deterministic fault injection.
    // -----------------------------------------------------------------

    fn resume_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sl-explore-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn quarantine_retries_then_quarantines_the_root_subtree() {
        let attempts = AtomicUsize::new(0);
        let runner = writers_runner(3, false);
        let out = Explorer::default().explore(|d| -> RunOutcome {
            let _ = runner(d);
            attempts.fetch_add(1, Ordering::SeqCst);
            panic!("injected object bug (test)");
        });
        assert_eq!(out.quarantined, 1);
        assert_eq!(out.retried, QUARANTINE_RETRIES as u64);
        assert!(out.partial && !out.exhausted, "never a silent pass");
        assert_eq!(out.runs, 0, "a quarantined subtree banks no counters");
        assert_eq!(
            attempts.load(Ordering::SeqCst),
            1 + QUARANTINE_RETRIES as usize,
            "one try plus the deterministic retries"
        );
        let report = &out.poisoned[0];
        assert_eq!(report.attempts, 1 + QUARANTINE_RETRIES);
        assert!(report.message.contains("injected object bug"));
        assert!(
            report.prefix.is_empty(),
            "the root's replay prefix is the stem"
        );
    }

    #[test]
    fn quarantine_keeps_the_process_alive_across_workers() {
        for workers in [1, 2] {
            let runner = mixed_runner(3);
            let explorer = Explorer {
                workers,
                ..Explorer::default()
            };
            // Deterministic per-schedule bug: every schedule led by
            // process 1 panics after its replay, wherever in the task
            // tree it is explored.
            let out = explorer.explore(|d| -> RunOutcome {
                let o = runner(d);
                if o.script().first() == Some(&1) {
                    panic!("injected bug on schedules led by process 1 (test)");
                }
                o
            });
            assert!(out.quarantined >= 1, "{workers} workers");
            assert_eq!(out.retried, QUARANTINE_RETRIES as u64 * out.quarantined);
            assert!(out.partial && !out.exhausted);
            assert_eq!(out.poisoned.len(), out.quarantined as usize);
            assert!(out.poisoned[0]
                .message
                .contains("injected bug on schedules led by process 1"));
        }
    }

    /// Scheduler adapter panicking inside [`Scheduler::pick`]: the VM's
    /// guarded pick site must abort the fibers and rethrow, landing in
    /// the explorer's quarantine instead of killing the process.
    struct PanickyPick<'a>(&'a mut ScheduleDriver);
    impl Scheduler for PanickyPick<'_> {
        fn pick(&mut self, _view: &SchedView<'_>) -> usize {
            panic!("injected pick panic (test)");
        }
        fn run_end(&mut self, trace: &[TraceItem]) {
            self.0.run_end(trace);
        }
    }

    /// Scheduler adapter panicking inside [`Scheduler::run_end`]: the
    /// VM must finish its core teardown before rethrowing, so the
    /// quarantined retries still find a usable world.
    struct PanickyEnd<'a>(&'a mut ScheduleDriver);
    impl Scheduler for PanickyEnd<'_> {
        fn pick(&mut self, view: &SchedView<'_>) -> usize {
            self.0.pick(view)
        }
        fn run_end(&mut self, _trace: &[TraceItem]) {
            panic!("injected run_end panic (test)");
        }
    }

    fn two_writer_programs(world: &SimWorld) -> Vec<crate::Program> {
        let mem = world.mem();
        let r = mem.alloc("X", 0u64);
        let r2 = r.clone();
        vec![
            Box::new(move |_| r.write(1)) as crate::Program,
            Box::new(move |_| r2.write(2)) as crate::Program,
        ]
    }

    #[test]
    fn a_panic_inside_scheduler_pick_funnels_into_quarantine() {
        let out = Explorer::default().explore(|d| {
            let world = SimWorld::new(2);
            let programs = two_writer_programs(&world);
            world.run(programs, &mut PanickyPick(d), 100)
        });
        assert_eq!(out.quarantined, 1);
        assert!(out.partial && !out.exhausted);
        assert!(out.poisoned[0].message.contains("injected pick panic"));
    }

    #[test]
    fn a_panic_inside_scheduler_run_end_funnels_into_quarantine() {
        let out = Explorer::default().explore(|d| {
            let world = SimWorld::new(2);
            let programs = two_writer_programs(&world);
            world.run(programs, &mut PanickyEnd(d), 100)
        });
        assert_eq!(out.quarantined, 1);
        assert!(out.partial && !out.exhausted);
        assert!(out.poisoned[0].message.contains("injected run_end panic"));
    }

    #[test]
    fn drained_exploration_resumes_to_the_uninterrupted_outcome() {
        use std::collections::BTreeSet;
        for (mode, workers) in [
            (PruneMode::ValueDpor, 1),
            (PruneMode::ValueDpor, 2),
            (PruneMode::OptimalDpor, 1),
            (PruneMode::OptimalDpor, 4),
        ] {
            let runner = mixed_runner(3);
            let explorer = Explorer {
                mode,
                workers,
                ..Explorer::default()
            };
            let ref_scripts = Mutex::new(BTreeSet::new());
            let reference = explorer.explore(|d| {
                let o = runner(d);
                if !d.was_cut() {
                    ref_scripts.lock().unwrap().insert(o.script());
                }
                o
            });
            assert!(reference.exhausted);

            let dir = resume_dir(&format!("drain-{}-{workers}", mode.name()));
            let store = CheckpointStore::new(&dir, "mixed3");
            let res_scripts = Mutex::new(BTreeSet::new());
            let mut rounds = 0u64;
            let final_out = loop {
                rounds += 1;
                assert!(rounds < 500, "resume loop did not converge");
                let mut session = ResumeSession::new(&store);
                session.policy = CheckpointPolicy {
                    every_replays: 3,
                    max_schedules: Some(rounds * 10),
                    deadline: None,
                };
                let out = explorer.explore_resumable(
                    || (),
                    |_, d| {
                        let o = runner(d);
                        if !d.was_cut() {
                            res_scripts.lock().unwrap().insert(o.script());
                        }
                    },
                    &session,
                );
                if !out.drained {
                    break out;
                }
                assert!(out.partial && !out.exhausted, "a drain is never a pass");
                assert!(store.exists() || out.schedules_replayed() == 0);
            };
            let tag = format!("{} at {workers} workers after {rounds} rounds", mode.name());
            assert!(final_out.exhausted, "{tag}");
            assert_eq!(final_out.runs, reference.runs, "{tag}");
            assert_eq!(final_out.cut_runs, reference.cut_runs, "{tag}");
            assert_eq!(final_out.pruned, reference.pruned, "{tag}");
            assert_eq!(final_out.quarantined, 0, "{tag}");
            assert!(
                rounds > 1,
                "the budget actually interrupted the run ({tag})"
            );
            assert!(!store.exists(), "a finished run deletes its checkpoint");
            assert_eq!(
                ref_scripts.into_inner().unwrap(),
                res_scripts.into_inner().unwrap(),
                "interrupt + resume explores exactly the uninterrupted schedule set ({tag})"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn an_expired_deadline_drains_at_the_first_replay_boundary() {
        let runner = mixed_runner(3);
        let dir = resume_dir("deadline");
        let store = CheckpointStore::new(&dir, "mixed3");
        let explorer = Explorer::default();
        let mut session = ResumeSession::new(&store);
        session.policy.deadline = Some(std::time::Instant::now());
        let out = explorer.explore_resumable(|| (), |_, d| drop(runner(d)), &session);
        assert!(out.drained && out.partial && !out.exhausted);
        assert_eq!(out.runs, 0, "no replay ran past the deadline");
        assert!(
            !store.exists(),
            "nothing explored yet, nothing to checkpoint"
        );
        // With the deadline lifted the same store runs to completion.
        let out =
            explorer.explore_resumable(|| (), |_, d| drop(runner(d)), &ResumeSession::new(&store));
        let reference = explorer.explore(&runner);
        assert!(out.exhausted);
        assert_eq!(out.runs, reference.runs);
        assert_eq!(out.pruned, reference.pruned);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Every in-process fault-injection point, at one and at four
    /// workers: the injected crash either never fires (the site is
    /// unreachable at that worker count — e.g. nothing is ever stolen
    /// sequentially) and the run completes clean, or it crashes the
    /// exploration and a resume from the surviving checkpoint ends at
    /// the bit-identical uninterrupted outcome.
    #[test]
    fn fault_injection_matrix_recovers_bit_identically() {
        for point in [
            FaultPoint::TaskFreeze,
            FaultPoint::Steal,
            FaultPoint::JoinMerge,
            FaultPoint::CkptWrite,
        ] {
            for workers in [1, 4] {
                let runner = mixed_runner(3);
                let explorer = Explorer {
                    workers,
                    ..Explorer::default()
                };
                let reference = explorer.explore(&runner);
                let dir = resume_dir(&format!("fault-{}-{workers}", point.name()));
                let store = CheckpointStore::new(&dir, "mixed3");
                let plan = Arc::new(FaultPlan::panicking(point, 1));
                let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut session = ResumeSession::new(&store);
                    session.policy.every_replays = 3;
                    session.fault = Some(Arc::clone(&plan));
                    explorer.explore_resumable(|| (), |_, d| drop(runner(d)), &session)
                }));
                let tag = format!("{} at {workers} workers", point.name());
                if let Ok(out) = crashed {
                    assert!(out.exhausted, "no crash ⇒ a clean pass ({tag})");
                    assert_eq!(out.runs, reference.runs, "{tag}");
                    let _ = std::fs::remove_dir_all(&dir);
                    continue;
                }
                let out = explorer.explore_resumable(
                    || (),
                    |_, d| drop(runner(d)),
                    &ResumeSession::new(&store),
                );
                assert!(out.exhausted, "{tag}");
                assert_eq!(out.runs, reference.runs, "{tag}");
                assert_eq!(out.cut_runs, reference.cut_runs, "{tag}");
                assert_eq!(out.pruned, reference.pruned, "{tag}");
                assert!(!store.exists(), "{tag}");
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }

    #[test]
    fn a_crash_during_resume_parse_recovers_on_retry() {
        let runner = mixed_runner(3);
        let explorer = Explorer::default();
        let reference = explorer.explore(&runner);
        let dir = resume_dir("resume-parse");
        let store = CheckpointStore::new(&dir, "mixed3");
        let mut session = ResumeSession::new(&store);
        session.policy.every_replays = 2;
        session.policy.max_schedules = Some(5);
        let out = explorer.explore_resumable(|| (), |_, d| drop(runner(d)), &session);
        assert!(
            out.drained && store.exists(),
            "a real checkpoint to resume from"
        );
        let plan = Arc::new(FaultPlan::panicking(FaultPoint::ResumeParse, 1));
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut session = ResumeSession::new(&store);
            session.fault = Some(plan);
            explorer.explore_resumable(|| (), |_, d| drop(runner(d)), &session)
        }));
        assert!(crashed.is_err(), "the parse-time fault crashes the resume");
        assert!(store.exists(), "the checkpoint survives a parse-time crash");
        let out =
            explorer.explore_resumable(|| (), |_, d| drop(runner(d)), &ResumeSession::new(&store));
        assert!(out.exhausted);
        assert_eq!(out.runs, reference.runs);
        assert_eq!(out.pruned, reference.pruned);
        assert!(!store.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_drained_checkpoint_roundtrips_byte_identically() {
        let runner = mixed_runner(4);
        let dir = resume_dir("roundtrip");
        let store = CheckpointStore::new(&dir, "mixed4");
        let explorer = Explorer {
            mode: PruneMode::OptimalDpor,
            workers: 4,
            ..Explorer::default()
        };
        let mut session = ResumeSession::new(&store);
        session.policy.every_replays = 5;
        session.policy.max_schedules = Some(40);
        let out = explorer.explore_resumable(|| (), |_, d| drop(runner(d)), &session);
        assert!(out.drained && store.exists());
        let text = std::fs::read_to_string(store.path()).unwrap();
        let ckpt = Checkpoint::parse(&text).expect("a written checkpoint parses");
        assert_eq!(
            ckpt.render(),
            text,
            "serialize → parse → serialize is byte-identical"
        );
        assert!(!ckpt.spine.is_empty());
        assert_eq!(ckpt.workers, 4);
        assert_eq!(ckpt.mode, "OptimalDpor");
        // And the frontier it carries resumes to the uninterrupted totals.
        let reference = explorer.explore(&runner);
        let fin =
            explorer.explore_resumable(|| (), |_, d| drop(runner(d)), &ResumeSession::new(&store));
        assert!(fin.exhausted);
        assert_eq!(fin.runs, reference.runs);
        assert_eq!(fin.cut_runs, reference.cut_runs);
        assert_eq!(fin.pruned, reference.pruned);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_mode_and_worker_mismatches() {
        let runner = mixed_runner(3);
        let dir = resume_dir("mismatch");
        let store = CheckpointStore::new(&dir, "mixed3");
        let mut session = ResumeSession::new(&store);
        session.policy.every_replays = 2;
        session.policy.max_schedules = Some(5);
        let drained = Explorer {
            workers: 2,
            ..Explorer::default()
        }
        .explore_resumable(|| (), |_, d| drop(runner(d)), &session);
        assert!(drained.drained && store.exists());
        let panic_msg = |explorer: Explorer| -> String {
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                explorer.explore_resumable(
                    || (),
                    |_, d| drop(runner(d)),
                    &ResumeSession::new(&store),
                )
            }))
            .expect_err("mismatched resume must fail closed");
            err.downcast_ref::<String>().cloned().unwrap_or_default()
        };
        let msg = panic_msg(Explorer {
            mode: PruneMode::OptimalDpor,
            workers: 2,
            ..Explorer::default()
        });
        assert!(msg.contains("mode"), "names the mode mismatch: {msg}");
        let msg = panic_msg(Explorer {
            workers: 4,
            ..Explorer::default()
        });
        assert!(
            msg.contains("worker-count"),
            "names the worker mismatch: {msg}"
        );
        assert!(store.exists(), "rejection leaves the checkpoint untouched");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
