//! Bounded exhaustive exploration of scheduling choices.
//!
//! Two generations of explorer live here:
//!
//! * [`explore`] — the original script-replay enumerator, kept for
//!   compatibility. It re-derives branch points from
//!   `RunOutcome::decisions` after each run and prunes nothing.
//! * [`Explorer`] — the stateless depth-first explorer built for the
//!   step VM. The caller's runner executes a fresh world per schedule
//!   under a [`ScheduleDriver`] (an adversarial [`Scheduler`] handed to
//!   `SimWorld::run`); the driver replays a decision prefix, extends it
//!   depth-first, and prunes per the configured [`PruneMode`]:
//!
//!   - [`PruneMode::Unpruned`] branches on every enabled process at
//!     every decision — the full schedule tree.
//!   - [`PruneMode::SleepSet`] additionally maintains **sleep sets**
//!     over the VM's declared [`PendingAccess`]es, so schedules
//!     differing only in the order of commuting steps (accesses by
//!     different processes to different registers) are explored once.
//!     Branches are still recorded for every non-sleeping sibling, and
//!     frames are distributed over a work-stealing pool of workers.
//!   - [`PruneMode::SourceDpor`] (the default) runs **source-set
//!     dynamic partial-order reduction** (the wakeup-free variant of
//!     Abdulla–Aronis–Jonsson–Sagonas SDPOR) on top of the same sleep
//!     sets: instead of eagerly branching on every sibling, the
//!     explorer detects *races* in each executed schedule with vector
//!     clocks over the declared accesses, and backtracks only where a
//!     reversal is actually demanded. Schedules that sleep sets would
//!     replay just to cut are mostly never scheduled at all.
//!
//! # Why the pruning is sound here
//!
//! Strong linearizability quantifies over the *tree* of transcripts, so
//! pruning schedules changes the checked object. Two guarantees keep
//! the verdict intact, for sleep sets and source sets alike (both prune
//! exactly reorderings of *independent* steps):
//!
//! 1. Only steps with [`PendingAccess::independent`] are commuted:
//!    different processes, different registers, neither a `Local`
//!    (pause) step. Swapping two such steps changes neither the memory
//!    state, nor either step's record, nor any process's continuation —
//!    and because invocation/response events ride on `Local` steps,
//!    which are never commuted, the *history* along both orders is
//!    identical event-for-event.
//! 2. A pruned schedule therefore differs from some explored schedule
//!    only by reordering adjacent independent internal steps. A strong
//!    linearization function for the explored tree extends to the
//!    pruned branches by assigning each reordered prefix the
//!    linearization of its explored permutation image: the history at
//!    corresponding nodes is equal, and prefix preservation transfers
//!    because commitments forced at response events are untouched.
//!
//! Source-set DPOR additionally relies on the completeness theorem of
//! SDPOR: every Mazurkiewicz trace of the schedule space is reachable
//! from the explored set by the recorded race reversals, so for every
//! pruned schedule some explored schedule is equivalent to it under
//! the (conservative) independence relation above. The dependence
//! relation used for race detection is *exactly*
//! `!PendingAccess::independent` — same-register accesses always
//! conflict (even two reads), and `Local` steps conflict with
//! everything — so the argument above covers it verbatim.
//!
//! All of this is **conservative**, and the pruned-vs-unpruned (and
//! DPOR-vs-sleep-set) verdict-equivalence tests in the model-check and
//! fuzz suites cross-check it on small configurations.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::sched::{Scheduler, STOP_RUN};
use crate::world::{PendingAccess, RunOutcome, SchedView};

/// Statistics of an exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreOutcome {
    /// Number of complete runs (schedules) executed.
    pub runs: usize,
    /// `true` if the schedule space was exhausted within the run budget;
    /// `false` if exploration stopped at `max_runs` with schedules left.
    pub exhausted: bool,
    /// Number of branch candidates skipped by pruning (0 when pruning
    /// is off or the legacy [`explore`] entry point is used).
    pub pruned: u64,
    /// Number of replays abandoned mid-run because every enabled
    /// process was sleeping — continuations that sleep-set theory
    /// proves are covered by some explored schedule.
    pub cut_runs: usize,
}

impl ExploreOutcome {
    /// Total schedules replayed: completed runs plus cut replays — the
    /// quantity that bounds exploration wall-clock.
    pub fn schedules_replayed(&self) -> usize {
        self.runs + self.cut_runs
    }
}

/// Explores the schedule space of a deterministic simulated system
/// (legacy script-replay interface).
///
/// `run_with_script` must build a **fresh** world (same programs, same
/// initial state) and run it under a [`crate::Scripted`] scheduler
/// seeded with the given decision prefix; it returns the run's
/// [`RunOutcome`]. `visit` is called once per executed run.
///
/// Exploration is depth-first and stops after `max_runs` runs; the
/// returned [`ExploreOutcome`] says whether the space was exhausted.
/// No pruning is performed; prefer [`Explorer`] for new code.
pub fn explore<F, V>(mut run_with_script: F, max_runs: usize, mut visit: V) -> ExploreOutcome
where
    F: FnMut(&[usize]) -> RunOutcome,
    V: FnMut(&[usize], &RunOutcome),
{
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    let mut runs = 0;
    while let Some(script) = stack.pop() {
        if runs >= max_runs {
            return ExploreOutcome {
                runs,
                exhausted: false,
                pruned: 0,
                cut_runs: 0,
            };
        }
        let outcome = run_with_script(&script);
        runs += 1;
        // Branch on every decision beyond the replayed prefix: the next
        // scripts share the actually-chosen decisions up to that point
        // and substitute one alternative.
        for (i, d) in outcome.decisions.iter().enumerate().skip(script.len()) {
            for &alt in d.runnable.iter().rev() {
                if alt == d.chosen {
                    continue;
                }
                let mut next: Vec<usize> =
                    outcome.decisions[..i].iter().map(|d| d.chosen).collect();
                next.push(alt);
                stack.push(next);
            }
        }
        visit(&script, &outcome);
    }
    ExploreOutcome {
        runs,
        exhausted: true,
        pruned: 0,
        cut_runs: 0,
    }
}

/// How the [`Explorer`] prunes the schedule tree. See the module docs
/// for the three levels and the soundness argument.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PruneMode {
    /// Branch on every enabled process at every decision.
    Unpruned,
    /// Sleep sets over declared pending accesses; parallel frontier.
    SleepSet,
    /// Source-set DPOR (wakeup-free) + sleep sets: backtrack only at
    /// detected races. Sequential (the backtrack sets of ancestors
    /// mutate as descendants run); typically replays far fewer
    /// schedules than [`PruneMode::SleepSet`], which more than pays for
    /// the lost parallelism.
    #[default]
    SourceDpor,
}

/// One unexplored node of the schedule tree: the decision prefix that
/// reaches it and the sleep set holding there.
#[derive(Clone, Debug)]
struct Frame {
    script: Vec<usize>,
    sleep: u64,
}

/// One decision observed by a DPOR-mode driver: the configuration at
/// the decision point (the chosen process is in the driver's script).
struct Observed {
    runnable: Vec<usize>,
    pending: Vec<PendingAccess>,
    /// Sleep set in force at this decision (meaningful for fresh
    /// decisions; replayed decisions re-use the spine's bookkeeping).
    sleep: u64,
}

enum DriverMode {
    /// Record every eligible sibling as a frame (Unpruned / SleepSet).
    Frames { prune: bool, branches: Vec<Frame> },
    /// Record the observed configuration of each decision from
    /// `record_from` onwards for post-run race detection (SourceDpor).
    Dpor {
        record_from: usize,
        observed: Vec<Observed>,
    },
}

/// The adversarial scheduler driving one replay of the depth-first
/// explorer: replays the frame's decision prefix, then extends the
/// schedule (lowest eligible process first). In frame mode it records
/// every eligible sibling as a new frame with its sleep set; in DPOR
/// mode it records each decision's configuration so the explorer can
/// detect races afterwards.
///
/// Handed to the caller's runner, which passes it to `SimWorld::run` as
/// the scheduler of a fresh world.
pub struct ScheduleDriver {
    prefix: Vec<usize>,
    /// Sleep set holding at the first decision past the prefix.
    sleep_after_prefix: u64,
    /// Decisions taken so far in this run.
    chosen: Vec<usize>,
    /// Current sleep set (evolves after the prefix).
    z: u64,
    mode: DriverMode,
    pruned: u64,
    cut: bool,
}

/// Keeps the bits of `set` whose process's pending access (looked up in
/// `runnable`/`pending`) is independent of `of`.
fn filter_independent(
    set: u64,
    of: PendingAccess,
    runnable: &[usize],
    pending: &[PendingAccess],
) -> u64 {
    if set == 0 {
        return 0;
    }
    let mut kept = 0u64;
    for (i, &p) in runnable.iter().enumerate() {
        if set & (1 << p) != 0 {
            let indep = match pending.get(i) {
                Some(b) => of.independent(b),
                // Unknown pending: assume conflict.
                None => false,
            };
            if indep {
                kept |= 1 << p;
            }
        }
    }
    kept
}

impl ScheduleDriver {
    fn frames(frame: Frame, prune: bool) -> ScheduleDriver {
        ScheduleDriver {
            sleep_after_prefix: frame.sleep,
            z: frame.sleep,
            chosen: Vec::with_capacity(frame.script.len() + 16),
            prefix: frame.script,
            mode: DriverMode::Frames {
                prune,
                branches: Vec::new(),
            },
            pruned: 0,
            cut: false,
        }
    }

    /// `record_from`: first decision index whose configuration the
    /// explorer still needs (everything below already has a spine
    /// node) — replayed decisions before it are not recorded, which
    /// keeps the replay hot path allocation-free.
    fn dpor(prefix: Vec<usize>, sleep_after_prefix: u64, record_from: usize) -> ScheduleDriver {
        ScheduleDriver {
            sleep_after_prefix,
            z: sleep_after_prefix,
            chosen: Vec::with_capacity(prefix.len() + 16),
            prefix,
            mode: DriverMode::Dpor {
                record_from,
                observed: Vec::new(),
            },
            pruned: 0,
            cut: false,
        }
    }

    /// The decision script of the run so far (the full schedule once
    /// the run finishes).
    pub fn script(&self) -> &[usize] {
        &self.chosen
    }

    /// How many decisions were replayed from the frame prefix.
    pub fn replayed(&self) -> usize {
        self.prefix.len()
    }

    /// Whether this replay was abandoned because every enabled process
    /// was sleeping (the run's continuations are covered elsewhere).
    /// Cut runs still produce genuine transcript *prefixes*; ingesting
    /// them is sound but optional.
    pub fn was_cut(&self) -> bool {
        self.cut
    }
}

impl Scheduler for ScheduleDriver {
    fn pick(&mut self, view: &SchedView<'_>) -> usize {
        let i = self.chosen.len();
        if i < self.prefix.len() {
            // Replay: runs are deterministic, so the prefix choice must
            // still be runnable.
            let want = self.prefix[i];
            assert!(
                view.runnable.contains(&want),
                "explorer replay diverged: {want} not runnable at decision {i} \
                 (runnable: {:?})",
                view.runnable
            );
            if let DriverMode::Dpor {
                record_from,
                observed,
            } = &mut self.mode
            {
                if i >= *record_from {
                    observed.push(Observed {
                        runnable: view.runnable.to_vec(),
                        pending: view.pending.to_vec(),
                        sleep: self.z,
                    });
                }
            }
            self.chosen.push(want);
            if i + 1 == self.prefix.len() {
                self.z = self.sleep_after_prefix;
            }
            return want;
        }
        // Hard limit, not a debug assertion: `1 << p` would silently
        // alias sleep bits for p >= 64 in release builds, making the
        // pruning unsound — a verification tool must fail loudly.
        assert!(
            view.runnable.iter().all(|&p| p < 64),
            "sleep sets support at most 64 processes"
        );
        let prune = !matches!(self.mode, DriverMode::Frames { prune: false, .. });
        // Candidates: runnable processes not in the sleep set.
        let mut first: Option<usize> = None;
        let mut candidates = 0u64;
        for &p in view.runnable {
            if !prune || self.z & (1 << p) == 0 {
                candidates |= 1 << p;
                if first.is_none() {
                    first = Some(p);
                }
            }
        }
        let Some(chosen) = first else {
            // Every enabled process is sleeping: any continuation from
            // here only reorders commuting steps of schedules explored
            // elsewhere. Abandon the run.
            self.cut = true;
            self.pruned += view.runnable.len() as u64;
            return STOP_RUN;
        };
        self.pruned += (view.runnable.len() as u64) - (candidates.count_ones() as u64);
        match &mut self.mode {
            DriverMode::Frames { prune, branches } => {
                // Record sibling branches. Sibling `alt` sleeps on the
                // chosen process and on every candidate listed before
                // it: exactly one representative interleaving of each
                // commuting pair survives.
                let mut acc = self.z | (1 << chosen);
                for &alt in view.runnable {
                    if alt == chosen || candidates & (1 << alt) == 0 {
                        continue;
                    }
                    let sleep = if *prune {
                        // Unknown pending: the conservative LOCAL access
                        // conflicts with everything.
                        let of = view.pending_of(alt).unwrap_or(PendingAccess::LOCAL);
                        filter_independent(acc, of, view.runnable, view.pending)
                    } else {
                        0
                    };
                    let mut script = self.chosen.clone();
                    script.push(alt);
                    branches.push(Frame { script, sleep });
                    acc |= 1 << alt;
                }
            }
            DriverMode::Dpor { observed, .. } => {
                observed.push(Observed {
                    runnable: view.runnable.to_vec(),
                    pending: view.pending.to_vec(),
                    sleep: self.z,
                });
            }
        }
        // Descend along `chosen`: sleeping processes stay asleep only
        // while the executed steps commute with their pending access.
        if prune {
            if let Some(of) = view.pending_of(chosen) {
                self.z = filter_independent(self.z, of, view.runnable, view.pending);
            } else {
                self.z = 0;
            }
        }
        self.chosen.push(chosen);
        chosen
    }
}

/// The stateless depth-first schedule explorer with partial-order
/// reduction. See the module docs.
#[derive(Clone, Debug)]
pub struct Explorer {
    /// Stop after this many replays (completed + cut; the space may not
    /// be exhausted).
    pub max_runs: usize,
    /// Partial-order reduction level (default: source-set DPOR).
    pub mode: PruneMode,
    /// Worker threads replaying schedules (frame modes only — source
    /// DPOR is sequential by construction). `1` explores sequentially
    /// on the calling thread.
    pub workers: usize,
    /// Initial decision prefix: exploration covers exactly the
    /// schedules extending this stem (empty = the full space).
    pub stem: Vec<usize>,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_runs: 1_000_000,
            mode: PruneMode::default(),
            workers: 1,
            stem: Vec::new(),
        }
    }
}

impl Explorer {
    /// An explorer with the given run budget and defaults otherwise.
    pub fn with_max_runs(max_runs: usize) -> Explorer {
        Explorer {
            max_runs,
            ..Explorer::default()
        }
    }

    /// Explores the schedule space of the deterministic system embodied
    /// by `runner`.
    ///
    /// `runner` must build a fresh world (same programs, same initial
    /// state each time) and run it with the given [`ScheduleDriver`] as
    /// its scheduler — typically also streaming the run's transcript
    /// into a shared sink before returning the outcome. It is invoked
    /// once per explored schedule, possibly from several threads (frame
    /// modes with `workers > 1`).
    pub fn explore<F>(&self, runner: F) -> ExploreOutcome
    where
        F: Fn(&mut ScheduleDriver) -> RunOutcome + Sync,
    {
        match self.mode {
            PruneMode::SourceDpor => {
                // Source DPOR is sequential by construction (ancestor
                // backtrack sets mutate while descendants run); a
                // parallel-worker request would be silently ignored.
                debug_assert!(
                    self.workers <= 1,
                    "PruneMode::SourceDpor explores sequentially; workers = {} has no effect                      (use PruneMode::SleepSet for a parallel frontier)",
                    self.workers
                );
                self.explore_dpor(&runner)
            }
            PruneMode::Unpruned | PruneMode::SleepSet => {
                let root = Frame {
                    script: self.stem.clone(),
                    sleep: 0,
                };
                let prune = self.mode == PruneMode::SleepSet;
                if self.workers <= 1 {
                    self.explore_sequential(root, prune, &runner)
                } else {
                    self.explore_parallel(root, prune, &runner)
                }
            }
        }
    }

    fn explore_sequential<F>(&self, root: Frame, prune: bool, runner: &F) -> ExploreOutcome
    where
        F: Fn(&mut ScheduleDriver) -> RunOutcome + Sync,
    {
        let mut stack = vec![root];
        let mut runs = 0usize;
        let mut cut_runs = 0usize;
        let mut pruned = 0u64;
        while let Some(frame) = stack.pop() {
            if runs + cut_runs >= self.max_runs {
                return ExploreOutcome {
                    runs,
                    exhausted: false,
                    pruned,
                    cut_runs,
                };
            }
            let mut driver = ScheduleDriver::frames(frame, prune);
            let _ = runner(&mut driver);
            if driver.cut {
                cut_runs += 1;
            } else {
                runs += 1;
            }
            pruned += driver.pruned;
            if let DriverMode::Frames { branches, .. } = &mut driver.mode {
                stack.append(branches);
            }
        }
        ExploreOutcome {
            runs,
            exhausted: true,
            pruned,
            cut_runs,
        }
    }

    fn explore_parallel<F>(&self, root: Frame, prune: bool, runner: &F) -> ExploreOutcome
    where
        F: Fn(&mut ScheduleDriver) -> RunOutcome + Sync,
    {
        let workers = self.workers;
        let deques: Vec<Mutex<VecDeque<Frame>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        deques[0].lock().unwrap().push_back(root);
        let runs = AtomicUsize::new(0);
        let cut_runs = AtomicUsize::new(0);
        let pruned = AtomicU64::new(0);
        let active = AtomicUsize::new(0);
        let capped = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for me in 0..workers {
                let deques = &deques;
                let runs = &runs;
                let cut_runs = &cut_runs;
                let pruned = &pruned;
                let active = &active;
                let capped = &capped;
                let max_runs = self.max_runs;
                scope.spawn(move || {
                    /// Decrements `active` when dropped, so the count
                    /// stays correct on every exit path — including a
                    /// panic inside the runner (a simulated program or
                    /// a runner assertion failing), which would
                    /// otherwise leave peers spinning on `active != 0`
                    /// forever.
                    struct ActiveGuard<'a>(&'a AtomicUsize);
                    impl Drop for ActiveGuard<'_> {
                        fn drop(&mut self) {
                            self.0.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    loop {
                        // `active` is raised *before* looking for work:
                        // a frame is never out of a deque while its
                        // holder is invisible to the termination check.
                        active.fetch_add(1, Ordering::SeqCst);
                        // Own deque first (LIFO: depth-first locally),
                        // then steal oldest frames from siblings
                        // (FIFO: breadth-first stealing splits the tree
                        // near the root, the classic work-stealing
                        // shape).
                        let frame = {
                            let own = deques[me].lock().unwrap().pop_back();
                            own.or_else(|| {
                                (0..workers)
                                    .filter(|v| *v != me)
                                    .find_map(|v| deques[v].lock().unwrap().pop_front())
                            })
                        };
                        let Some(frame) = frame else {
                            active.fetch_sub(1, Ordering::SeqCst);
                            if active.load(Ordering::SeqCst) == 0 {
                                // No frames anywhere and nobody holding
                                // one who could produce more: done.
                                let empty =
                                    (0..workers).all(|v| deques[v].lock().unwrap().is_empty());
                                if empty && active.load(Ordering::SeqCst) == 0 {
                                    return;
                                }
                            }
                            std::thread::yield_now();
                            continue;
                        };
                        // The guard owns the decrement from here on —
                        // every exit path, including a runner panic.
                        let _guard = ActiveGuard(active);
                        if runs.load(Ordering::SeqCst) + cut_runs.load(Ordering::SeqCst) >= max_runs
                        {
                            capped.store(true, Ordering::SeqCst);
                            return;
                        }
                        let mut driver = ScheduleDriver::frames(frame, prune);
                        let _ = runner(&mut driver);
                        if driver.cut {
                            cut_runs.fetch_add(1, Ordering::SeqCst);
                        } else {
                            runs.fetch_add(1, Ordering::SeqCst);
                        }
                        pruned.fetch_add(driver.pruned, Ordering::Relaxed);
                        if let DriverMode::Frames { branches, .. } = &mut driver.mode {
                            if !branches.is_empty() {
                                let mut own = deques[me].lock().unwrap();
                                own.extend(branches.drain(..));
                            }
                        }
                    }
                });
            }
        });
        let capped = capped.load(Ordering::SeqCst);
        ExploreOutcome {
            runs: runs.load(Ordering::SeqCst),
            exhausted: !capped,
            pruned: pruned.load(Ordering::SeqCst),
            cut_runs: cut_runs.load(Ordering::SeqCst),
        }
    }
}

/// One decision point on the DPOR spine: the configuration, the child
/// currently being explored, the children already retired, and the
/// backtrack (source) set grown by race detection in descendant runs.
struct SpineNode {
    runnable: Vec<usize>,
    pending: Vec<PendingAccess>,
    /// Sleep set on entry plus retired children — the SDPOR `Sleep`
    /// after each explored child is added.
    sleep_now: u64,
    /// Children whose subtrees are fully explored.
    done: u64,
    /// Source set: children demanded by detected races (grows while
    /// descendants run). Always contains the first explored child.
    backtrack: Vec<usize>,
    /// Child currently being explored.
    chosen: usize,
    /// The declared access `chosen` executes from here — the step of
    /// the execution word used for race detection.
    access: PendingAccess,
}

impl SpineNode {
    fn pending_of(&self, p: usize) -> PendingAccess {
        let i = self
            .runnable
            .iter()
            .position(|&q| q == p)
            .expect("backtrack candidate must be enabled");
        self.pending[i]
    }
}

/// `a ≤ b` pointwise: the step with clock `a` happens-before the step
/// with clock `b`.
fn clock_leq(a: &[u32], b: &[u32]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

impl Explorer {
    /// Source-set DPOR exploration (sequential): run a schedule, detect
    /// races against the executed word with vector clocks, extend the
    /// backtrack sets of the racing decision points, and replay the
    /// deepest pending reversal until no decision point has unexplored
    /// backtrack candidates.
    fn explore_dpor<F>(&self, runner: &F) -> ExploreOutcome
    where
        F: Fn(&mut ScheduleDriver) -> RunOutcome + Sync,
    {
        let stem_len = self.stem.len();
        let mut spine: Vec<SpineNode> = Vec::new();
        let mut runs = 0usize;
        let mut cut_runs = 0usize;
        let mut pruned = 0u64;
        let mut next: Option<(Vec<usize>, u64)> = Some((self.stem.clone(), 0));
        // Vector clocks of the current spine, cached across replays.
        let mut clocks: Vec<Vec<u32>> = Vec::new();
        let mut first_run = true;
        while let Some((prefix, sleep_after_prefix)) = next.take() {
            if runs + cut_runs >= self.max_runs {
                return ExploreOutcome {
                    runs,
                    exhausted: false,
                    pruned,
                    cut_runs,
                };
            }
            let prefix_len = prefix.len();
            // Decisions below the spine tip already have nodes (on the
            // first run the spine is empty, so even the replayed stem
            // decisions are recorded and get nodes — never backtracked
            // into); the driver skips recording anything below.
            let mut driver = ScheduleDriver::dpor(prefix, sleep_after_prefix, spine.len());
            let _ = runner(&mut driver);
            if driver.cut {
                cut_runs += 1;
            } else {
                runs += 1;
            }
            pruned += driver.pruned;
            let DriverMode::Dpor { observed, .. } = driver.mode else {
                unreachable!("DPOR explorer uses DPOR drivers");
            };
            // Extend the spine with this run's recorded decisions
            // (observed[0] is the decision at the current spine tip).
            for obs in observed {
                let chosen = driver.chosen[spine.len()];
                let access = obs
                    .pending
                    .get(
                        obs.runnable
                            .iter()
                            .position(|&p| p == chosen)
                            .unwrap_or(usize::MAX),
                    )
                    .copied()
                    .unwrap_or(PendingAccess::LOCAL);
                spine.push(SpineNode {
                    runnable: obs.runnable,
                    pending: obs.pending,
                    sleep_now: obs.sleep,
                    done: 0,
                    backtrack: vec![chosen],
                    chosen,
                    access,
                });
            }
            // Race detection: only pairs whose later step is new this
            // run (pairs entirely inside the replayed prefix were
            // handled when that prefix first ran).
            let first_new = if first_run {
                0
            } else {
                prefix_len.saturating_sub(1)
            };
            first_run = false;
            add_race_reversals(&mut spine, &mut clocks, first_new, stem_len);
            // Backtrack: retire finished children bottom-up until a
            // decision point with an unexplored backtrack candidate is
            // found, then descend into it.
            loop {
                if spine.len() <= stem_len {
                    return ExploreOutcome {
                        runs,
                        exhausted: true,
                        pruned,
                        cut_runs,
                    };
                }
                let d = spine.len() - 1;
                {
                    let node = &mut spine[d];
                    node.done |= 1 << node.chosen;
                    node.sleep_now |= 1 << node.chosen;
                }
                let candidate = {
                    let node = &spine[d];
                    node.backtrack
                        .iter()
                        .copied()
                        .find(|&q| node.done & (1 << q) == 0 && node.sleep_now & (1 << q) == 0)
                };
                if let Some(q) = candidate {
                    let (access, sleep_child) = {
                        let node = &spine[d];
                        let access = node.pending_of(q);
                        (
                            access,
                            filter_independent(
                                node.sleep_now,
                                access,
                                &node.runnable,
                                &node.pending,
                            ),
                        )
                    };
                    let node = &mut spine[d];
                    node.chosen = q;
                    node.access = access;
                    let prefix: Vec<usize> = spine.iter().map(|n| n.chosen).collect();
                    next = Some((prefix, sleep_child));
                    break;
                }
                let node = &spine[d];
                pruned += (node.runnable.len() as u64) - u64::from(node.done.count_ones());
                spine.pop();
            }
        }
        unreachable!("the DPOR loop exits via its returns")
    }
}

/// Detects races in the executed word `spine` and extends the
/// backtrack (source) sets of the racing decision points.
///
/// Happens-before is computed with vector clocks over the dependence
/// relation `!PendingAccess::independent` (program order + conflicting
/// accesses). A pair `(j, k)` races when the steps are dependent, by
/// different processes, and `j` does not happen-before `k` through any
/// intermediate step — i.e. the two could have been adjacent. For each
/// race, the wakeup-free source-set rule applies: if no *weak initial*
/// of the reversing continuation is already in `backtrack(j)`, the
/// process of the first reversing step is added.
fn add_race_reversals(
    spine: &mut [SpineNode],
    clocks: &mut Vec<Vec<u32>>,
    first_new: usize,
    stem_len: usize,
) {
    let len = spine.len();
    if len == 0 {
        clocks.clear();
        return;
    }
    let nprocs = spine
        .iter()
        .flat_map(|n| n.runnable.iter().copied())
        .max()
        .unwrap_or(0)
        + 1;
    // Clocks of the replayed prefix are cached across runs (the prefix
    // steps are identical replay to replay); recompute only from the
    // first decision that changed. The width check guards the first
    // runs, before the process universe is fully observed.
    let mut start = first_new.min(clocks.len());
    if clocks[..start].iter().any(|c| c.len() != nprocs) {
        start = 0;
    }
    clocks.truncate(start);
    let mut proc_clock: Vec<Vec<u32>> = vec![vec![0u32; nprocs]; nprocs];
    {
        // Rebuild each process's last-step clock from the cached
        // prefix: backward scan, one clone per process.
        let mut filled = vec![false; nprocs];
        for i in (0..start).rev() {
            let p = spine[i].chosen;
            if !filled[p] {
                filled[p] = true;
                proc_clock[p] = clocks[i].clone();
                if filled.iter().all(|&f| f) {
                    break;
                }
            }
        }
    }
    // (decision index j, process to add if no initial is present yet,
    //  weak initials of the reversing continuation)
    let mut additions: Vec<(usize, usize, Vec<usize>)> = Vec::new();
    for k in start..len {
        let (p, a) = (spine[k].chosen, spine[k].access);
        let mut base = proc_clock[p].clone();
        let mut races: Vec<usize> = Vec::new();
        for j in (0..k).rev() {
            let (q, b) = (spine[j].chosen, spine[j].access);
            if a.independent(&b) {
                continue;
            }
            if !clock_leq(&clocks[j], &base) {
                // Not yet happens-before `k` through closer steps: this
                // is an immediate race (when by another process).
                if q != p && k >= first_new && j >= stem_len {
                    races.push(j);
                }
                for (x, y) in base.iter_mut().zip(&clocks[j]) {
                    *x = (*x).max(*y);
                }
            }
        }
        base[p] += 1;
        clocks.push(base);
        proc_clock[p] = clocks[k].clone();
        for &j in &races {
            // The reversing continuation: every step between `j` and
            // `k` not happens-after `j`, then `k`'s process.
            let v: Vec<usize> = (j + 1..k)
                .filter(|&m| !clock_leq(&clocks[j], &clocks[m]))
                .chain([k])
                .collect();
            // Weak initials: processes whose first step in `v` is not
            // happens-after any earlier step of `v`.
            let mut seen: Vec<usize> = Vec::new();
            let mut initials: Vec<usize> = Vec::new();
            for (mi, &m) in v.iter().enumerate() {
                let pm = spine[m].chosen;
                if seen.contains(&pm) {
                    continue;
                }
                seen.push(pm);
                if v[..mi].iter().all(|&l| !clock_leq(&clocks[l], &clocks[m])) {
                    initials.push(pm);
                }
            }
            additions.push((j, spine[v[0]].chosen, initials));
        }
    }
    for (j, first_proc, initials) in additions {
        let node = &mut spine[j];
        if !initials.iter().any(|p| node.backtrack.contains(p)) {
            debug_assert!(initials.contains(&first_proc));
            node.backtrack.push(first_proc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scripted, SimWorld};
    use sl_mem::{Mem, Register};

    /// Two processes, one register write each: the schedule space has
    /// exactly 2 decision points with 2, then 1 choices ⇒ 2 schedules.
    fn run_two_writers(script: &[usize]) -> RunOutcome {
        let world = SimWorld::new(2);
        let mem = world.mem();
        let reg = mem.alloc("X", 0u64);
        let r0 = reg.clone();
        let r1 = reg;
        let mut sched = Scripted::new(script.to_vec());
        world.run(
            vec![
                Box::new(move |_| r0.write(1)),
                Box::new(move |_| r1.write(2)),
            ],
            &mut sched,
            100,
        )
    }

    #[test]
    fn explores_all_interleavings_of_two_single_step_programs() {
        let mut finals = Vec::new();
        let outcome = explore(run_two_writers, 100, |_script, run| {
            let last = run.steps().last().unwrap().value.clone();
            finals.push(last);
        });
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 2);
        finals.sort();
        assert_eq!(finals, vec!["1".to_string(), "2".to_string()]);
    }

    #[test]
    fn respects_run_budget() {
        let outcome = explore(run_two_writers, 1, |_, _| {});
        assert_eq!(outcome.runs, 1);
        assert!(!outcome.exhausted);
    }

    /// Three single-step processes ⇒ 3! = 6 schedules.
    #[test]
    fn counts_schedules_of_three_writers() {
        let run = |script: &[usize]| {
            let world = SimWorld::new(3);
            let mem = world.mem();
            let reg = mem.alloc("X", 0u64);
            let handles: Vec<_> = (0..3).map(|_| reg.clone()).collect();
            let mut sched = Scripted::new(script.to_vec());
            let programs: Vec<crate::Program> = handles
                .into_iter()
                .enumerate()
                .map(|(i, r)| Box::new(move |_| r.write(i as u64)) as crate::Program)
                .collect();
            world.run(programs, &mut sched, 100)
        };
        let outcome = explore(run, 1000, |_, _| {});
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 6);
    }

    /// Driver-based runner over `n` writers to one shared or `n`
    /// distinct registers.
    fn writers_runner(
        n: usize,
        distinct: bool,
    ) -> impl Fn(&mut ScheduleDriver) -> RunOutcome + Sync {
        move |driver: &mut ScheduleDriver| {
            let world = SimWorld::new(n);
            let mem = world.mem();
            let shared = mem.alloc("X", 0u64);
            let programs: Vec<crate::Program> = (0..n)
                .map(|i| {
                    let r = if distinct {
                        mem.alloc(&format!("R{i}"), 0u64)
                    } else {
                        shared.clone()
                    };
                    Box::new(move |_| r.write(i as u64)) as crate::Program
                })
                .collect();
            world.run(programs, driver, 100)
        }
    }

    #[test]
    fn driver_explorer_matches_legacy_count_without_pruning() {
        let explorer = Explorer {
            mode: PruneMode::Unpruned,
            ..Explorer::default()
        };
        let outcome = explorer.explore(writers_runner(3, false));
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 6);
        assert_eq!(outcome.pruned, 0);
    }

    #[test]
    fn sleep_sets_collapse_commuting_writers_to_one_schedule() {
        // Three writers to three *distinct* registers: all 6
        // interleavings are equivalent, so sleep sets leave one.
        let explorer = Explorer {
            mode: PruneMode::SleepSet,
            ..Explorer::default()
        };
        let outcome = explorer.explore(writers_runner(3, true));
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 1, "all interleavings commute");
        assert!(outcome.pruned > 0);
    }

    #[test]
    fn dpor_collapses_commuting_writers_to_one_schedule() {
        let explorer = Explorer::default();
        assert_eq!(explorer.mode, PruneMode::SourceDpor);
        let outcome = explorer.explore(writers_runner(3, true));
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 1, "no races ⇒ a single schedule");
        assert_eq!(outcome.cut_runs, 0, "DPOR does not even replay-and-cut");
        assert!(outcome.pruned > 0, "unexplored enabled children counted");
    }

    #[test]
    fn pruning_keeps_all_conflicting_interleavings() {
        // Same register: nothing commutes, all 6 traces remain, in
        // every mode.
        for mode in [
            PruneMode::Unpruned,
            PruneMode::SleepSet,
            PruneMode::SourceDpor,
        ] {
            let explorer = Explorer {
                mode,
                ..Explorer::default()
            };
            let outcome = explorer.explore(writers_runner(3, false));
            assert!(outcome.exhausted, "{mode:?}");
            assert_eq!(outcome.runs, 6, "{mode:?} must keep all 6 traces");
        }
    }

    /// Mixed workload: two same-register writers (a real race) plus one
    /// independent writer. 3! = 6 interleavings, but only the order of
    /// the two racing writers matters ⇒ 2 Mazurkiewicz traces. DPOR
    /// must explore exactly one schedule per trace.
    #[test]
    fn dpor_explores_one_schedule_per_trace() {
        let runner = move |driver: &mut ScheduleDriver| {
            let world = SimWorld::new(3);
            let mem = world.mem();
            let shared = mem.alloc("X", 0u64);
            let lone = mem.alloc("Y", 0u64);
            let s0 = shared.clone();
            let s1 = shared;
            let programs: Vec<crate::Program> = vec![
                Box::new(move |_| s0.write(1)),
                Box::new(move |_| s1.write(2)),
                Box::new(move |_| lone.write(3)),
            ];
            world.run(programs, driver, 100)
        };
        let explorer = Explorer::default();
        let outcome = explorer.explore(runner);
        assert!(outcome.exhausted);
        assert_eq!(outcome.runs, 2, "one schedule per Mazurkiewicz trace");
    }

    #[test]
    fn parallel_exploration_visits_the_same_schedules() {
        use std::collections::BTreeSet;
        let runner = writers_runner(3, false);
        let seq_scripts = Mutex::new(BTreeSet::new());
        let explorer = Explorer {
            mode: PruneMode::Unpruned,
            ..Explorer::default()
        };
        let out = explorer.explore(|d| {
            let o = runner(d);
            seq_scripts.lock().unwrap().insert(o.script());
            o
        });
        assert!(out.exhausted);
        let par_scripts = Mutex::new(BTreeSet::new());
        let explorer = Explorer {
            mode: PruneMode::Unpruned,
            workers: 3,
            ..Explorer::default()
        };
        let out = explorer.explore(|d| {
            let o = runner(d);
            par_scripts.lock().unwrap().insert(o.script());
            o
        });
        assert!(out.exhausted);
        assert_eq!(out.runs, 6);
        assert_eq!(
            seq_scripts.into_inner().unwrap(),
            par_scripts.into_inner().unwrap()
        );
    }

    /// Every mode visits the same set of final memory states (the
    /// verdict-relevant abstraction of the schedule space) on a racy
    /// workload.
    #[test]
    fn all_modes_cover_the_same_final_states() {
        use std::collections::BTreeSet;
        let finals_for = |mode: PruneMode| {
            let finals = Mutex::new(BTreeSet::new());
            let explorer = Explorer {
                mode,
                ..Explorer::default()
            };
            let runner = writers_runner(3, false);
            let out = explorer.explore(|d| {
                let o = runner(d);
                if !d.was_cut() {
                    let last = o.steps().last().unwrap().value.clone();
                    finals.lock().unwrap().insert(last);
                }
                o
            });
            assert!(out.exhausted, "{mode:?}");
            finals.into_inner().unwrap()
        };
        let unpruned = finals_for(PruneMode::Unpruned);
        assert_eq!(unpruned.len(), 3, "last write can be any of the three");
        assert_eq!(finals_for(PruneMode::SleepSet), unpruned);
        assert_eq!(finals_for(PruneMode::SourceDpor), unpruned);
    }

    #[test]
    fn stem_restricts_exploration_to_extensions() {
        // Stem forces p2 first; the rest is the 2-writer space.
        for mode in [PruneMode::Unpruned, PruneMode::SourceDpor] {
            let explorer = Explorer {
                mode,
                stem: vec![2],
                ..Explorer::default()
            };
            let scripts = Mutex::new(Vec::new());
            let out = explorer.explore(|d| {
                let o = writers_runner(3, false)(d);
                scripts.lock().unwrap().push(o.script());
                o
            });
            assert!(out.exhausted, "{mode:?}");
            assert_eq!(out.runs, 2, "{mode:?}");
            for s in scripts.into_inner().unwrap() {
                assert_eq!(s[0], 2, "every schedule extends the stem ({mode:?})");
            }
        }
    }

    #[test]
    fn run_budget_reports_not_exhausted() {
        for mode in [PruneMode::Unpruned, PruneMode::SourceDpor] {
            let explorer = Explorer {
                mode,
                max_runs: 3,
                ..Explorer::default()
            };
            let outcome = explorer.explore(writers_runner(3, false));
            assert_eq!(outcome.schedules_replayed(), 3, "{mode:?}");
            assert!(!outcome.exhausted, "{mode:?}");
        }
    }
}
