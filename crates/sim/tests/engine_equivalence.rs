//! The deprecated thread-handoff engine must stay byte-compatible with
//! the step VM for one release: same traces, same event logs, same
//! decisions, on the same schedules. Also pins the human-readable
//! trace format (allocation-site labels recorded through
//! `SimMem::alloc`).

use sl_mem::{Mem, Register};
use sl_sim::{
    AccessKind, EventLog, Program, RoundRobin, RunOutcome, Scripted, SeededRandom, SimWorld,
};
use sl_spec::types::RegisterSpec;
use sl_spec::{RegisterOp, RegisterResp};

type Spec = RegisterSpec<u64>;

/// A workload whose every high-level event happens inside a scheduled
/// region (each operation starts with a pause), which is the contract
/// under which the two engines are trace-identical.
fn workload(world: &SimWorld) -> (Vec<Program>, EventLog<Spec>) {
    let mem = world.mem();
    let reg = mem.alloc("X", None::<u64>);
    let log: EventLog<Spec> = EventLog::new(world);
    let mut programs: Vec<Program> = Vec::new();
    for pid in 0..2 {
        let reg = reg.clone();
        let log = log.clone();
        programs.push(Box::new(move |ctx| {
            let p = ctx.proc_id();
            for i in 0..3u64 {
                ctx.pause();
                if pid == 0 {
                    let id = log.invoke(p, RegisterOp::Write(i));
                    reg.write(Some(i));
                    log.respond(id, RegisterResp::Ack);
                } else {
                    let id = log.invoke(p, RegisterOp::Read);
                    let v = reg.read();
                    log.respond(id, RegisterResp::Value(v));
                }
            }
        }));
    }
    (programs, log)
}

fn run_vm(script: Vec<usize>) -> (RunOutcome, Vec<String>) {
    let world = SimWorld::new(2);
    let (programs, log) = workload(&world);
    let mut sched = Scripted::new(script);
    let outcome = world.run(programs, &mut sched, 10_000);
    let pretty = log.pretty_transcript(&outcome);
    (outcome, pretty)
}

fn run_threaded(script: Vec<usize>) -> (RunOutcome, Vec<String>) {
    let world = SimWorld::new(2);
    let (programs, log) = workload(&world);
    let mut sched = Scripted::new(script);
    let outcome = world.run_threaded(programs, &mut sched, 10_000);
    let pretty = log.pretty_transcript(&outcome);
    (outcome, pretty)
}

#[test]
fn engines_produce_byte_identical_logs_on_fixed_schedules() {
    let scripts = [
        vec![],                             // pure fallback: p0 first
        vec![1, 1, 1, 0, 0, 1, 0, 1, 0],    // interleaved
        vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1], // alternating
    ];
    for script in scripts {
        let (vm, vm_pretty) = run_vm(script.clone());
        let (th, th_pretty) = run_threaded(script.clone());
        assert!(vm.completed && th.completed);
        assert_eq!(vm.trace, th.trace, "trace mismatch on script {script:?}");
        assert_eq!(vm.steps_per_proc, th.steps_per_proc);
        assert_eq!(
            vm_pretty, th_pretty,
            "event-log rendering mismatch on script {script:?}"
        );
        // Decisions: same runnable sets and choices; only the VM knows
        // pending accesses.
        assert_eq!(vm.decisions.len(), th.decisions.len());
        for (dv, dt) in vm.decisions.iter().zip(&th.decisions) {
            assert_eq!(dv.runnable, dt.runnable);
            assert_eq!(dv.chosen, dt.chosen);
            assert_eq!(dv.pending.len(), dv.runnable.len(), "VM declares pendings");
            assert!(dt.pending.is_empty(), "threaded engine has no pendings");
        }
    }
}

#[test]
fn engines_agree_under_seeded_random_schedules() {
    for seed in 0..5u64 {
        let world = SimWorld::new(2);
        let (programs, _log) = workload(&world);
        let mut sched = SeededRandom::new(seed);
        let vm = world.run(programs, &mut sched, 10_000);

        let world = SimWorld::new(2);
        let (programs, _log) = workload(&world);
        let mut sched = SeededRandom::new(seed);
        let th = world.run_threaded(programs, &mut sched, 10_000);

        assert_eq!(vm.trace, th.trace, "seed {seed}");
    }
}

#[test]
fn engines_agree_on_budget_aborts() {
    let (vm, _) = {
        let world = SimWorld::new(2);
        let (programs, log) = workload(&world);
        let mut sched = RoundRobin::new();
        let o = world.run(programs, &mut sched, 7);
        (o, log)
    };
    let (th, _) = {
        let world = SimWorld::new(2);
        let (programs, log) = workload(&world);
        let mut sched = RoundRobin::new();
        let o = world.run_threaded(programs, &mut sched, 7);
        (o, log)
    };
    assert!(!vm.completed && !th.completed);
    assert_eq!(vm.total_steps(), 7);
    assert_eq!(vm.trace, th.trace);
    assert_eq!(vm.steps_per_proc, th.steps_per_proc);
}

/// Satellite of the allocation-site work: the trace format is pinned.
/// Register steps carry the `Mem::alloc` call site (this file), pauses
/// render without a site, and events render with arrows.
#[test]
fn pretty_trace_format_carries_allocation_sites() {
    let world = SimWorld::new(1);
    let mem = world.mem();
    let reg = mem.alloc("X", 0u64); // allocation site recorded here
    let log: EventLog<Spec> = EventLog::new(&world);
    let r = reg.clone();
    let l = log.clone();
    let programs: Vec<Program> = vec![Box::new(move |ctx| {
        ctx.pause();
        let id = l.invoke(ctx.proc_id(), RegisterOp::Write(5));
        r.write(5);
        l.respond(id, RegisterResp::Ack);
    })];
    let mut sched = RoundRobin::new();
    let outcome = world.run(programs, &mut sched, 100);
    assert!(outcome.completed);
    let pretty = log.pretty_transcript(&outcome);
    assert_eq!(
        pretty.len(),
        4,
        "pause, invoke, write, respond: {pretty:#?}"
    );
    assert_eq!(pretty[0], "p0 (pause)");
    assert_eq!(pretty[1], "p0 -> Write(5)");
    assert!(
        pretty[2].starts_with("p0 X.write(5) @ ") && pretty[2].contains("engine_equivalence.rs"),
        "step line must carry the allocation site: {}",
        pretty[2]
    );
    assert_eq!(pretty[3], "p0 <- Ack");

    // The StepRecord itself exposes the structured pieces.
    let step = outcome
        .steps()
        .find(|s| s.kind == AccessKind::Write)
        .unwrap();
    assert_eq!(&*step.reg, "X");
    assert!(step.site.file().ends_with("engine_equivalence.rs"));
    assert_eq!(step.label(), "X.write(5)");
}

/// Spec mismatch guard: a workload whose first invocation happens
/// before any pause is engine-dependent in the initial segment — the
/// engines still agree here because each process's first action is a
/// register access, which serialises them.
#[test]
fn unpaused_register_programs_still_agree() {
    let run = |threaded: bool| {
        let world = SimWorld::new(2);
        let mem = world.mem();
        let reg = mem.alloc("Y", 0u64);
        let r0 = reg.clone();
        let r1 = reg.clone();
        let programs: Vec<Program> = vec![
            Box::new(move |_| {
                r0.write(1);
                r0.write(2);
            }),
            Box::new(move |_| {
                let _ = r1.read();
            }),
        ];
        let mut sched = Scripted::new(vec![0, 1, 0]);
        if threaded {
            world.run_threaded(programs, &mut sched, 100)
        } else {
            world.run(programs, &mut sched, 100)
        }
    };
    assert_eq!(run(false).trace, run(true).trace);
}
