//! Integration tests for the simulator: determinism, event logging,
//! budget aborts, and end-to-end linearizability checking of a trivially
//! atomic object.

use sl_check::{check_linearizable, check_strongly_linearizable, HistoryTree};
use sl_mem::{Mem, Register};
use sl_sim::{explore, EventLog, Program, RoundRobin, Scripted, SeededRandom, SimWorld};
use sl_spec::types::RegisterSpec;
use sl_spec::{ProcId, RegisterOp, RegisterResp};

type Spec = RegisterSpec<u64>;

/// Two processes hammer a single simulated register while logging
/// high-level events; the recorded history must be linearizable (the
/// register *is* atomic by construction).
fn run_register_workload(seed: u64) -> (sl_sim::RunOutcome, EventLog<Spec>) {
    let world = SimWorld::new(2);
    let mem = world.mem();
    let reg = mem.alloc("X", None::<u64>);
    let log: EventLog<Spec> = EventLog::new(&world);

    let mut programs: Vec<Program> = Vec::new();
    for pid in 0..2 {
        let reg = reg.clone();
        let log = log.clone();
        programs.push(Box::new(move |ctx| {
            let p = ctx.proc_id();
            for i in 0..3u64 {
                if pid == 0 {
                    let id = log.invoke(p, RegisterOp::Write(i));
                    reg.write(Some(i));
                    log.respond(id, RegisterResp::Ack);
                } else {
                    let id = log.invoke(p, RegisterOp::Read);
                    let v = reg.read();
                    log.respond(id, RegisterResp::Value(v));
                }
            }
        }));
    }
    let mut sched = SeededRandom::new(seed);
    let outcome = world.run(programs, &mut sched, 10_000);
    (outcome, log)
}

#[test]
fn atomic_register_histories_are_linearizable() {
    for seed in 0..20 {
        let (outcome, log) = run_register_workload(seed);
        assert!(outcome.completed);
        let h = log.history();
        assert!(h.is_well_formed());
        assert!(
            check_linearizable(&Spec::new(), &h).is_some(),
            "seed {seed} produced a non-linearizable history for an atomic register"
        );
    }
}

#[test]
fn runs_are_deterministic_given_the_seed() {
    let (o1, l1) = run_register_workload(7);
    let (o2, l2) = run_register_workload(7);
    assert_eq!(o1.trace, o2.trace);
    assert_eq!(l1.transcript(&o1), l2.transcript(&o2));
}

#[test]
fn different_seeds_can_differ() {
    let traces: Vec<_> = (0..10).map(|s| run_register_workload(s).0.trace).collect();
    assert!(
        traces.iter().any(|t| *t != traces[0]),
        "ten seeds all produced identical interleavings — scheduler not random?"
    );
}

#[test]
fn step_budget_aborts_infinite_programs() {
    let world = SimWorld::new(1);
    let mem = world.mem();
    let reg = mem.alloc("X", 0u64);
    let outcome = world.run(
        vec![Box::new(move |_| loop {
            let v = reg.read();
            reg.write(v + 1);
        })],
        &mut RoundRobin::new(),
        50,
    );
    assert!(!outcome.completed);
    assert_eq!(outcome.total_steps(), 50);
}

#[test]
fn scripted_schedules_control_interleaving_exactly() {
    // p1 reads between p0's two writes iff the script says so.
    let run = |script: Vec<usize>| {
        let world = SimWorld::new(2);
        let mem = world.mem();
        let reg = mem.alloc("X", 0u64);
        let r0 = reg.clone();
        let r1 = reg;
        let seen = std::sync::Arc::new(std::sync::Mutex::new(0u64));
        let seen2 = seen.clone();
        let mut sched = Scripted::new(script);
        let outcome = world.run(
            vec![
                Box::new(move |_| {
                    r0.write(1);
                    r0.write(2);
                }),
                Box::new(move |_| {
                    *seen2.lock().unwrap() = r1.read();
                }),
            ],
            &mut sched,
            100,
        );
        assert!(outcome.completed);
        let value = *seen.lock().unwrap();
        value
    };
    assert_eq!(run(vec![0, 1, 0]), 1, "read between the writes sees 1");
    assert_eq!(run(vec![0, 0, 1]), 2, "read after both writes sees 2");
    assert_eq!(run(vec![1, 0, 0]), 0, "read before the writes sees 0");
}

/// The atomic simulated register, explored exhaustively over all
/// schedules of a tiny workload, is strongly linearizable (it is atomic,
/// so every step is its own linearization point).
#[test]
fn atomic_register_is_strongly_linearizable_under_exhaustive_exploration() {
    let run = |script: &[usize]| {
        let world = SimWorld::new(2);
        let mem = world.mem();
        let reg = mem.alloc("X", None::<u64>);
        let log: EventLog<Spec> = EventLog::new(&world);
        let r0 = reg.clone();
        let r1 = reg;
        let l0 = log.clone();
        let l1 = log.clone();
        let mut sched = Scripted::new(script.to_vec());
        let outcome = world.run(
            vec![
                Box::new(move |ctx| {
                    let id = l0.invoke(ctx.proc_id(), RegisterOp::Write(1));
                    r0.write(Some(1));
                    l0.respond(id, RegisterResp::Ack);
                }),
                Box::new(move |ctx| {
                    let id = l1.invoke(ctx.proc_id(), RegisterOp::Read);
                    let v = r1.read();
                    l1.respond(id, RegisterResp::Value(v));
                }),
            ],
            &mut sched,
            100,
        );
        (outcome, log)
    };

    let mut transcripts = Vec::new();
    let explored = explore(
        |script| {
            let (outcome, log) = run(script);
            transcripts.push(log.transcript(&outcome));
            outcome
        },
        100,
        |_, _| {},
    );
    assert!(explored.exhausted);
    assert_eq!(explored.runs, 2, "two steps, two interleavings");

    let tree = HistoryTree::from_transcripts(&transcripts);
    let report = check_strongly_linearizable(&Spec::new(), &tree);
    assert!(report.holds, "an atomic register is strongly linearizable");
}

/// World reuse: a reset world must replay a schedule **byte-identically**
/// to a freshly built one — same step records (register names, dense
/// ids, values, allocation sites), same transcript, same pretty
/// rendering (the format pinned by
/// `pretty_trace_format_carries_allocation_sites`). This is the
/// contract the pooled explorer relies on.
#[test]
fn reset_world_replays_byte_identical_transcripts() {
    let build = || {
        let world = SimWorld::new(2);
        let mem = world.mem();
        let reg = mem.alloc("X", None::<u64>);
        let log: EventLog<Spec> = EventLog::new(&world);
        (world, reg, log)
    };
    let programs = |reg: &sl_sim::SimRegister<Option<u64>>, log: &EventLog<Spec>| -> Vec<Program> {
        let r0 = reg.clone();
        let r1 = reg.clone();
        let l0 = log.clone();
        let l1 = log.clone();
        vec![
            Box::new(move |ctx| {
                ctx.pause();
                let id = l0.invoke(ctx.proc_id(), RegisterOp::Write(7));
                r0.write(Some(7));
                l0.respond(id, RegisterResp::Ack);
            }),
            Box::new(move |ctx| {
                ctx.pause();
                let id = l1.invoke(ctx.proc_id(), RegisterOp::Read);
                let v = r1.read();
                l1.respond(id, RegisterResp::Value(v));
            }),
        ]
    };
    let script = vec![0usize, 1, 0, 1, 0, 1, 0, 1];

    // Fresh world, one run: the reference.
    let (fresh_world, fresh_reg, fresh_log) = build();
    let mut sched = Scripted::new(script.clone());
    let reference = fresh_world.run(programs(&fresh_reg, &fresh_log), &mut sched, 100);
    assert!(reference.completed);

    // Reused world: run a *different* schedule first (dirtying memory
    // and history), then reset and replay the reference schedule.
    let (world, reg, log) = build();
    let mut other = Scripted::new(vec![1, 1, 0, 0, 1, 0, 0, 1]);
    let dirty = world.run(programs(&reg, &log), &mut other, 100);
    assert!(dirty.completed);
    assert_ne!(dirty.trace, reference.trace, "the dirtying run differs");
    world.reset();
    log.reset();
    assert_eq!(reg.peek(), None, "reset restores the initial value");
    let mut sched = Scripted::new(script);
    let replay = world.run(programs(&reg, &log), &mut sched, 100);
    assert_eq!(replay.trace, reference.trace, "byte-identical step records");
    assert_eq!(
        log.transcript(&replay),
        fresh_log.transcript(&reference),
        "byte-identical transcripts"
    );
    assert_eq!(
        log.pretty_transcript(&replay),
        fresh_log.pretty_transcript(&reference),
        "byte-identical pretty rendering (allocation sites preserved)"
    );
}

/// Registers allocated *during* a run are discarded by the reset, so a
/// replayed setup re-derives identical dense ids.
#[test]
fn reset_discards_in_run_allocations() {
    let world = SimWorld::new(1);
    let mem = world.mem();
    let reg = mem.alloc("X", 0u64);
    assert_eq!(world.register_count(), 1);
    let run = |world: &SimWorld, reg: &sl_sim::SimRegister<u64>, mem: &sl_sim::SimMem| {
        let r = reg.clone();
        let m = mem.clone();
        world.run(
            vec![Box::new(move |_| {
                let lazy = m.alloc("lazy", 1u64);
                r.write(lazy.read());
            })],
            &mut RoundRobin::new(),
            100,
        )
    };
    let first = run(&world, &reg, &mem);
    assert!(first.completed);
    assert_eq!(world.register_count(), 2, "in-run allocation recorded");
    world.reset();
    assert_eq!(world.register_count(), 1, "in-run allocation discarded");
    let second = run(&world, &reg, &mem);
    assert_eq!(first.trace, second.trace, "same dense ids on replay");
}

#[test]
fn proc_ctx_reports_identity() {
    let world = SimWorld::new(3);
    let ids = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let programs: Vec<Program> = (0..3)
        .map(|_| {
            let ids = ids.clone();
            Box::new(move |ctx: sl_sim::ProcCtx| {
                ids.lock().unwrap().push((ctx.pid(), ctx.proc_id()));
            }) as Program
        })
        .collect();
    let outcome = world.run(programs, &mut RoundRobin::new(), 100);
    assert!(outcome.completed);
    let mut got = ids.lock().unwrap().clone();
    got.sort();
    assert_eq!(got, vec![(0, ProcId(0)), (1, ProcId(1)), (2, ProcId(2))]);
}

#[test]
fn pauses_consume_decisions_but_not_shared_steps() {
    let world = SimWorld::new(2);
    let mem = world.mem();
    let reg = mem.alloc("X", 0u64);
    let r0 = reg.clone();
    let programs: Vec<Program> = vec![
        Box::new(move |ctx| {
            ctx.pause();
            r0.write(1);
            ctx.pause();
        }),
        Box::new(|ctx| {
            ctx.pause();
        }),
    ];
    let outcome = world.run(programs, &mut RoundRobin::new(), 100);
    assert!(outcome.completed);
    assert_eq!(
        outcome.total_steps(),
        4,
        "3 pauses + 1 write, all scheduled"
    );
    assert_eq!(outcome.shared_steps(), 1, "only the write touches memory");
    assert_eq!(outcome.shared_steps_of(0), 1);
    assert_eq!(outcome.shared_steps_of(1), 0);
}

#[test]
fn rmw_cells_take_one_step() {
    use sl_mem::RmwCell;
    let world = SimWorld::new(1);
    let mem = world.mem();
    let cell = mem.alloc_cell("C", 10u64);
    let c = cell.clone();
    let programs: Vec<Program> = vec![Box::new(move |_| {
        let old = c.update(|v| v + 5);
        assert_eq!(old, 10);
        assert_eq!(c.read(), 15);
    })];
    let outcome = world.run(programs, &mut RoundRobin::new(), 100);
    assert!(outcome.completed);
    assert_eq!(outcome.shared_steps(), 2, "one rmw + one read");
    let kinds: Vec<_> = outcome.steps().map(|s| s.kind).collect();
    assert_eq!(
        kinds,
        vec![sl_sim::AccessKind::Rmw, sl_sim::AccessKind::Read]
    );
}

#[test]
fn adaptive_scheduler_sees_register_contents_via_peek() {
    // A strong adversary: captures the register handle at setup and
    // decides based on its current value (the paper's full-information
    // scheduler).
    use sl_sim::FnScheduler;
    let world = SimWorld::new(2);
    let mem = world.mem();
    let reg = mem.alloc("X", 0u64);
    let r0 = reg.clone();
    let r1 = reg.clone();
    let spy = reg.clone();
    let seen = std::sync::Arc::new(std::sync::Mutex::new(0u64));
    let seen2 = seen.clone();
    // Adversary: let p0 run until X becomes 3, then switch to p1.
    let mut sched = FnScheduler(move |view: &sl_sim::SchedView<'_>| {
        if spy.peek() >= 3 && view.runnable.contains(&1) {
            1
        } else {
            *view.runnable.first().unwrap()
        }
    });
    let programs: Vec<Program> = vec![
        Box::new(move |_| {
            for i in 1..=10u64 {
                r0.write(i);
            }
        }),
        Box::new(move |_| {
            *seen2.lock().unwrap() = r1.read();
        }),
    ];
    let outcome = world.run(programs, &mut sched, 1000);
    assert!(outcome.completed);
    let v = *seen.lock().unwrap();
    assert_eq!(
        v, 3,
        "the adaptive adversary released the reader exactly at 3"
    );
}

/// The human-readable trace format is pinned: register steps carry the
/// `Mem::alloc` call site (this file), pauses render without a site,
/// and events render with arrows. (Moved here from the retired
/// engine-equivalence suite; the fiber VM is the only engine now, and
/// the portable-fibers parity run is the compatibility gate.)
#[test]
fn pretty_trace_format_carries_allocation_sites() {
    use sl_sim::{AccessKind, RoundRobin};

    let world = SimWorld::new(1);
    let mem = world.mem();
    let reg = mem.alloc("X", 0u64); // allocation site recorded here
    let log: EventLog<Spec> = EventLog::new(&world);
    let r = reg.clone();
    let l = log.clone();
    let programs: Vec<Program> = vec![Box::new(move |ctx| {
        ctx.pause();
        let id = l.invoke(ctx.proc_id(), RegisterOp::Write(5));
        r.write(5);
        l.respond(id, RegisterResp::Ack);
    })];
    let mut sched = RoundRobin::new();
    let outcome = world.run(programs, &mut sched, 100);
    assert!(outcome.completed);
    let pretty = log.pretty_transcript(&outcome);
    assert_eq!(
        pretty.len(),
        4,
        "pause, invoke, write, respond: {pretty:#?}"
    );
    assert_eq!(pretty[0], "p0 (pause)");
    assert_eq!(pretty[1], "p0 -> Write(5)");
    assert!(
        pretty[2].starts_with("p0 X.write(5) @ ") && pretty[2].contains("sim_integration.rs"),
        "step line must carry the allocation site: {}",
        pretty[2]
    );
    assert_eq!(pretty[3], "p0 <- Ack");

    // The StepRecord itself exposes the structured pieces.
    let step = outcome
        .steps()
        .find(|s| s.kind == AccessKind::Write)
        .unwrap();
    assert_eq!(step.reg_name(), "X");
    assert!(step.site().0.ends_with("sim_integration.rs"));
    assert_eq!(step.label(), "X.write(5)");
}
