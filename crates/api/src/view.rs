//! The typed result of a snapshot scan.

use std::fmt;
use std::ops::Index;

/// A consistent view of a snapshot object's components, as returned by
/// [`SnapshotOps::scan`](crate::SnapshotOps::scan).
///
/// This replaces the old `Vec<Option<V>>` return shape: a view is a
/// first-class value that additionally carries its **version** where the
/// substrate provides one (the paper's §4.1 versioned object: a number
/// that strictly increases with every update). For substrates without
/// versions, [`version`](View::version) is `None` — the type records
/// which capabilities a configuration actually has instead of silently
/// widening every result to the weakest shape.
#[derive(Clone, PartialEq, Eq)]
pub struct View<V> {
    components: Vec<Option<V>>,
    version: Option<u64>,
}

impl<V> View<V> {
    /// A view without version information.
    pub fn new(components: Vec<Option<V>>) -> Self {
        View {
            components,
            version: None,
        }
    }

    /// A view carrying the version reported by a §4.1 versioned
    /// substrate.
    pub fn versioned(components: Vec<Option<V>>, version: u64) -> Self {
        View {
            components,
            version: Some(version),
        }
    }

    /// The component of process `p` (`None` = `⊥`, never written).
    pub fn get(&self, p: usize) -> Option<&V> {
        self.components.get(p).and_then(|c| c.as_ref())
    }

    /// The version of this view, if the substrate is versioned (§4.1).
    pub fn version(&self) -> Option<u64> {
        self.version
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the view has no components (a 0-process object; does not
    /// mean "all ⊥").
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The components as a slice.
    pub fn components(&self) -> &[Option<V>] {
        &self.components
    }

    /// Consumes the view into the raw component vector (compatibility
    /// with code that still wants the old shape).
    pub fn into_vec(self) -> Vec<Option<V>> {
        self.components
    }

    /// Iterates over the components.
    pub fn iter(&self) -> std::slice::Iter<'_, Option<V>> {
        self.components.iter()
    }
}

impl<V> Index<usize> for View<V> {
    type Output = Option<V>;

    fn index(&self, p: usize) -> &Option<V> {
        &self.components[p]
    }
}

impl<V> IntoIterator for View<V> {
    type Item = Option<V>;
    type IntoIter = std::vec::IntoIter<Option<V>>;

    fn into_iter(self) -> Self::IntoIter {
        self.components.into_iter()
    }
}

impl<'a, V> IntoIterator for &'a View<V> {
    type Item = &'a Option<V>;
    type IntoIter = std::slice::Iter<'a, Option<V>>;

    fn into_iter(self) -> Self::IntoIter {
        self.components.iter()
    }
}

/// Views compare equal to plain component vectors, so existing
/// assertions keep reading naturally.
impl<V: PartialEq> PartialEq<Vec<Option<V>>> for View<V> {
    fn eq(&self, other: &Vec<Option<V>>) -> bool {
        &self.components == other
    }
}

impl<V: fmt::Debug> fmt::Debug for View<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.version {
            Some(v) => write!(f, "View(v{}, {:?})", v, self.components),
            None => write!(f, "View({:?})", self.components),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unversioned_view_roundtrip() {
        let v = View::new(vec![Some(1u64), None]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(0), Some(&1));
        assert_eq!(v.get(1), None);
        assert_eq!(v.version(), None);
        assert_eq!(v[0], Some(1));
        assert_eq!(v, vec![Some(1), None]);
        assert_eq!(v.into_vec(), vec![Some(1), None]);
    }

    #[test]
    fn versioned_view_carries_version() {
        let v = View::versioned(vec![Some(5u64)], 7);
        assert_eq!(v.version(), Some(7));
        assert_eq!(format!("{v:?}"), "View(v7, [Some(5)])");
    }

    #[test]
    fn iteration_matches_components() {
        let v = View::new(vec![None, Some(2u32)]);
        assert_eq!(v.iter().flatten().count(), 1);
        assert_eq!((&v).into_iter().count(), 2);
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![None, Some(2)]);
    }
}
