//! **sl-api** — the unified object API of the workspace.
//!
//! Three things, designed together:
//!
//! 1. **Typed guarantee levels.** Every object declares [`Lin`] or
//!    [`Strong`] as an associated type of [`SharedObject`], so the
//!    paper's central distinction — linearizable versus *strongly*
//!    linearizable — is visible to the compiler. A harness that is only
//!    sound against a strong adversary bounds on
//!    `Guarantee = Strong`, and handing it Algorithm 1 (linearizable
//!    only, Observation 4) is a compile error, not a silent bias.
//!
//! 2. **One handle model.** Every object — snapshot substrates,
//!    ABA-detecting registers, Algorithms 3/4, §4.5 derived objects,
//!    the §5 universal construction — is operated through per-process
//!    handles ([`SharedObject::handle`]) with family-specific operation
//!    traits ([`SnapshotOps`], [`AbaOps`], [`CounterOps`],
//!    [`MaxRegisterOps`], [`UniversalOps`]). At most one live handle
//!    per process per object, enforced by a debug-mode
//!    duplicate-handle panic. Scans return a typed [`View`] that
//!    carries the version where the substrate provides one (§4.1).
//!
//! 3. **One builder.** [`ObjectBuilder`] selects the object family,
//!    the substrate (double-collect, Afek, bounded §4.3, versioned
//!    §4.1, atomic-`R`), and the backend (`NativeMem`, `SimMem`, any
//!    `Mem`) fluently; the substrate lives in the builder's type, so
//!    the built object's guarantee is static.
//!
//! ```
//! use sl_api::{AbaOps, ObjectBuilder, SharedObject, Strong};
//! use sl_mem::{Mem, NativeMem};
//! use sl_spec::ProcId;
//!
//! // A randomized algorithm that is only correct against a strong
//! // adaptive adversary demands strong linearizability *in its type*.
//! fn coin_flip_consensus<M, O>(reg: &O)
//! where
//!     M: Mem,
//!     O: SharedObject<M, Guarantee = Strong>,
//!     O::Handle: AbaOps<u64>,
//! {
//!     let mut h = reg.handle(ProcId(0));
//!     h.dwrite(1);
//!     assert_eq!(h.dread().0, Some(1));
//! }
//!
//! let mem = NativeMem::new();
//! let builder = ObjectBuilder::on(&mem).processes(2);
//! coin_flip_consensus(&builder.aba_register::<u64>()); // Algorithm 2: ok
//! // coin_flip_consensus(&builder.lin_aba_register::<u64>());
//! // ^ Algorithm 1: compile error — `Lin` is not `Strong`.
//! ```

#![deny(unsafe_code)]

mod builder;
pub mod fuzz;
mod guarantee;
pub mod harness;
mod impls;
mod lin;
mod object;
pub mod sim;
mod view;

pub use builder::{
    Afek, AtomicR, BoundedHandshake, DoubleCollect, ObjectBuilder, Substrate, Versioned,
};
pub use guarantee::{Guarantee, Lin, Strong, StrongGuarantee};
pub use impls::{AfekSlSnapshot, AtomicRSlSnapshot, FullyBoundedSlSnapshot};
pub use lin::{LinSnap, LinSnapHandle};
pub use object::{
    AbaOps, CounterOps, MaxRegisterOps, ObjectHandle, SharedObject, SnapshotOps, UniversalOps,
    VersionedSnapshotOps,
};
pub use view::View;
