//! **sl-api** — the unified object API of the workspace.
//!
//! Three things, designed together:
//!
//! 1. **Typed guarantee levels.** Every object declares [`Lin`] or
//!    [`Strong`] as an associated type of [`SharedObject`], so the
//!    paper's central distinction — linearizable versus *strongly*
//!    linearizable — is visible to the compiler. A harness that is only
//!    sound against a strong adversary bounds on
//!    `Guarantee = Strong`, and handing it Algorithm 1 (linearizable
//!    only, Observation 4) is a compile error, not a silent bias.
//!
//! 2. **One handle model.** Every object — snapshot substrates,
//!    ABA-detecting registers, Algorithms 3/4, §4.5 derived objects,
//!    the §5 universal construction — is operated through per-process
//!    handles ([`SharedObject::handle`]) with family-specific operation
//!    traits ([`SnapshotOps`], [`AbaOps`], [`CounterOps`],
//!    [`MaxRegisterOps`], [`UniversalOps`]). At most one live handle
//!    per process per object, enforced by a debug-mode
//!    duplicate-handle panic. Scans return a typed [`View`] that
//!    carries the version where the substrate provides one (§4.1).
//!
//! 3. **One builder.** [`ObjectBuilder`] selects the object family,
//!    the substrate (double-collect, Afek, bounded §4.3, versioned
//!    §4.1, atomic-`R`), and the backend (`NativeMem`, `SimMem`, any
//!    `Mem`) fluently; the substrate lives in the builder's type, so
//!    the built object's guarantee is static.
//!
//! ```
//! use sl_api::{AbaOps, ObjectBuilder, SharedObject, Strong};
//! use sl_mem::{Mem, NativeMem};
//! use sl_spec::ProcId;
//!
//! // A randomized algorithm that is only correct against a strong
//! // adaptive adversary demands strong linearizability *in its type*.
//! fn coin_flip_consensus<M, O>(reg: &O)
//! where
//!     M: Mem,
//!     O: SharedObject<M, Guarantee = Strong>,
//!     O::Handle: AbaOps<u64>,
//! {
//!     let mut h = reg.handle(ProcId(0));
//!     h.dwrite(1);
//!     assert_eq!(h.dread().0, Some(1));
//! }
//!
//! let mem = NativeMem::new();
//! let builder = ObjectBuilder::on(&mem).processes(2);
//! coin_flip_consensus(&builder.aba_register::<u64>()); // Algorithm 2: ok
//! // coin_flip_consensus(&builder.lin_aba_register::<u64>());
//! // ^ Algorithm 1: compile error — `Lin` is not `Strong`.
//! ```
//!
//! # Distributed exploration
//!
//! [`sim::explore_object_dag_distributed`] runs the same schedule
//! exploration across a fleet of **worker processes**: delegated
//! subtree tasks are frozen, shipped over a length-prefixed,
//! checksummed frame protocol (`sl-dist`), explored remotely, and the
//! returned DAG shards merged — with runs/cut/pruned telemetry,
//! verdict, conflict depth, and the merged [`sl_check::TreeDag`]
//! structural hash **bit-identical to a sequential run at any worker
//! count**, including under SIGKILL of random workers mid-lease. The
//! worker side of the pipe is [`sim::serve_object_worker`]; both sides
//! must resolve the pinned workload name through one shared registry
//! (`sl-bench`'s `workloads` module is the exemplar), or schedules
//! would silently diverge.
//!
//! Failure handling is lease-based:
//!
//! ```text
//!           checkout/spawn        task frame
//!   [idle worker] ───────▶ [leased] ──────▶ waiting
//!        ▲                                   │ heartbeat: renew lease
//!        │ result frame (shard + telemetry)  │ result: settle lease
//!        └───────────────────────────────────┤
//!                                            │ missed deadline / EOF /
//!                                            │ torn or checksum-failed
//!                                            │ frame / nonzero exit
//!                                            ▼
//!                             revoke: SIGKILL + respawn
//!                                            │
//!                              capped exponential backoff
//!                                            │
//!                    retries left? ──yes──▶ re-lease to a fresh worker
//!                          │no
//!                          ▼
//!            quarantine: PoisonReport, partial outcome
//!                       (never a false PASS)
//! ```
//!
//! A revoked lease requeues the *same frozen task* under capped
//! exponential backoff; a task that exhausts its retry budget is
//! quarantined through the engine's `PoisonReport` path, so the
//! outcome is reported **partial** — a fleet failure can cost
//! coverage, never a verdict. When no worker can be spawned at all
//! (missing binary, exec failure), every dispatch is declined and the
//! run degrades gracefully to plain in-process exploration, still
//! bit-identical. Fleet shape, lease deadline, heartbeat cadence,
//! backoff, and retry budget are [`sl_dist::FleetConfig`] knobs;
//! dispatch/completion/revocation/quarantine counts come back as
//! [`sim::DistTelemetry`].

#![deny(unsafe_code)]

mod builder;
pub mod fuzz;
mod guarantee;
pub mod harness;
mod impls;
mod lin;
mod object;
pub mod sim;
mod view;

pub use builder::{
    Afek, AtomicR, BoundedHandshake, DoubleCollect, ObjectBuilder, Substrate, Versioned,
};
pub use guarantee::{Guarantee, Lin, Strong, StrongGuarantee};
pub use impls::{AfekSlSnapshot, AtomicRSlSnapshot, FullyBoundedSlSnapshot};
pub use lin::{LinSnap, LinSnapHandle};
pub use object::{
    AbaOps, CounterOps, MaxRegisterOps, ObjectHandle, SharedObject, SnapshotOps, UniversalOps,
    VersionedSnapshotOps,
};
pub use view::View;
