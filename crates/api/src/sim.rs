//! Model checking any built object under the schedule explorer.
//!
//! The builder constructs objects; this module runs them. Give
//! [`explore_object`] a factory (a closure building the object on a
//! fresh `SimMem` — typically an [`crate::ObjectBuilder`] chain), a
//! per-process workload of sequential-spec operations, and an
//! [`SimExplore`] budget; it enumerates adversary schedules on the step
//! VM with value-aware source-set DPOR pruning, streams every
//! transcript into an incremental prefix tree, and hands back an
//! [`ExploredObject`] ready for `sl_check`'s deciders:
//!
//! ```
//! use sl_api::sim::{explore_object, SimExplore};
//! use sl_api::ObjectBuilder;
//! use sl_spec::types::AbaSpec;
//! use sl_spec::AbaOp;
//!
//! // Theorem 12, bounded: Algorithm 2 is strongly linearizable over
//! // every schedule of one DWrite and one DRead.
//! let explored = explore_object::<AbaSpec<u64>, _, _>(
//!     |mem| ObjectBuilder::on(mem).processes(2).aba_register::<u64>(),
//!     &[vec![AbaOp::DWrite(9)], vec![AbaOp::DRead]],
//!     &SimExplore::default(),
//! );
//! assert!(explored.outcome.exhausted);
//! assert!(explored.check_strong(&AbaSpec::<u64>::new(2)).holds);
//! ```

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use sl_check::{
    check_linearizable, check_strongly_linearizable, check_strongly_linearizable_dag, DagShards,
    HistoryTree, StrongLinReport, TreeBuilder, TreeDag, TreeStep,
};
use sl_dist::{DistCoordinator, FleetConfig, WireSpec};
use sl_mem::Value;
use sl_sim::{
    EventLog, ExploreOutcome, Explorer, ProcCtx, Program, PruneMode, ReplayCtx, ReplayPool,
    ResumeSession, RunOutcome, Scheduler, Sharded, SimMem, SimWorld, StaticConflicts,
};
use sl_spec::types::{AbaSpec, CounterSpec, MaxRegisterSpec, SnapshotSpec};
use sl_spec::{
    AbaOp, AbaResp, CounterOp, CounterResp, History, MaxRegisterOp, MaxRegisterResp, ProcId,
    SeqSpec, SnapshotOp, SnapshotResp,
};

use crate::object::{AbaOps, CounterOps, MaxRegisterOps, ObjectHandle, SharedObject, SnapshotOps};

/// Drives a handle with operations of a sequential specification —
/// the bridge between the spec-level workloads the checker understands
/// and the per-family operation traits handles implement.
///
/// Blanket-implemented for every family's handles; objects whose
/// operations do not map onto a spec this way (e.g. the universal
/// construction, whose op type belongs to its `SimpleType`) can use
/// the `*_with` harness entry points with an explicit apply closure.
pub trait DriveOps<S: SeqSpec>: ObjectHandle {
    /// Executes `op` on the object and returns its response.
    fn drive(&mut self, op: &S::Op) -> S::Resp;
}

impl<V, H> DriveOps<SnapshotSpec<V>> for H
where
    V: Value + Eq + std::hash::Hash,
    H: SnapshotOps<V>,
{
    fn drive(&mut self, op: &SnapshotOp<V>) -> SnapshotResp<V> {
        match op {
            SnapshotOp::Update(v) => {
                self.update(v.clone());
                SnapshotResp::Ack
            }
            SnapshotOp::Scan => SnapshotResp::View(self.scan().into_vec()),
        }
    }
}

impl<H: CounterOps> DriveOps<CounterSpec> for H {
    fn drive(&mut self, op: &CounterOp) -> CounterResp {
        match op {
            CounterOp::Inc => {
                self.inc();
                CounterResp::Ack
            }
            CounterOp::Read => CounterResp::Value(self.read()),
        }
    }
}

impl<H: MaxRegisterOps> DriveOps<MaxRegisterSpec> for H {
    fn drive(&mut self, op: &MaxRegisterOp) -> MaxRegisterResp {
        match op {
            MaxRegisterOp::MaxWrite(v) => {
                self.max_write(*v);
                MaxRegisterResp::Ack
            }
            MaxRegisterOp::MaxRead => MaxRegisterResp::Value(self.max_read()),
        }
    }
}

impl<V, H> DriveOps<AbaSpec<V>> for H
where
    V: Value + Copy + Eq + std::hash::Hash,
    H: AbaOps<V>,
{
    fn drive(&mut self, op: &AbaOp<V>) -> AbaResp<V> {
        match op {
            AbaOp::DWrite(v) => {
                self.dwrite(*v);
                AbaResp::Ack
            }
            AbaOp::DRead => {
                let (v, flag) = self.dread();
                AbaResp::Value(v, flag)
            }
        }
    }
}

/// Budgets and knobs of one object exploration.
#[derive(Clone, Debug)]
pub struct SimExplore {
    /// Stop after this many executed schedules.
    pub max_runs: usize,
    /// Partial-order reduction level (default: value-aware source-set
    /// DPOR, [`PruneMode::ValueDpor`]).
    pub mode: PruneMode,
    /// Worker threads replaying schedules in parallel. Source-set DPOR
    /// partitions the schedule tree into delegated subtrees and is
    /// deterministic at any count; defaults to the `SL_EXPLORE_THREADS`
    /// environment variable (`0` = one per CPU, unset = 1).
    pub workers: usize,
    /// Per-run shared-memory step budget.
    pub step_budget: u64,
    /// Initial decision prefix: explore only schedules extending it.
    pub stem: Vec<usize>,
    /// Static conflict certificate: required by
    /// [`PruneMode::StaticDpor`], optionally consulted by
    /// [`PruneMode::OptimalDpor`], ignored by other modes. Licenses the
    /// invocation-placement relaxation and fail-closed-validates every
    /// observed race.
    pub statics: Option<Arc<StaticConflicts>>,
}

impl Default for SimExplore {
    fn default() -> Self {
        SimExplore {
            max_runs: 200_000,
            mode: PruneMode::default(),
            workers: sl_sim::env_workers(),
            step_budget: 10_000,
            stem: Vec::new(),
            statics: None,
        }
    }
}

/// The result of exploring one object: the merged prefix tree of every
/// transcript plus the exploration statistics.
pub struct ExploredObject<S: SeqSpec> {
    /// Prefix tree over all explored transcripts — the set strong
    /// linearizability quantifies over.
    pub tree: HistoryTree<S>,
    /// Runs, exhaustion, pruning statistics.
    pub outcome: ExploreOutcome,
}

impl<S: SeqSpec> ExploredObject<S> {
    /// Decides strong linearizability of the explored transcript tree.
    pub fn check_strong(&self, spec: &S) -> StrongLinReport {
        check_strongly_linearizable(spec, &self.tree)
    }

    /// Checks plain linearizability of every maximal transcript,
    /// returning the first failing history if any.
    pub fn first_non_linearizable(&self, spec: &S) -> Option<History<S>> {
        for transcript in self.tree.transcripts() {
            let h = history_of_transcript::<S>(&transcript);
            if check_linearizable(spec, &h).is_none() {
                return Some(h);
            }
        }
        None
    }
}

/// Extracts the high-level history from a transcript.
pub fn history_of_transcript<S: SeqSpec>(transcript: &[TreeStep<S>]) -> History<S> {
    let mut h = History::new();
    for step in transcript {
        if let TreeStep::Event(e) = step {
            match &e.kind {
                sl_spec::EventKind::Invoke(op) => h.invoke_with_id(e.op, e.proc, op.clone()),
                sl_spec::EventKind::Respond(r) => h.respond(e.op, r.clone()),
            }
        }
    }
    h
}

/// One simulated run of an object workload under a given scheduler.
pub struct SimRun<S: SeqSpec> {
    /// The raw run outcome (trace, decisions, step counts).
    pub outcome: RunOutcome,
    /// The recorded high-level history.
    pub history: History<S>,
    /// The full transcript (events + internal steps).
    pub transcript: Vec<TreeStep<S>>,
    /// Human-readable transcript with allocation sites.
    pub pretty: Vec<String>,
}

fn programs_for<S, O, A>(
    obj: &O,
    log: &EventLog<S>,
    workload: &[Vec<S::Op>],
    apply: &Arc<A>,
) -> Vec<Program>
where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
    A: Fn(&mut O::Handle, &S::Op) -> S::Resp + Send + Sync + 'static,
{
    workload
        .iter()
        .enumerate()
        .map(|(pid, ops)| {
            let mut handle = obj.handle(ProcId(pid));
            let log = log.clone();
            let ops = ops.clone();
            let apply = Arc::clone(apply);
            Box::new(move |ctx: ProcCtx| {
                for op in &ops {
                    // The adversary schedules the invocation itself.
                    ctx.pause();
                    let id = log.invoke(ctx.proc_id(), op.clone());
                    let resp = apply(&mut handle, op);
                    log.respond(id, resp);
                }
            }) as Program
        })
        .collect()
}

/// Runs one schedule of `workload` against a freshly built object,
/// recording everything (used by the fuzzer; exploration uses
/// [`explore_object`]). The object is built by `factory` on the fresh
/// world's memory; `apply` maps spec operations onto the handle.
pub fn run_object_schedule_with<S, O, F, A>(
    factory: &F,
    workload: &[Vec<S::Op>],
    apply: &Arc<A>,
    scheduler: &mut dyn Scheduler,
    step_budget: u64,
) -> SimRun<S>
where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
    F: Fn(&SimMem) -> O,
    A: Fn(&mut O::Handle, &S::Op) -> S::Resp + Send + Sync + 'static,
{
    let world = SimWorld::new(workload.len());
    let mem = world.mem();
    let obj = factory(&mem);
    let log: EventLog<S> = EventLog::new(&world);
    let programs = programs_for(&obj, &log, workload, apply);
    let outcome = world.run(programs, scheduler, step_budget);
    let history = log.history();
    let transcript = log.transcript(&outcome);
    let pretty = log.pretty_transcript(&outcome);
    SimRun {
        outcome,
        history,
        transcript,
        pretty,
    }
}

/// One worker's warm replay state: a world (registers, the object under
/// test, the event log) built once and reset between schedules —
/// [`ReplayPool`] owns the reset/replay/recycle ordering; this wrapper
/// adds the object and the workload application. Replays re-execute the
/// workload's programs (cheap closures over the same handles) on warm
/// fiber stacks and recycled trace buffers instead of building a fresh
/// world per schedule — the world-reuse half of the exploration
/// throughput work (the other half is parallel source-DPOR).
struct PooledWorld<S: SeqSpec, O> {
    pool: ReplayPool<S>,
    obj: O,
}

impl<S, O> PooledWorld<S, O>
where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
{
    fn new<F: Fn(&SimMem) -> O>(factory: &F, n: usize) -> Self {
        let world = SimWorld::new(n);
        let obj = factory(&world.mem());
        PooledWorld {
            pool: ReplayPool::new(world),
            obj,
        }
    }

    /// Runs one schedule; afterwards `self.pool.transcript()` holds the
    /// run's transcript.
    fn replay<A>(
        &mut self,
        workload: &[Vec<S::Op>],
        apply: &Arc<A>,
        scheduler: &mut dyn Scheduler,
        step_budget: u64,
    ) where
        A: Fn(&mut O::Handle, &S::Op) -> S::Resp + Send + Sync + 'static,
    {
        let obj = &self.obj;
        self.pool.replay(
            |log| programs_for(obj, log, workload, apply),
            scheduler,
            step_budget,
        );
    }
}

impl<S: SeqSpec, O> ReplayCtx for PooledWorld<S, O> {}

/// [`explore_object`] with an explicit apply closure, for objects whose
/// operations don't map onto a spec via [`DriveOps`] (e.g. the §5
/// universal construction).
pub fn explore_object_with<S, O, F, A>(
    factory: F,
    workload: &[Vec<S::Op>],
    apply: A,
    cfg: &SimExplore,
) -> ExploredObject<S>
where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
    F: Fn(&SimMem) -> O + Sync,
    A: Fn(&mut O::Handle, &S::Op) -> S::Resp + Send + Sync + 'static,
{
    let n = workload.len();
    assert!(n > 0, "workload must cover at least one process");
    let apply = Arc::new(apply);
    let builder: TreeBuilder<S> = TreeBuilder::new();
    let explorer = Explorer {
        max_runs: cfg.max_runs,
        mode: cfg.mode,
        workers: cfg.workers,
        stem: cfg.stem.clone(),
        statics: cfg.statics.clone(),
    };
    let outcome = explorer.explore_with(
        || PooledWorld::new(&factory, n),
        |pool: &mut PooledWorld<S, O>, driver| {
            pool.replay(workload, &apply, driver, cfg.step_budget);
            // The materialised tree accepts any ingestion order, so one
            // shared builder serves every worker.
            builder.ingest(pool.pool.transcript());
        },
    );
    ExploredObject {
        tree: builder.finish(),
        outcome,
    }
}

/// The result of a DAG-streamed exploration: the hash-consed transcript
/// set (what deep checks feed the memoised strong-lin checker) plus the
/// exploration statistics.
pub struct ExploredDag<S: SeqSpec> {
    /// Hash-consed DAG over all explored transcripts.
    pub dag: TreeDag<S>,
    /// Runs, exhaustion, pruning statistics.
    pub outcome: ExploreOutcome,
}

impl<S: SeqSpec> ExploredDag<S> {
    /// Decides strong linearizability of the explored transcript set
    /// with the memoised DAG checker.
    pub fn check_strong(&self, spec: &S) -> StrongLinReport {
        check_strongly_linearizable_dag(spec, &self.dag)
    }
}

/// [`explore_object_dag`] with an explicit apply closure.
///
/// Under source-set DPOR the transcripts stream straight into
/// hash-consed per-subtree [`DagBuilder`] shards (the prefix tree is
/// never materialised — this is the deep-exploration entry point);
/// under the frame modes, whose ingestion order is not depth-first, the
/// materialised tree is built first and converted.
pub fn explore_object_dag_with<S, O, F, A>(
    factory: F,
    workload: &[Vec<S::Op>],
    apply: A,
    cfg: &SimExplore,
) -> ExploredDag<S>
where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
    F: Fn(&SimMem) -> O + Sync,
    A: Fn(&mut O::Handle, &S::Op) -> S::Resp + Send + Sync + 'static,
{
    if !matches!(
        cfg.mode,
        PruneMode::SourceDpor
            | PruneMode::ValueDpor
            | PruneMode::StaticDpor
            | PruneMode::OptimalDpor
    ) {
        let explored = explore_object_with(factory, workload, apply, cfg);
        return ExploredDag {
            dag: TreeDag::from_tree(&explored.tree),
            outcome: explored.outcome,
        };
    }
    let n = workload.len();
    assert!(n > 0, "workload must cover at least one process");
    let apply = Arc::new(apply);
    let sink: Mutex<Vec<TreeDag<S>>> = Mutex::new(Vec::new());
    let explorer = Explorer {
        max_runs: cfg.max_runs,
        mode: cfg.mode,
        workers: cfg.workers,
        stem: cfg.stem.clone(),
        statics: cfg.statics.clone(),
    };
    // Each subtree the explorer hands a worker streams its DFS-ordered
    // transcripts into its own shard; [`TreeDag::merge`] unions the
    // finished shards after exploration.
    let outcome = explorer.explore_with(
        || Sharded {
            inner: PooledWorld::new(&factory, n),
            shards: DagShards::new(&sink),
        },
        |ctx: &mut Sharded<'_, S, PooledWorld<S, O>>, driver| {
            ctx.inner.replay(workload, &apply, driver, cfg.step_budget);
            ctx.shards.ingest(ctx.inner.pool.transcript());
        },
    );
    ExploredDag {
        dag: TreeDag::merge(sink.into_inner().unwrap()),
        outcome,
    }
}

/// [`explore_object_dag`] with crash-resilient checkpointing: the
/// explorer periodically snapshots its outstanding-task frontier into
/// `session.store` and, when a checkpoint already exists there, resumes
/// from it instead of starting over. The union of an interrupted run's
/// DAG and the resumed run's DAG is bit-identical (structural hash,
/// verdict, conflict depth) to the uninterrupted exploration at any
/// worker count — see `crates/api/tests/resume_dag.rs` for the gate.
///
/// The live shard hashes are recorded into every checkpoint as sorted
/// audit metadata, but resume validation deliberately passes
/// `expected_shards = None` on top of whatever the caller set: the
/// drain checkpoint is written inside the root's subtree bracket while
/// shards flush at `subtree_end`, so the drain-time recorded hashes
/// lag the post-drain on-disk DAG by design. The end-to-end identity
/// gate is the merged-union structural hash, not per-shard equality.
///
/// Fail-closed: panics (like [`Explorer::explore_resumable`]) when
/// `cfg.mode` is not a DPOR mode, and on any torn, stale, or doctored
/// checkpoint.
pub fn explore_object_dag_resumable<S, O, F>(
    factory: F,
    workload: &[Vec<S::Op>],
    cfg: &SimExplore,
    session: &ResumeSession<'_>,
) -> ExploredDag<S>
where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
    O::Handle: DriveOps<S>,
    F: Fn(&SimMem) -> O + Sync,
{
    explore_object_dag_resumable_with(
        factory,
        workload,
        |h: &mut O::Handle, op: &S::Op| h.drive(op),
        cfg,
        session,
    )
}

/// [`explore_object_dag_resumable`] with an explicit apply closure.
pub fn explore_object_dag_resumable_with<S, O, F, A>(
    factory: F,
    workload: &[Vec<S::Op>],
    apply: A,
    cfg: &SimExplore,
    session: &ResumeSession<'_>,
) -> ExploredDag<S>
where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
    F: Fn(&SimMem) -> O + Sync,
    A: Fn(&mut O::Handle, &S::Op) -> S::Resp + Send + Sync + 'static,
{
    let n = workload.len();
    assert!(n > 0, "workload must cover at least one process");
    let apply = Arc::new(apply);
    let sink: Mutex<Vec<TreeDag<S>>> = Mutex::new(Vec::new());
    let explorer = Explorer {
        max_runs: cfg.max_runs,
        mode: cfg.mode,
        workers: cfg.workers,
        stem: cfg.stem.clone(),
        statics: cfg.statics.clone(),
    };
    // Checkpoints record the hashes of the shards flushed so far —
    // sorted, so the snapshot is stable under worker scheduling.
    let shard_snapshot = || TreeDag::shard_hashes(&sink.lock().unwrap());
    let session = ResumeSession {
        store: session.store,
        policy: session.policy.clone(),
        fault: session.fault.clone(),
        // See the doc comment: drain-time recorded hashes lag the
        // post-drain flush, so per-shard expectations cannot hold here.
        expected_shards: None,
        shard_hashes: Some(&shard_snapshot),
    };
    let outcome = explorer.explore_resumable(
        || Sharded {
            inner: PooledWorld::new(&factory, n),
            shards: DagShards::new(&sink),
        },
        |ctx: &mut Sharded<'_, S, PooledWorld<S, O>>, driver| {
            ctx.inner.replay(workload, &apply, driver, cfg.step_budget);
            ctx.shards.ingest(ctx.inner.pool.transcript());
        },
        &session,
    );
    ExploredDag {
        dag: TreeDag::merge(sink.into_inner().unwrap()),
        outcome,
    }
}

/// Fleet telemetry of one distributed exploration — the coordinator's
/// counters, snapshotted after the run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DistTelemetry {
    /// Task frames written to workers (including re-leases).
    pub dispatched: u64,
    /// Results accepted from workers.
    pub completed: u64,
    /// Leases revoked (missed deadline, torn frame, checksum failure,
    /// dead pipe, nonzero exit).
    pub revoked: u64,
    /// Subtrees quarantined after the retry budget — the outcome is
    /// `partial` whenever this is nonzero.
    pub quarantined: u64,
    /// Dispatches declined (fleet busy or degraded): ran in-process.
    pub declined: u64,
    /// Workers killed by the fault-matrix hook.
    pub chaos_kills: u64,
    /// Whether the run fell back to pure in-process exploration
    /// because no worker could be spawned.
    pub degraded: bool,
}

/// The result of a distributed exploration: the merged DAG (local +
/// remote shards, one symbolized label space), the exploration
/// statistics, and the fleet telemetry.
pub struct ExploredDistDag<S: SeqSpec> {
    /// Hash-consed DAG over all explored transcripts, **symbolized**
    /// (compare its structural hash against a sequential run's
    /// `dag.symbolize()`).
    pub dag: TreeDag<S>,
    /// Runs, exhaustion, pruning statistics — bit-identical to the
    /// sequential outcome at any worker-process count.
    pub outcome: ExploreOutcome,
    /// Coordinator counters.
    pub fleet: DistTelemetry,
}

impl<S: SeqSpec> ExploredDistDag<S> {
    /// Decides strong linearizability of the explored transcript set
    /// with the memoised DAG checker.
    pub fn check_strong(&self, spec: &S) -> StrongLinReport {
        check_strongly_linearizable_dag(spec, &self.dag)
    }
}

/// [`explore_object_dag_with`], with subtree tasks farmed to a fleet of
/// worker *processes* (see [`sl_dist`]): the explorer's worker threads
/// offer every frozen subtree to the lease-based coordinator, which
/// either returns the subtree's result from a worker process or
/// declines (fleet busy, or degraded after a spawn failure), in which
/// case the subtree runs in-process. Either way the merged run is
/// bit-identical to the sequential one — same verdict, conflict depth,
/// counters, and merged-DAG structural hash — or honestly `partial`
/// through the quarantine path. Never a false PASS.
///
/// `workload_name` pins the fleet's identity: the worker binary (see
/// [`serve_object_worker`]) must `hello` with the same name and prune
/// mode or the coordinator refuses it fail-closed. The explorer always
/// runs with at least two threads — subtree tasks are only published
/// when there is someone to share them with.
pub fn explore_object_dag_distributed<S, O, F, A>(
    factory: F,
    workload: &[Vec<S::Op>],
    apply: A,
    cfg: &SimExplore,
    fleet: FleetConfig,
    workload_name: &str,
) -> ExploredDistDag<S>
where
    S: WireSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
    F: Fn(&SimMem) -> O + Sync,
    A: Fn(&mut O::Handle, &S::Op) -> S::Resp + Send + Sync + 'static,
{
    let n = workload.len();
    assert!(n > 0, "workload must cover at least one process");
    let apply = Arc::new(apply);
    let local_sink: Mutex<Vec<TreeDag<S>>> = Mutex::new(Vec::new());
    let remote_sink: Mutex<Vec<TreeDag<S>>> = Mutex::new(Vec::new());
    let coordinator = DistCoordinator::new(fleet, workload_name, cfg.mode.name(), &remote_sink);
    let explorer = Explorer {
        max_runs: cfg.max_runs,
        mode: cfg.mode,
        // Tasks are only frozen for sharing when a sibling thread could
        // steal them; a single-threaded explorer would never dispatch.
        workers: cfg.workers.max(2),
        stem: cfg.stem.clone(),
        statics: cfg.statics.clone(),
    };
    let outcome = explorer.explore_dispatched(
        || Sharded {
            inner: PooledWorld::new(&factory, n),
            shards: DagShards::new(&local_sink),
        },
        |ctx: &mut Sharded<'_, S, PooledWorld<S, O>>, driver| {
            ctx.inner.replay(workload, &apply, driver, cfg.step_budget);
            ctx.shards.ingest(ctx.inner.pool.transcript());
        },
        &coordinator,
    );
    coordinator.finish();
    let fleet = DistTelemetry {
        dispatched: coordinator.stats.dispatched.load(Ordering::SeqCst),
        completed: coordinator.stats.completed.load(Ordering::SeqCst),
        revoked: coordinator.stats.revoked.load(Ordering::SeqCst),
        quarantined: coordinator.stats.quarantined.load(Ordering::SeqCst),
        declined: coordinator.stats.declined.load(Ordering::SeqCst),
        chaos_kills: coordinator.stats.chaos_kills.load(Ordering::SeqCst),
        degraded: coordinator.is_degraded(),
    };
    drop(coordinator); // releases the borrow of `remote_sink`
                       // Local shards are packed (process-local step codes); remote shards
                       // arrived symbolized. Symbolize the local ones so the merge dedupes
                       // across the process boundary — one label space for the whole DAG.
    let shards: Vec<TreeDag<S>> = local_sink
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|d| d.symbolize())
        .chain(remote_sink.into_inner().unwrap())
        .collect();
    ExploredDistDag {
        dag: TreeDag::merge(shards),
        outcome,
        fleet,
    }
}

/// The worker-process half of [`explore_object_dag_distributed`]: a
/// serve loop a worker `main` calls with the *same* factory, workload,
/// apply closure, and exploration config the coordinator uses. Each
/// leased task is thawed and explored in-process; the reply carries the
/// subtree's counters plus its symbolized DAG shard.
pub fn serve_object_worker<S, O, F, A>(
    workload_name: &str,
    factory: F,
    workload: &[Vec<S::Op>],
    apply: A,
    cfg: &SimExplore,
) -> Result<(), String>
where
    S: WireSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
    F: Fn(&SimMem) -> O + Sync,
    A: Fn(&mut O::Handle, &S::Op) -> S::Resp + Send + Sync + 'static,
{
    let n = workload.len();
    assert!(n > 0, "workload must cover at least one process");
    let apply = Arc::new(apply);
    let explorer = Explorer {
        max_runs: cfg.max_runs,
        mode: cfg.mode,
        workers: cfg.workers,
        stem: cfg.stem.clone(),
        statics: cfg.statics.clone(),
    };
    sl_dist::serve::<S, _>(workload_name, cfg.mode.name(), |task| {
        let sink: Mutex<Vec<TreeDag<S>>> = Mutex::new(Vec::new());
        let result = explorer.explore_frozen_task(
            || Sharded {
                inner: PooledWorld::new(&factory, n),
                shards: DagShards::new(&sink),
            },
            |ctx: &mut Sharded<'_, S, PooledWorld<S, O>>, driver| {
                ctx.inner.replay(workload, &apply, driver, cfg.step_budget);
                ctx.shards.ingest(ctx.inner.pool.transcript());
            },
            task,
        );
        let dag = TreeDag::merge(sink.into_inner().unwrap()).symbolize();
        (result, dag)
    })
}

/// Explores every adversary schedule of `workload` (within the budgets)
/// against the object built by `factory`, streaming transcripts into a
/// hash-consed [`TreeDag`] — the entry point for deep exhaustive
/// checks, where the materialised prefix tree would not fit in memory.
pub fn explore_object_dag<S, O, F>(
    factory: F,
    workload: &[Vec<S::Op>],
    cfg: &SimExplore,
) -> ExploredDag<S>
where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
    O::Handle: DriveOps<S>,
    F: Fn(&SimMem) -> O + Sync,
{
    explore_object_dag_with(
        factory,
        workload,
        |h: &mut O::Handle, op: &S::Op| h.drive(op),
        cfg,
    )
}

/// Explores every adversary schedule of `workload` (within the
/// budgets) against the object built by `factory`, streaming the
/// transcripts into a prefix tree. See the module docs for an example.
pub fn explore_object<S, O, F>(
    factory: F,
    workload: &[Vec<S::Op>],
    cfg: &SimExplore,
) -> ExploredObject<S>
where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
    O::Handle: DriveOps<S>,
    F: Fn(&SimMem) -> O + Sync,
{
    explore_object_with(
        factory,
        workload,
        |h: &mut O::Handle, op: &S::Op| h.drive(op),
        cfg,
    )
}
