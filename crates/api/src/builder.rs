//! The fluent [`ObjectBuilder`]: one entry point for every object
//! family, substrate, and backend in the workspace.
//!
//! A builder is created *on* a backend (`NativeMem` for real threads,
//! `sl_sim::SimMem` for the deterministic adversarial simulator — any
//! `M: Mem`), sized with [`processes`](ObjectBuilder::processes), moved
//! between substrates with [`double_collect`](ObjectBuilder::double_collect)
//! / [`afek`](ObjectBuilder::afek) /
//! [`bounded_handshake`](ObjectBuilder::bounded_handshake) /
//! [`versioned`](ObjectBuilder::versioned) /
//! [`atomic_r`](ObjectBuilder::atomic_r), and finished with an object
//! family method. The substrate is part of the builder's *type*, so the
//! built object's guarantee level is known at compile time:
//!
//! ```
//! use sl_api::{ObjectBuilder, SharedObject, SnapshotOps, Strong};
//! use sl_mem::NativeMem;
//! use sl_spec::ProcId;
//!
//! let mem = NativeMem::new();
//! // Theorem 2: strongly linearizable snapshot, bounded §4.3 substrate.
//! let snap = ObjectBuilder::on(&mem)
//!     .processes(3)
//!     .bounded_handshake()
//!     .snapshot::<u64>();
//! let mut h = snap.handle(ProcId(0));
//! h.update(7);
//! assert_eq!(h.scan(), vec![Some(7), None, None]);
//!
//! fn requires_strong<O: SharedObject<NativeMem, Guarantee = Strong>>(_: &O) {}
//! requires_strong(&snap); // compiles: Theorem 2
//! ```
//!
//! | Builder call | Paper item |
//! |---|---|
//! | `.aba_register()` | Algorithm 2 (Theorem 1) |
//! | `.lin_aba_register()` | Algorithm 1 (Observation 4: `Lin`!) |
//! | `.double_collect().snapshot()` | Algorithms 3/4 over §3-substrate (Theorem 2) |
//! | `.bounded_handshake().snapshot()` | fully bounded Theorem 2 headline |
//! | `.versioned().snapshot()` | §4.1 Denysyuk–Woelfel construction |
//! | `.counter()` / `.max_register()` | §4.5 derived objects |
//! | `.universal(ty)` | §5 universal construction (Theorems 54/3) |

use std::marker::PhantomData;

use sl_core::aba::{AtomicAbaRegister, AwAbaRegister, SlAbaRegister};
use sl_core::{
    AtomicSnapshot, BoundedMaxRegister, BoundedSlSnapshot, DcSlSnapshot, SlCounter, SlSnapshot,
    SnapshotMaxRegister, VersionedSlSnapshot,
};
use sl_mem::{Mem, Value};
use sl_snapshot::{AfekSnapshot, BoundedAfekSnapshot, DoubleCollectSnapshot};
use sl_universal::{NodeRef, SimpleType, Universal};

use crate::impls::{AfekSlSnapshot, AtomicRSlSnapshot, FullyBoundedSlSnapshot};
use crate::lin::LinSnap;

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::DoubleCollect {}
    impl Sealed for super::Afek {}
    impl Sealed for super::BoundedHandshake {}
    impl Sealed for super::Versioned {}
    impl Sealed for super::AtomicR {}
}

/// A substrate selection for the snapshot-based object families.
/// Sealed; the five selections mirror the paper's configurations.
pub trait Substrate: sealed::Sealed + Copy + Default + Send + Sync + 'static {
    /// Human-readable name, for tables and traces.
    const NAME: &'static str;
}

/// Lock-free clean double collect (Afek et al. §3) under Algorithms 3/4
/// — the all-registers Theorem 2 configuration. The default.
#[derive(Clone, Copy, Debug, Default)]
pub struct DoubleCollect;

impl Substrate for DoubleCollect {
    const NAME: &'static str = "double-collect";
}

/// Wait-free helping snapshot (Afek et al. §4) under Algorithms 3/4.
#[derive(Clone, Copy, Debug, Default)]
pub struct Afek;

impl Substrate for Afek {
    const NAME: &'static str = "afek";
}

/// The bounded §4.3 configuration: handshake-based wait-free substrate
/// (no counters) under Algorithm 3 — the paper's headline bounded-space
/// artifact.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoundedHandshake;

impl Substrate for BoundedHandshake {
    const NAME: &'static str = "bounded-handshake";
}

/// The §4.1 Denysyuk–Woelfel versioned-object construction — strongly
/// linearizable with *unbounded* space, the baseline Theorem 2 improves
/// on. Scans through this substrate carry versions.
#[derive(Clone, Copy, Debug, Default)]
pub struct Versioned;

impl Substrate for Versioned {
    const NAME: &'static str = "versioned";
}

/// Algorithm 3 as stated: double-collect substrate with an **atomic**
/// ABA-detecting register `R`, before §4.3 composability replaces it
/// with Algorithm 2. Useful for isolating Algorithm 3 in model checking.
#[derive(Clone, Copy, Debug, Default)]
pub struct AtomicR;

impl Substrate for AtomicR {
    const NAME: &'static str = "double-collect+atomic-R";
}

/// Fluent builder for every object family; see the module docs.
#[derive(Clone, Debug)]
pub struct ObjectBuilder<M: Mem, S: Substrate = DoubleCollect> {
    mem: M,
    n: usize,
    _substrate: PhantomData<S>,
}

impl<M: Mem> ObjectBuilder<M, DoubleCollect> {
    /// Starts building on backend `mem` with the default double-collect
    /// substrate. Call [`processes`](ObjectBuilder::processes) before a
    /// family method.
    pub fn on(mem: &M) -> Self {
        ObjectBuilder {
            mem: mem.clone(),
            n: 0,
            _substrate: PhantomData,
        }
    }
}

impl<M: Mem, S: Substrate> ObjectBuilder<M, S> {
    /// Sets the number of processes the object serves.
    pub fn processes(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        self.n = n;
        self
    }

    fn n(&self) -> usize {
        assert!(
            self.n > 0,
            "ObjectBuilder: call .processes(n) before building an object"
        );
        self.n
    }

    /// Switches to an explicitly named substrate.
    pub fn substrate<S2: Substrate>(self) -> ObjectBuilder<M, S2> {
        ObjectBuilder {
            mem: self.mem,
            n: self.n,
            _substrate: PhantomData,
        }
    }

    /// Selects the lock-free double-collect substrate (the default).
    pub fn double_collect(self) -> ObjectBuilder<M, DoubleCollect> {
        self.substrate()
    }

    /// Selects the wait-free Afek et al. helping substrate.
    pub fn afek(self) -> ObjectBuilder<M, Afek> {
        self.substrate()
    }

    /// Selects the bounded §4.3 handshake substrate.
    pub fn bounded_handshake(self) -> ObjectBuilder<M, BoundedHandshake> {
        self.substrate()
    }

    /// Selects the §4.1 versioned-object construction.
    pub fn versioned(self) -> ObjectBuilder<M, Versioned> {
        self.substrate()
    }

    /// Selects Algorithm 3 with an atomic `R` (model-checking aid).
    pub fn atomic_r(self) -> ObjectBuilder<M, AtomicR> {
        self.substrate()
    }

    // -- substrate-independent families ------------------------------

    /// Algorithm 2: the lock-free **strongly linearizable**
    /// ABA-detecting register (Theorem 1).
    pub fn aba_register<V: Value>(&self) -> SlAbaRegister<V, M> {
        SlAbaRegister::new(&self.mem, self.n())
    }

    /// Algorithm 1: the wait-free but merely **linearizable**
    /// ABA-detecting register (Observation 4). Its type carries
    /// [`Lin`](crate::Lin), so strong-only harnesses reject it at
    /// compile time.
    pub fn lin_aba_register<V: Value>(&self) -> AwAbaRegister<V, M> {
        AwAbaRegister::new(&self.mem, self.n())
    }

    /// An atomic (one step per operation) ABA-detecting register — the
    /// base object `R` of Algorithm 3 as stated.
    pub fn atomic_aba_register<V: Value>(&self) -> AtomicAbaRegister<V, M> {
        AtomicAbaRegister::new(&self.mem, "R")
    }

    /// An atomic snapshot (one step per operation): the model object of
    /// the Aspnes–Herlihy construction's `root` and of Algorithm 4's
    /// atomic `S`.
    pub fn atomic_snapshot<V: Value>(&self) -> AtomicSnapshot<V, M> {
        AtomicSnapshot::new(&self.mem, self.n())
    }

    /// The Aspnes–Attiya–Censor bounded trie max-register over values
    /// `[0, capacity)` — wait-free and linearizable, **not** strongly
    /// linearizable (the type says [`Lin`](crate::Lin); the model
    /// checker exhibits the violation). For a strongly linearizable
    /// max-register use [`max_register`](Self::max_register).
    pub fn trie_max_register(&self, capacity: u64) -> BoundedMaxRegister<M> {
        BoundedMaxRegister::new(&self.mem, capacity)
    }
}

macro_rules! snapshot_families {
    ($marker:ty, $snapshot:ident, $build:expr) => {
        impl<M: Mem> ObjectBuilder<M, $marker> {
            /// The strongly linearizable snapshot of this substrate
            /// configuration.
            pub fn snapshot<V: Value>(&self) -> $snapshot<V, M> {
                let build: fn(&M, usize) -> $snapshot<V, M> = $build;
                build(&self.mem, self.n())
            }

            /// §4.5: a strongly linearizable counter derived from this
            /// configuration's snapshot (one snapshot operation per
            /// counter operation).
            pub fn counter(&self) -> SlCounter<$snapshot<u64, M>> {
                SlCounter::new(self.snapshot())
            }

            /// §4.5: a strongly linearizable max-register derived from
            /// this configuration's snapshot.
            pub fn max_register(&self) -> SnapshotMaxRegister<$snapshot<u64, M>> {
                SnapshotMaxRegister::new(self.snapshot())
            }

            /// §5: the universal construction for simple type `ty` over
            /// this configuration's snapshot (Theorems 54/3).
            pub fn universal<T: SimpleType>(
                &self,
                ty: T,
            ) -> Universal<T, $snapshot<NodeRef<T>, M>> {
                let n = self.n();
                Universal::new(ty, self.snapshot(), n)
            }
        }
    };
}

snapshot_families!(DoubleCollect, DcSlSnapshot, |mem, n| {
    SlSnapshot::new(
        DoubleCollectSnapshot::new(mem, n),
        SlAbaRegister::new(mem, n),
        n,
    )
});
snapshot_families!(Afek, AfekSlSnapshot, |mem, n| {
    SlSnapshot::new(AfekSnapshot::new(mem, n), SlAbaRegister::new(mem, n), n)
});
snapshot_families!(AtomicR, AtomicRSlSnapshot, |mem, n| {
    SlSnapshot::new(
        DoubleCollectSnapshot::new(mem, n),
        AtomicAbaRegister::new(mem, "R"),
        n,
    )
});
snapshot_families!(BoundedHandshake, FullyBoundedSlSnapshot, |mem, n| {
    BoundedSlSnapshot::new(
        BoundedAfekSnapshot::new(mem, n),
        SlAbaRegister::new(mem, n),
        n,
    )
});
snapshot_families!(Versioned, VersionedSlSnapshot, |mem, n| {
    VersionedSlSnapshot::new(mem, n)
});

macro_rules! lin_snapshot_family {
    ($marker:ty, $substrate:ident, $build:expr) => {
        impl<M: Mem> ObjectBuilder<M, $marker> {
            /// The raw linearizable substrate of this configuration as
            /// a first-class object, with guarantee
            /// [`Lin`](crate::Lin) — *not* strongly linearizable.
            pub fn lin_snapshot<V: Value>(&self) -> LinSnap<V, $substrate<V, M>> {
                let build: fn(&M, usize) -> $substrate<V, M> = $build;
                LinSnap::new(build(&self.mem, self.n()))
            }
        }
    };
}

lin_snapshot_family!(DoubleCollect, DoubleCollectSnapshot, |mem, n| {
    DoubleCollectSnapshot::new(mem, n)
});
lin_snapshot_family!(Afek, AfekSnapshot, |mem, n| AfekSnapshot::new(mem, n));
lin_snapshot_family!(BoundedHandshake, BoundedAfekSnapshot, |mem, n| {
    BoundedAfekSnapshot::new(mem, n)
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{
        AbaOps, CounterOps, MaxRegisterOps, SharedObject, SnapshotOps, UniversalOps,
        VersionedSnapshotOps,
    };
    use crate::{Lin, Strong};
    use sl_mem::NativeMem;
    use sl_spec::{CounterOp, CounterResp, ProcId};
    use sl_universal::types::CounterType;

    fn requires_strong<M: Mem, O: SharedObject<M, Guarantee = Strong>>(_: &O) {}
    fn requires_lin<M: Mem, O: SharedObject<M, Guarantee = Lin>>(_: &O) {}

    #[test]
    fn every_substrate_builds_a_strong_snapshot() {
        let mem = NativeMem::new();
        let b = ObjectBuilder::on(&mem).processes(2);
        requires_strong(&b.clone().double_collect().snapshot::<u64>());
        requires_strong(&b.clone().afek().snapshot::<u64>());
        requires_strong(&b.clone().bounded_handshake().snapshot::<u64>());
        requires_strong(&b.clone().versioned().snapshot::<u64>());
        requires_strong(&b.clone().atomic_r().snapshot::<u64>());
    }

    #[test]
    fn lin_objects_carry_lin_in_their_type() {
        let mem = NativeMem::new();
        let b = ObjectBuilder::on(&mem).processes(2);
        requires_lin(&b.lin_snapshot::<u64>());
        requires_lin(&b.clone().afek().lin_snapshot::<u64>());
        requires_lin(&b.clone().bounded_handshake().lin_snapshot::<u64>());
        requires_lin(&b.lin_aba_register::<u64>());
        requires_lin(&b.trie_max_register(64));
    }

    #[test]
    fn guarantee_propagates_through_derived_objects() {
        let mem = NativeMem::new();
        let b = ObjectBuilder::on(&mem).processes(2);
        requires_strong(&b.counter());
        requires_strong(&b.max_register());
        requires_strong(&b.universal(CounterType));
        requires_strong(&b.aba_register::<u64>());
        requires_strong(&b.atomic_aba_register::<u64>());
        requires_strong(&b.atomic_snapshot::<u64>());
    }

    #[test]
    fn built_objects_operate_through_the_unified_handles() {
        let mem = NativeMem::new();
        let b = ObjectBuilder::on(&mem).processes(2);

        let snap = b.snapshot::<u64>();
        let mut s0 = snap.handle(ProcId(0));
        s0.update(5);
        assert_eq!(s0.scan(), vec![Some(5), None]);

        // Calls go through the unified ops traits explicitly, proving
        // the trait surface (inherent methods would otherwise shadow).
        let counter = b.counter();
        let mut c0 = SharedObject::<NativeMem>::handle(&counter, ProcId(0));
        CounterOps::inc(&mut c0);
        CounterOps::inc(&mut c0);
        assert_eq!(CounterOps::read(&mut c0), 2);

        let maxreg = b.max_register();
        let mut m1 = SharedObject::<NativeMem>::handle(&maxreg, ProcId(1));
        MaxRegisterOps::max_write(&mut m1, 9);
        assert_eq!(MaxRegisterOps::max_read(&mut m1), 9);

        let aba = b.aba_register::<u64>();
        let mut w = aba.handle(ProcId(0));
        let mut r = aba.handle(ProcId(1));
        AbaOps::dwrite(&mut w, 3);
        assert_eq!(AbaOps::dread(&mut r), (Some(3), true));

        let uni = b.universal(CounterType);
        let mut u0 = SharedObject::<NativeMem>::handle(&uni, ProcId(0));
        UniversalOps::execute(&mut u0, CounterOp::Inc);
        assert_eq!(
            UniversalOps::execute(&mut u0, CounterOp::Read),
            CounterResp::Value(1)
        );
    }

    #[test]
    fn versioned_substrate_scans_carry_versions() {
        let mem = NativeMem::new();
        let snap = ObjectBuilder::on(&mem)
            .processes(2)
            .versioned()
            .snapshot::<u64>();
        let mut h = SharedObject::<NativeMem>::handle(&snap, ProcId(0));
        h.update(4);
        let view = h.scan_versioned();
        assert_eq!(view.get(0), Some(&4));
        assert!(view.version().is_some(), "§4.1 views are versioned");
    }

    #[test]
    #[should_panic(expected = "call .processes(n)")]
    fn forgetting_processes_is_caught() {
        let mem = NativeMem::new();
        let _ = ObjectBuilder::on(&mem).snapshot::<u64>();
    }

    #[test]
    fn builder_works_under_the_simulator_backend() {
        // Construction only: operating SimMem registers requires a
        // running SimWorld (exercised by the builder matrix test).
        let world = sl_sim::SimWorld::new(2);
        let mem = world.mem();
        let b = ObjectBuilder::on(&mem).processes(2);
        let _snap = b.snapshot::<u64>();
        let _aba = b.aba_register::<u64>();
        let _counter = b.clone().bounded_handshake().counter();
    }
}
