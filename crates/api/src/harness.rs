//! Harness entry points: drive a [`SharedObject`] through a workload
//! and round-trip the recorded history through the `sl-check`
//! decision procedures.
//!
//! These are the checker-facing entry points consumer code should use
//! (the raw `sl_check` functions remain available for histories
//! produced elsewhere, e.g. by the simulator's `EventLog`). Each runner
//! operates the object exclusively through unified handles, so the same
//! code exercises every family × substrate × backend combination — the
//! builder matrix test is built on this module.

use sl_check::{check_linearizable, check_strongly_linearizable, HistoryTree, StrongLinReport};
use sl_mem::{Mem, Value};
use sl_spec::types::SnapshotSpec;
use sl_spec::{History, ProcId, SeqSpec, SnapshotOp, SnapshotResp};

use crate::object::{CounterOps, MaxRegisterOps, SharedObject, SnapshotOps};

/// One step of a single-threaded (but cross-handle interleaved)
/// snapshot workload.
#[derive(Clone, Debug)]
pub enum SnapStep<V> {
    /// Process `p` updates its component.
    Update(ProcId, V),
    /// Process `p` scans.
    Scan(ProcId),
}

/// Runs a snapshot workload through per-process handles and records the
/// resulting history against the paper's snapshot specification.
///
/// Operations are executed one at a time (each completes before the
/// next is invoked), so the recorded history is sequential — the
/// round-trip check then verifies the *object's responses* are
/// consistent with the sequential specification.
pub fn record_snapshot_history<V, M, O>(
    obj: &O,
    n: usize,
    script: &[SnapStep<V>],
) -> History<SnapshotSpec<V>>
where
    V: Value + Eq + std::hash::Hash,
    M: Mem,
    O: SharedObject<M>,
    O::Handle: SnapshotOps<V>,
{
    let mut handles: Vec<O::Handle> = ProcId::all(n).map(|p| obj.handle(p)).collect();
    let mut h = History::new();
    for step in script {
        match step {
            SnapStep::Update(p, v) => {
                let id = h.invoke(*p, SnapshotOp::Update(v.clone()));
                handles[p.index()].update(v.clone());
                h.respond(id, SnapshotResp::Ack);
            }
            SnapStep::Scan(p) => {
                let id = h.invoke(*p, SnapshotOp::Scan);
                let view = handles[p.index()].scan();
                h.respond(id, SnapshotResp::View(view.into_vec()));
            }
        }
    }
    h
}

/// Runs a snapshot workload and checks the recorded history for
/// linearizability. Returns `true` iff the object's behaviour is
/// consistent with `SnapshotSpec`.
pub fn roundtrip_snapshot<V, M, O>(obj: &O, n: usize, script: &[SnapStep<V>]) -> bool
where
    V: Value + Eq + std::hash::Hash,
    M: Mem,
    O: SharedObject<M>,
    O::Handle: SnapshotOps<V>,
{
    let h = record_snapshot_history::<V, M, O>(obj, n, script);
    check_linearizable(&SnapshotSpec::<V>::new(n), &h).is_some()
}

/// One step of a counter workload.
#[derive(Clone, Copy, Debug)]
pub enum CounterStep {
    /// Process `p` increments.
    Inc(ProcId),
    /// Process `p` reads.
    Read(ProcId),
}

/// Runs a counter workload through per-process handles; returns `true`
/// iff every read equals the number of increments completed before it
/// (the sequential counter specification).
pub fn roundtrip_counter<M, O>(obj: &O, n: usize, script: &[CounterStep]) -> bool
where
    M: Mem,
    O: SharedObject<M>,
    O::Handle: CounterOps,
{
    let mut handles: Vec<O::Handle> = ProcId::all(n).map(|p| obj.handle(p)).collect();
    let mut total = 0u64;
    for step in script {
        match step {
            CounterStep::Inc(p) => {
                handles[p.index()].inc();
                total += 1;
            }
            CounterStep::Read(p) => {
                if handles[p.index()].read() != total {
                    return false;
                }
            }
        }
    }
    true
}

/// One step of a max-register workload.
#[derive(Clone, Copy, Debug)]
pub enum MaxStep {
    /// Process `p` raises the maximum to the value.
    Write(ProcId, u64),
    /// Process `p` reads the maximum.
    Read(ProcId),
}

/// Runs a max-register workload through per-process handles; returns
/// `true` iff every read equals the reference maximum.
pub fn roundtrip_max_register<M, O>(obj: &O, n: usize, script: &[MaxStep]) -> bool
where
    M: Mem,
    O: SharedObject<M>,
    O::Handle: MaxRegisterOps,
{
    let mut handles: Vec<O::Handle> = ProcId::all(n).map(|p| obj.handle(p)).collect();
    let mut reference = 0u64;
    for step in script {
        match step {
            MaxStep::Write(p, v) => {
                handles[p.index()].max_write(*v);
                reference = reference.max(*v);
            }
            MaxStep::Read(p) => {
                if handles[p.index()].max_read() != reference {
                    return false;
                }
            }
        }
    }
    true
}

/// Checks a recorded history for linearizability (thin wrapper over
/// `sl_check`, re-exported here so harness users have one import).
pub fn linearizable<S: SeqSpec>(spec: &S, history: &History<S>) -> bool {
    check_linearizable(spec, history).is_some()
}

/// Checks a transcript prefix tree for strong linearizability.
pub fn strongly_linearizable<S: SeqSpec>(spec: &S, tree: &HistoryTree<S>) -> StrongLinReport {
    check_strongly_linearizable(spec, tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectBuilder;
    use sl_mem::NativeMem;

    #[test]
    fn snapshot_roundtrip_accepts_correct_object() {
        let mem = NativeMem::new();
        let snap = ObjectBuilder::on(&mem).processes(2).snapshot::<u64>();
        let script = vec![
            SnapStep::Update(ProcId(0), 1),
            SnapStep::Scan(ProcId(1)),
            SnapStep::Update(ProcId(1), 2),
            SnapStep::Scan(ProcId(0)),
        ];
        assert!(roundtrip_snapshot::<u64, NativeMem, _>(&snap, 2, &script));
    }

    #[test]
    fn counter_and_max_register_roundtrips() {
        let mem = NativeMem::new();
        let b = ObjectBuilder::on(&mem).processes(2);
        assert!(roundtrip_counter(
            &b.counter(),
            2,
            &[
                CounterStep::Inc(ProcId(0)),
                CounterStep::Read(ProcId(1)),
                CounterStep::Inc(ProcId(1)),
                CounterStep::Read(ProcId(0)),
            ],
        ));
        assert!(roundtrip_max_register(
            &b.max_register(),
            2,
            &[
                MaxStep::Write(ProcId(0), 5),
                MaxStep::Read(ProcId(1)),
                MaxStep::Write(ProcId(1), 3),
                MaxStep::Read(ProcId(0)),
            ],
        ));
    }
}
