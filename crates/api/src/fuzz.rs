//! Seeded-random schedule fuzzing with deterministic shrinking.
//!
//! For every builder family × substrate × backend, the fuzz harness
//! generates random per-process workloads, runs them under seeded
//! random adversary schedules on the step VM (`SimMem`) or as random
//! sequential interleavings (`NativeMem`), and feeds every recorded
//! history through `check_linearizable`. For objects whose guarantee
//! marker is `Strong`, the transcripts of all schedules of one workload
//! are additionally merged into a prefix tree and fed through the
//! strong-linearizability checker — several random schedules of the
//! same programs share long prefixes, so the tree genuinely branches.
//!
//! On failure, a **deterministic shrinker** minimises the counterexample
//! before reporting: operations are removed one at a time and schedule
//! scripts are chunk-reduced (re-running the deterministic simulator at
//! every stage) until the failure is *locally minimal* — removing any
//! single remaining operation or schedule entry makes it pass. The
//! report renders the shrunk trace with allocation-site labels, and can
//! be written to an artifact directory for CI upload.
//!
//! Everything is derived from `FuzzConfig::seed`, so a failure report
//! is reproducible bit-for-bit.

use std::sync::Arc;

use sl_check::{check_linearizable, check_strongly_linearizable, HistoryTree, TreeStep};
use sl_mem::{NativeMem, SmallRng};
use sl_sim::{PruneMode, Scripted, SeededRandom, SimMem, StaticConflicts};
use sl_spec::{History, ProcId, SeqSpec};

use crate::object::SharedObject;
use crate::sim::{explore_object, run_object_schedule_with, DriveOps, SimExplore, SimRun};

/// Budgets and seed of one fuzz campaign. Scale with
/// [`FuzzConfig::from_env`] in CI (`SL_FUZZ_WORKLOADS`,
/// `SL_FUZZ_SCHEDULES`, `SL_FUZZ_OPS`, `SL_FUZZ_ARTIFACT_DIR`).
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Random workloads per family configuration.
    pub workloads: u64,
    /// Random adversary schedules per workload (their transcripts form
    /// the tree for the strong check).
    pub schedules_per_workload: u64,
    /// Simulated processes.
    pub procs: usize,
    /// Operations per process per workload.
    pub ops_per_proc: usize,
    /// Per-run shared-memory step budget.
    pub step_budget: u64,
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Run the shrinker on failures.
    pub shrink: bool,
    /// Where to write failure artifacts (none = don't write).
    pub artifact_dir: Option<std::path::PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            workloads: 6,
            schedules_per_workload: 4,
            procs: 2,
            ops_per_proc: 2,
            step_budget: 20_000,
            seed: 0x5EED_F00D,
            shrink: true,
            artifact_dir: None,
        }
    }
}

impl FuzzConfig {
    /// The default configuration scaled by environment variables, for
    /// the deep CI job.
    pub fn from_env() -> FuzzConfig {
        let mut cfg = FuzzConfig::default();
        let get = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<u64>().ok());
        if let Some(v) = get("SL_FUZZ_WORKLOADS") {
            cfg.workloads = v;
        }
        if let Some(v) = get("SL_FUZZ_SCHEDULES") {
            cfg.schedules_per_workload = v;
        }
        if let Some(v) = get("SL_FUZZ_OPS") {
            cfg.ops_per_proc = v as usize;
        }
        if let Some(v) = get("SL_FUZZ_SEED") {
            cfg.seed = v;
        }
        if let Some(dir) = std::env::var_os("SL_FUZZ_ARTIFACT_DIR") {
            cfg.artifact_dir = Some(dir.into());
        }
        cfg
    }
}

/// Which decision procedure rejected the behaviour.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// A single history failed `check_linearizable`.
    Linearizability,
    /// A schedule tree failed `check_strongly_linearizable`.
    StrongLinearizability,
    /// A certificate-pruned exploration reached a different
    /// strong-linearizability verdict than the `ValueDpor` baseline on
    /// the same exhausted workload ([`fuzz_pruned_exploration`]).
    VerdictDivergence,
}

/// A minimised counterexample.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Which checker rejected it.
    pub kind: FailureKind,
    /// Debug-rendered per-process operations after shrinking.
    pub workload: Vec<Vec<String>>,
    /// The shrunk schedule script(s) (decision sequences).
    pub schedules: Vec<Vec<usize>>,
    /// Human-readable trace of one failing run, with allocation sites.
    pub trace: Vec<String>,
    /// Operation count before → after shrinking.
    pub ops_shrink: (usize, usize),
    /// Total schedule length before → after shrinking.
    pub schedule_shrink: (usize, usize),
}

/// Outcome of one fuzz campaign over one family configuration.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Human-readable name of the configuration (family, substrate,
    /// backend).
    pub family: String,
    /// Workloads executed.
    pub workloads_run: u64,
    /// Schedules executed.
    pub schedules_run: u64,
    /// The first failure found, minimised (fuzzing stops at the first).
    pub failure: Option<FuzzFailure>,
}

impl FuzzReport {
    /// Renders the report (one line when clean, the full counterexample
    /// otherwise).
    pub fn render(&self) -> String {
        match &self.failure {
            None => format!(
                "{}: ok ({} workloads, {} schedules)",
                self.family, self.workloads_run, self.schedules_run
            ),
            Some(f) => {
                let mut out = String::new();
                out.push_str(&format!(
                    "{}: {:?} VIOLATION (after {} workloads, {} schedules)\n",
                    self.family, f.kind, self.workloads_run, self.schedules_run
                ));
                out.push_str(&format!(
                    "shrunk: {} -> {} ops, {} -> {} schedule entries\n",
                    f.ops_shrink.0, f.ops_shrink.1, f.schedule_shrink.0, f.schedule_shrink.1
                ));
                for (p, ops) in f.workload.iter().enumerate() {
                    out.push_str(&format!("  p{p}: {}\n", ops.join(", ")));
                }
                for (i, s) in f.schedules.iter().enumerate() {
                    out.push_str(&format!("  schedule {i}: {s:?}\n"));
                }
                out.push_str("  failing trace:\n");
                for line in &f.trace {
                    out.push_str(&format!("    {line}\n"));
                }
                out
            }
        }
    }

    /// Panics with the rendered counterexample if the campaign failed.
    pub fn assert_clean(&self) {
        assert!(self.failure.is_none(), "{}", self.render());
    }

    fn write_artifact(&self, dir: &std::path::Path) {
        let _ = std::fs::create_dir_all(dir);
        let name: String = self
            .family
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let _ = std::fs::write(dir.join(format!("{name}.txt")), self.render());
    }
}

fn mix(seed: u64, a: u64, b: u64) -> u64 {
    seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

/// Generates one random workload: `procs` × `ops_per_proc` operations.
fn gen_workload<S: SeqSpec, G: Fn(&mut SmallRng, ProcId) -> S::Op>(
    gen_op: &G,
    rng: &mut SmallRng,
    cfg: &FuzzConfig,
) -> Vec<Vec<S::Op>> {
    (0..cfg.procs)
        .map(|p| {
            (0..cfg.ops_per_proc)
                .map(|_| gen_op(rng, ProcId(p)))
                .collect()
        })
        .collect()
}

fn render_workload<S: SeqSpec>(workload: &[Vec<S::Op>]) -> Vec<Vec<String>> {
    workload
        .iter()
        .map(|ops| ops.iter().map(|o| format!("{o:?}")).collect())
        .collect()
}

fn total_ops<Op>(workload: &[Vec<Op>]) -> usize {
    workload.iter().map(Vec::len).sum()
}

/// Fuzzes one object family on the simulator backend. `factory` builds
/// the object on a fresh `SimMem` per run; `apply` maps spec operations
/// onto handles; `gen_op` generates random operations; `strong` says
/// whether the object's guarantee marker is `Strong` (running the
/// strong checker over the schedule tree as well).
pub fn fuzz_sim_family<S, O, F, A, G>(
    family: &str,
    strong: bool,
    factory: F,
    apply: A,
    gen_op: G,
    spec: &S,
    cfg: &FuzzConfig,
) -> FuzzReport
where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
    F: Fn(&SimMem) -> O,
    A: Fn(&mut O::Handle, &S::Op) -> S::Resp + Send + Sync + 'static,
    G: Fn(&mut SmallRng, ProcId) -> S::Op,
{
    let apply = Arc::new(apply);
    let mut schedules_run = 0u64;
    for w in 0..cfg.workloads {
        let mut rng = SmallRng::new(mix(cfg.seed, w, 0));
        let workload = gen_workload::<S, G>(&gen_op, &mut rng, cfg);
        let mut scripts: Vec<Vec<usize>> = Vec::new();
        let mut transcripts: Vec<Vec<TreeStep<S>>> = Vec::new();
        for k in 0..cfg.schedules_per_workload {
            let mut sched = SeededRandom::new(mix(cfg.seed, w, k + 1));
            let run =
                run_object_schedule_with(&factory, &workload, &apply, &mut sched, cfg.step_budget);
            schedules_run += 1;
            if check_linearizable(spec, &run.history).is_none() {
                let failure = shrink_lin_failure(
                    &factory,
                    &apply,
                    spec,
                    workload.clone(),
                    run.outcome.script(),
                    cfg,
                );
                let report = FuzzReport {
                    family: family.to_string(),
                    workloads_run: w + 1,
                    schedules_run,
                    failure: Some(failure),
                };
                if let Some(dir) = &cfg.artifact_dir {
                    report.write_artifact(dir);
                }
                return report;
            }
            scripts.push(run.outcome.script());
            transcripts.push(run.transcript);
        }
        if strong {
            let tree = HistoryTree::from_transcripts(&transcripts);
            if !check_strongly_linearizable(spec, &tree).holds {
                let failure = shrink_strong_failure(&factory, &apply, spec, workload, scripts, cfg);
                let report = FuzzReport {
                    family: family.to_string(),
                    workloads_run: w + 1,
                    schedules_run,
                    failure: Some(failure),
                };
                if let Some(dir) = &cfg.artifact_dir {
                    report.write_artifact(dir);
                }
                return report;
            }
        }
    }
    FuzzReport {
        family: family.to_string(),
        workloads_run: cfg.workloads,
        schedules_run,
        failure: None,
    }
}

/// Re-runs one (workload, script) pair deterministically.
fn rerun<S, O, F, A>(
    factory: &F,
    apply: &Arc<A>,
    workload: &[Vec<S::Op>],
    script: &[usize],
    cfg: &FuzzConfig,
) -> SimRun<S>
where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
    F: Fn(&SimMem) -> O,
    A: Fn(&mut O::Handle, &S::Op) -> S::Resp + Send + Sync + 'static,
{
    let mut sched = Scripted::new(script.to_vec());
    run_object_schedule_with(factory, workload, apply, &mut sched, cfg.step_budget)
}

/// Candidate workloads with one operation removed, in deterministic
/// order.
fn op_removals<Op: Clone>(workload: &[Vec<Op>]) -> Vec<Vec<Vec<Op>>> {
    let mut out = Vec::new();
    for p in 0..workload.len() {
        for j in 0..workload[p].len() {
            let mut cand = workload.to_vec();
            cand[p].remove(j);
            out.push(cand);
        }
    }
    out
}

/// ddmin-style script reduction: the empty script first (pure
/// lowest-id fallback — the canonical sequential schedule), then
/// chunks of shrinking size, then single entries.
fn script_removals(script: &[usize]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if !script.is_empty() {
        out.push(Vec::new());
    }
    let mut chunk = script.len() / 2;
    while chunk >= 1 {
        let mut start = 0;
        while start < script.len() {
            let end = (start + chunk).min(script.len());
            let mut cand = script.to_vec();
            cand.drain(start..end);
            out.push(cand);
            start = end;
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    out
}

fn shrink_lin_failure<S, O, F, A>(
    factory: &F,
    apply: &Arc<A>,
    spec: &S,
    mut workload: Vec<Vec<S::Op>>,
    mut script: Vec<usize>,
    cfg: &FuzzConfig,
) -> FuzzFailure
where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
    F: Fn(&SimMem) -> O,
    A: Fn(&mut O::Handle, &S::Op) -> S::Resp + Send + Sync + 'static,
{
    let fails = |w: &[Vec<S::Op>], s: &[usize]| {
        check_linearizable(
            spec,
            &rerun::<S, O, F, A>(factory, apply, w, s, cfg).history,
        )
        .is_none()
    };
    let before = (total_ops(&workload), script.len());
    if cfg.shrink {
        loop {
            let mut improved = false;
            for cand in op_removals(&workload) {
                // A shrunk workload can misalign with the recorded
                // schedule; also try the canonical sequential schedule
                // (empty script = lowest-id fallback) so operation
                // minimisation isn't blocked by schedule alignment.
                if fails(&cand, &script) {
                    workload = cand;
                    improved = true;
                    break;
                }
                if !script.is_empty() && fails(&cand, &[]) {
                    workload = cand;
                    script = Vec::new();
                    improved = true;
                    break;
                }
            }
            if improved {
                continue;
            }
            for cand in script_removals(&script) {
                if cand.len() < script.len() && fails(&workload, &cand) {
                    script = cand;
                    improved = true;
                    break;
                }
            }
            if !improved {
                break;
            }
        }
    }
    let final_run = rerun::<S, O, F, A>(factory, apply, &workload, &script, cfg);
    FuzzFailure {
        kind: FailureKind::Linearizability,
        workload: render_workload::<S>(&workload),
        schedules: vec![script.clone()],
        trace: final_run.pretty,
        ops_shrink: (before.0, total_ops(&workload)),
        schedule_shrink: (before.1, script.len()),
    }
}

fn shrink_strong_failure<S, O, F, A>(
    factory: &F,
    apply: &Arc<A>,
    spec: &S,
    mut workload: Vec<Vec<S::Op>>,
    mut scripts: Vec<Vec<usize>>,
    cfg: &FuzzConfig,
) -> FuzzFailure
where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
    F: Fn(&SimMem) -> O,
    A: Fn(&mut O::Handle, &S::Op) -> S::Resp + Send + Sync + 'static,
{
    let fails = |w: &[Vec<S::Op>], ss: &[Vec<usize>]| {
        let transcripts: Vec<_> = ss
            .iter()
            .map(|s| rerun::<S, O, F, A>(factory, apply, w, s, cfg).transcript)
            .collect();
        !check_strongly_linearizable(spec, &HistoryTree::from_transcripts(&transcripts)).holds
    };
    let before = (
        total_ops(&workload),
        scripts.iter().map(Vec::len).sum::<usize>(),
    );
    if cfg.shrink {
        loop {
            let mut improved = false;
            // Fewer schedules first: the counterexample family should be
            // as small as the paper's {S, T1, T2}.
            for i in 0..scripts.len() {
                if scripts.len() <= 2 {
                    break;
                }
                let mut cand = scripts.clone();
                cand.remove(i);
                if fails(&workload, &cand) {
                    scripts = cand;
                    improved = true;
                    break;
                }
            }
            if improved {
                continue;
            }
            for cand in op_removals(&workload) {
                if fails(&cand, &scripts) {
                    workload = cand;
                    improved = true;
                    break;
                }
            }
            if improved {
                continue;
            }
            for i in 0..scripts.len() {
                let mut found = None;
                for cand in script_removals(&scripts[i]) {
                    if cand.len() < scripts[i].len() {
                        let mut ss = scripts.clone();
                        ss[i] = cand;
                        if fails(&workload, &ss) {
                            found = Some(ss);
                            break;
                        }
                    }
                }
                if let Some(ss) = found {
                    scripts = ss;
                    improved = true;
                    break;
                }
            }
            if !improved {
                break;
            }
        }
    }
    let final_run = rerun::<S, O, F, A>(factory, apply, &workload, &scripts[0], cfg);
    FuzzFailure {
        kind: FailureKind::StrongLinearizability,
        workload: render_workload::<S>(&workload),
        trace: final_run.pretty,
        ops_shrink: (before.0, total_ops(&workload)),
        schedule_shrink: (before.1, scripts.iter().map(Vec::len).sum::<usize>()),
        schedules: scripts,
    }
}

/// Schedule-count cap per exploration inside
/// [`fuzz_pruned_exploration`]; workloads whose baseline space does
/// not exhaust within it are skipped (verdicts of partial explorations
/// are not comparable).
const PRUNED_FUZZ_RUNS: usize = 40_000;

/// Fuzzes the certificate-pruned exploration modes: random workloads
/// explored exhaustively under `ValueDpor` (no certificate) and under
/// `StaticDpor` / `OptimalDpor` with `statics` installed must agree on
/// the strong-linearizability verdict. A divergence is shrunk by
/// removing operations while it persists and reported like any other
/// fuzz failure; the fail-closed race validator is armed throughout
/// (an unpredicted race panics rather than diverging silently).
///
/// `statics` is the runtime form of the object's probed certificate —
/// built by `sl-analyze`, which sits above this crate, so the caller
/// supplies it.
pub fn fuzz_pruned_exploration<S, O, F, G>(
    family: &str,
    factory: F,
    gen_op: G,
    spec: &S,
    statics: Arc<StaticConflicts>,
    cfg: &FuzzConfig,
) -> FuzzReport
where
    S: SeqSpec + 'static,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    S::State: Send + Sync,
    O: SharedObject<SimMem>,
    O::Handle: DriveOps<S>,
    F: Fn(&SimMem) -> O + Sync + Copy,
    G: Fn(&mut SmallRng, ProcId) -> S::Op,
{
    let explore = |w: &[Vec<S::Op>], mode: PruneMode, st: Option<Arc<StaticConflicts>>| {
        explore_object::<S, O, F>(
            factory,
            w,
            &SimExplore {
                mode,
                workers: 1,
                statics: st,
                max_runs: PRUNED_FUZZ_RUNS,
                step_budget: cfg.step_budget,
                ..SimExplore::default()
            },
        )
    };
    // None = baseline did not exhaust or no divergence; Some((mode,
    // base, pruned)) = the first diverging pruned mode and verdicts.
    let diverged = |w: &[Vec<S::Op>]| -> Option<(PruneMode, bool, bool)> {
        let base = explore(w, PruneMode::ValueDpor, None);
        if !base.outcome.exhausted {
            return None;
        }
        let vb = base.check_strong(spec).holds;
        for mode in [PruneMode::StaticDpor, PruneMode::OptimalDpor] {
            let pruned = explore(w, mode, Some(Arc::clone(&statics)));
            if pruned.outcome.exhausted {
                let vp = pruned.check_strong(spec).holds;
                if vp != vb {
                    return Some((mode, vb, vp));
                }
            }
        }
        None
    };
    let mut schedules_run = 0u64;
    for w in 0..cfg.workloads {
        let mut rng = SmallRng::new(mix(cfg.seed, w, 0));
        let mut workload = gen_workload::<S, G>(&gen_op, &mut rng, cfg);
        schedules_run += 3;
        let Some(first) = diverged(&workload) else {
            continue;
        };
        let before = total_ops(&workload);
        let mut witness = first;
        if cfg.shrink {
            loop {
                let mut improved = false;
                for cand in op_removals(&workload) {
                    if let Some(d) = diverged(&cand) {
                        workload = cand;
                        witness = d;
                        improved = true;
                        break;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        let (mode, vb, vp) = witness;
        let report = FuzzReport {
            family: family.to_string(),
            workloads_run: w + 1,
            schedules_run,
            failure: Some(FuzzFailure {
                kind: FailureKind::VerdictDivergence,
                workload: render_workload::<S>(&workload),
                schedules: Vec::new(),
                trace: vec![format!(
                    "ValueDpor verdict: strong-linearizable = {vb}; {mode:?} with the \
                     certificate installed: strong-linearizable = {vp}"
                )],
                ops_shrink: (before, total_ops(&workload)),
                schedule_shrink: (0, 0),
            }),
        };
        if let Some(dir) = &cfg.artifact_dir {
            report.write_artifact(dir);
        }
        return report;
    }
    FuzzReport {
        family: family.to_string(),
        workloads_run: cfg.workloads,
        schedules_run,
        failure: None,
    }
}

/// Fuzzes one object family on the native backend: the same random
/// workloads executed as random **sequential interleavings** (one
/// operation completes before the next is invoked — the strongest
/// check native execution admits without a controllable scheduler),
/// with every recorded history fed through `check_linearizable`.
pub fn fuzz_native_family<S, O, F, A, G>(
    family: &str,
    factory: F,
    apply: A,
    gen_op: G,
    spec: &S,
    cfg: &FuzzConfig,
) -> FuzzReport
where
    S: SeqSpec,
    O: SharedObject<NativeMem>,
    F: Fn(&NativeMem) -> O,
    A: Fn(&mut O::Handle, &S::Op) -> S::Resp,
    G: Fn(&mut SmallRng, ProcId) -> S::Op,
{
    // One execution = a flat (process, op) sequence: the interleaving
    // IS the test case, so shrinking removes elements of the flat
    // sequence (preserving relative order), and the report carries the
    // exact failing interleaving.
    let run_flat = |flat: &[(usize, S::Op)], procs: usize| -> History<S> {
        let mem = NativeMem::new();
        let obj = factory(&mem);
        let mut handles: Vec<O::Handle> = (0..procs).map(|p| obj.handle(ProcId(p))).collect();
        let mut h = History::new();
        for (p, op) in flat {
            let id = h.invoke(ProcId(*p), op.clone());
            let resp = apply(&mut handles[*p], op);
            h.respond(id, resp);
        }
        h
    };
    for w in 0..cfg.workloads {
        let mut rng = SmallRng::new(mix(cfg.seed, w, 0));
        let workload = gen_workload::<S, G>(&gen_op, &mut rng, cfg);
        // Random sequential interleaving across the processes,
        // preserving each process's program order (Fisher–Yates over
        // the process-id multiset).
        let mut order: Vec<usize> = Vec::new();
        for (p, ops) in workload.iter().enumerate() {
            order.extend(std::iter::repeat_n(p, ops.len()));
        }
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(i + 1));
        }
        let mut next: Vec<usize> = vec![0; workload.len()];
        let mut flat: Vec<(usize, S::Op)> = Vec::new();
        for &p in &order {
            flat.push((p, workload[p][next[p]].clone()));
            next[p] += 1;
        }
        let fails = |flat: &[(usize, S::Op)]| {
            check_linearizable(spec, &run_flat(flat, cfg.procs)).is_none()
        };
        if fails(&flat) {
            let before = flat.len();
            if cfg.shrink {
                // Remove one interleaving element at a time until
                // locally minimal (the failing order is preserved).
                loop {
                    let mut improved = false;
                    for i in 0..flat.len() {
                        let mut cand = flat.clone();
                        cand.remove(i);
                        if fails(&cand) {
                            flat = cand;
                            improved = true;
                            break;
                        }
                    }
                    if !improved {
                        break;
                    }
                }
            }
            // Regroup the shrunk interleaving per process for the
            // workload view; the trace is the interleaving itself.
            let mut per_proc: Vec<Vec<String>> = vec![Vec::new(); cfg.procs];
            for (p, op) in &flat {
                per_proc[*p].push(format!("{op:?}"));
            }
            let report = FuzzReport {
                family: family.to_string(),
                workloads_run: w + 1,
                schedules_run: w + 1,
                failure: Some(FuzzFailure {
                    kind: FailureKind::Linearizability,
                    workload: per_proc,
                    schedules: vec![flat.iter().map(|(p, _)| *p).collect()],
                    trace: flat
                        .iter()
                        .map(|(p, op)| format!("p{p} {op:?} (sequential)"))
                        .collect(),
                    ops_shrink: (before, flat.len()),
                    schedule_shrink: (before, flat.len()),
                }),
            };
            if let Some(dir) = &cfg.artifact_dir {
                report.write_artifact(dir);
            }
            return report;
        }
    }
    FuzzReport {
        family: family.to_string(),
        workloads_run: cfg.workloads,
        schedules_run: cfg.workloads,
        failure: None,
    }
}
