//! Type-level consistency guarantees.
//!
//! The paper's central distinction — linearizable versus **strongly**
//! linearizable — is a property of an implementation, not of a single
//! execution, and confusing the two is exactly the failure mode of §1:
//! a strong adaptive adversary can bias a randomized algorithm running
//! over a merely linearizable object, while it cannot over a strongly
//! linearizable one. This module lifts the distinction into the type
//! system: every [`SharedObject`](crate::SharedObject) declares its
//! guarantee as an associated type, so code that is only sound against
//! strong linearizability (adversary-bias experiments, composition
//! arguments that rely on prefix preservation) can demand
//! `Guarantee = Strong` — and feeding it a merely linearizable object
//! fails at **compile time**.
//!
//! ```compile_fail
//! use sl_api::{ObjectBuilder, SharedObject, Strong};
//! use sl_mem::{Mem, NativeMem};
//!
//! fn adversary_experiment<M: Mem, O: SharedObject<M, Guarantee = Strong>>(_o: &O) {}
//!
//! let mem = NativeMem::new();
//! // Algorithm 1 is linearizable but NOT strongly linearizable
//! // (Observation 4) — the experiment must not accept it.
//! let lin = ObjectBuilder::on(&mem).processes(2).lin_aba_register::<u64>();
//! adversary_experiment(&lin); // ERROR: expected `Strong`, found `Lin`
//! ```

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::Lin {}
    impl Sealed for super::Strong {}
}

/// A consistency guarantee level. Sealed: exactly [`Lin`] and [`Strong`]
/// implement it (the paper has no useful level in between for this
/// object family).
pub trait Guarantee: sealed::Sealed + Copy + Default + Send + Sync + 'static {
    /// Human-readable name, for tables and traces.
    const NAME: &'static str;

    /// Whether the guarantee is strong linearizability.
    const IS_STRONG: bool;
}

/// Linearizable (Herlihy & Wing): every history has a legal
/// linearization, but a strong adversary may still retroactively choose
/// *which* one — the paper's Observation 4 exploits exactly that.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Lin;

impl Guarantee for Lin {
    const NAME: &'static str = "linearizable";
    const IS_STRONG: bool = false;
}

/// Strongly linearizable (Golab, Higham & Woelfel): there is a
/// prefix-preserving linearization function — once an operation is
/// placed in the linearization order, its position never changes.
/// Closed under composition, which is what lets the paper stack
/// Algorithm 2 under Algorithm 3 under the universal construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Strong;

impl Guarantee for Strong {
    const NAME: &'static str = "strongly linearizable";
    const IS_STRONG: bool = true;
}

/// Marker implemented by [`Strong`] only. Prefer bounding on it
/// (`O::Guarantee: StrongGuarantee`) when a function merely *requires*
/// strong linearizability, and on `Guarantee = Strong` when it must
/// also name the type.
pub trait StrongGuarantee: Guarantee {}

impl StrongGuarantee for Strong {}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_strong<G: Guarantee>() -> bool {
        G::IS_STRONG
    }

    #[test]
    fn names_and_flags() {
        assert_eq!(Lin::NAME, "linearizable");
        assert_eq!(Strong::NAME, "strongly linearizable");
        assert!(!is_strong::<Lin>());
        assert!(is_strong::<Strong>());
    }
}
