//! The unified object trait family: one handle model for every object
//! in the workspace.
//!
//! Before this crate, each layer had its own access style:
//! `sl_snapshot` substrates took a `ProcId` on every call, `sl_core`
//! had per-family handle traits, and `sl_universal` had a third scheme.
//! [`SharedObject`] unifies them: every object is created over a
//! backend `M: Mem`, declares its [`Guarantee`] level in its type, and
//! is operated through per-process handles obtained with
//! [`handle`](SharedObject::handle) (at most one live handle per
//! process — enforced by a debug-mode duplicate-handle panic).
//!
//! What a handle can *do* is expressed by the per-family operation
//! traits ([`SnapshotOps`], [`AbaOps`], [`CounterOps`],
//! [`MaxRegisterOps`], [`UniversalOps`]), so generic harnesses bound on
//! exactly the capabilities they use:
//!
//! ```
//! use sl_api::{ObjectHandle, SharedObject, SnapshotOps, Strong};
//! use sl_mem::{Mem, Value};
//!
//! /// Runs on any strongly linearizable snapshot, over any backend.
//! fn exercise<V, M, O>(obj: &O, value: V)
//! where
//!     V: Value,
//!     M: Mem,
//!     O: SharedObject<M, Guarantee = Strong>,
//!     O::Handle: SnapshotOps<V>,
//! {
//!     let mut h = obj.handle(sl_spec::ProcId(0));
//!     h.update(value);
//!     assert!(h.scan().get(0).is_some());
//! }
//! ```

use sl_mem::{Mem, Value};
use sl_spec::ProcId;
use sl_universal::SimpleType;

use crate::guarantee::Guarantee;
use crate::view::View;

/// A shared object over backend `M`, accessed through per-process
/// handles and carrying its consistency guarantee in its type.
///
/// `M` is a type parameter (not an associated type) so one generic
/// function can range over the same object family on different
/// backends — the builder matrix tests instantiate every family over
/// both `NativeMem` and `SimMem` through the same bounds.
pub trait SharedObject<M: Mem>: Clone + Send + Sync + 'static {
    /// The guarantee this implementation provides: [`crate::Lin`] or
    /// [`crate::Strong`]. This is a *theorem reference*, not a runtime
    /// property — e.g. `AwAbaRegister` (Algorithm 1) declares `Lin`
    /// because of the paper's Observation 4, while `SlAbaRegister`
    /// (Algorithm 2) declares `Strong` by Theorem 1.
    type Guarantee: Guarantee;

    /// The per-process handle type.
    type Handle: ObjectHandle;

    /// Creates process `p`'s handle.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range and, in debug builds, if a live
    /// handle for `p` already exists on this object (single-writer
    /// discipline).
    fn handle(&self, p: ProcId) -> Self::Handle;

    /// Number of processes the object was created for, or `None` for
    /// objects that are not sized to a process count (the single-cell
    /// atomic ABA register and the multi-writer trie max-register
    /// accept handles for any process id). Never iterate `0..n` on an
    /// unwrapped default; use the count you built the object with.
    fn processes(&self) -> Option<usize>;
}

/// Operations common to every per-process handle.
pub trait ObjectHandle: Send {
    /// The process this handle belongs to.
    fn proc(&self) -> ProcId;
}

/// Single-writer snapshot operations (Algorithms 3/4, their substrates,
/// and the atomic model object).
pub trait SnapshotOps<V: Value>: ObjectHandle {
    /// Sets this process's component to `value`.
    fn update(&mut self, value: V);

    /// Returns a consistent view of all components.
    fn scan(&mut self) -> View<V>;
}

/// Snapshot operations whose views carry a strictly increasing version
/// (the §4.1 versioned object). Every view returned by
/// [`scan_versioned`](VersionedSnapshotOps::scan_versioned) has
/// `version() == Some(_)`.
pub trait VersionedSnapshotOps<V: Value>: SnapshotOps<V> {
    /// Returns a consistent view together with its version.
    fn scan_versioned(&mut self) -> View<V>;
}

/// ABA-detecting register operations (paper §3).
pub trait AbaOps<V: Value>: ObjectHandle {
    /// `DWrite(x)`: stores `x`.
    fn dwrite(&mut self, value: V);

    /// `DRead()`: the stored value (`None` = initial `⊥`) and a flag
    /// that is `true` iff some `DWrite` occurred since this process's
    /// previous `DRead`.
    fn dread(&mut self) -> (Option<V>, bool);
}

/// Counter operations (§4.5 derived object).
pub trait CounterOps: ObjectHandle {
    /// Increments the counter.
    fn inc(&mut self);

    /// Reads the counter.
    fn read(&mut self) -> u64;
}

/// Max-register operations (§4.1 and §4.5).
pub trait MaxRegisterOps: ObjectHandle {
    /// Raises the stored maximum to `v`.
    fn max_write(&mut self, v: u64);

    /// The largest value written so far (0 if none).
    fn max_read(&mut self) -> u64;
}

/// Universal-construction operations: execute any invocation of a
/// simple type `T` (paper §5).
pub trait UniversalOps<T: SimpleType>: ObjectHandle {
    /// Executes `op` and returns its response.
    fn execute(&mut self, op: T::Op) -> T::Resp;
}
