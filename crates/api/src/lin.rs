//! Handle-model adapter for the linearizable snapshot substrates.
//!
//! The substrates in `sl-snapshot` implement the internal
//! [`SnapshotSubstrate`] SPI, whose operations take the acting process
//! explicitly. [`LinSnap`] wraps a substrate as a first-class
//! [`SharedObject`] with guarantee [`Lin`]: per-process handles, the
//! duplicate-handle guard, and typed [`View`]s — so consumer code never
//! touches the `scan(&self, p)` shape, and the type system records that
//! these objects are *not* strongly linearizable.

use std::marker::PhantomData;

use sl_mem::{HandleGuard, HandleLease, Mem, Value};
use sl_snapshot::{
    AfekSnapshot, BoundedAfekSnapshot, DoubleCollectSnapshot, SnapshotSubstrate, VersionedSubstrate,
};
use sl_spec::ProcId;

use crate::guarantee::Lin;
use crate::object::{ObjectHandle, SharedObject, SnapshotOps, VersionedSnapshotOps};
use crate::view::View;

/// A linearizable snapshot substrate exposed through the unified handle
/// model, with guarantee [`Lin`].
pub struct LinSnap<V: Value, S: SnapshotSubstrate<V>> {
    raw: S,
    n: usize,
    guard: HandleGuard,
    _marker: PhantomData<fn() -> V>,
}

impl<V: Value, S: SnapshotSubstrate<V>> LinSnap<V, S> {
    /// Wraps a substrate.
    pub fn new(raw: S) -> Self {
        let n = raw.components();
        LinSnap {
            raw,
            n,
            guard: HandleGuard::new(),
            _marker: PhantomData,
        }
    }

    /// The wrapped substrate (escape hatch for composing into
    /// Algorithm 3 manually).
    pub fn substrate(&self) -> &S {
        &self.raw
    }

    /// Number of components.
    pub fn components(&self) -> usize {
        self.n
    }

    /// Creates process `p`'s handle.
    pub fn handle(&self, p: ProcId) -> LinSnapHandle<V, S> {
        assert!(p.index() < self.n, "process id out of range");
        LinSnapHandle {
            raw: self.raw.clone(),
            p,
            _lease: self.guard.acquire(p),
            _marker: PhantomData,
        }
    }
}

impl<V: Value, S: SnapshotSubstrate<V>> Clone for LinSnap<V, S> {
    fn clone(&self) -> Self {
        LinSnap {
            raw: self.raw.clone(),
            n: self.n,
            guard: self.guard.clone(),
            _marker: PhantomData,
        }
    }
}

impl<V: Value, S: SnapshotSubstrate<V>> std::fmt::Debug for LinSnap<V, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LinSnap(n={})", self.n)
    }
}

/// Process-local handle of [`LinSnap`].
pub struct LinSnapHandle<V: Value, S: SnapshotSubstrate<V>> {
    raw: S,
    p: ProcId,
    _lease: HandleLease,
    _marker: PhantomData<fn() -> V>,
}

impl<V: Value, S: SnapshotSubstrate<V>> ObjectHandle for LinSnapHandle<V, S> {
    fn proc(&self) -> ProcId {
        self.p
    }
}

impl<V: Value, S: SnapshotSubstrate<V>> SnapshotOps<V> for LinSnapHandle<V, S> {
    fn update(&mut self, value: V) {
        self.raw.update(self.p, value);
    }

    fn scan(&mut self) -> View<V> {
        View::new(self.raw.scan(self.p))
    }
}

impl<V: Value, S: VersionedSubstrate<V>> VersionedSnapshotOps<V> for LinSnapHandle<V, S> {
    fn scan_versioned(&mut self) -> View<V> {
        let (components, version) = self.raw.scan_versioned(self.p);
        View::versioned(components, version)
    }
}

macro_rules! lin_shared_object {
    ($substrate:ident) => {
        impl<V: Value, M: Mem> SharedObject<M> for LinSnap<V, $substrate<V, M>> {
            type Guarantee = Lin;
            type Handle = LinSnapHandle<V, $substrate<V, M>>;

            fn handle(&self, p: ProcId) -> Self::Handle {
                LinSnap::handle(self, p)
            }

            fn processes(&self) -> Option<usize> {
                Some(self.n)
            }
        }
    };
}

lin_shared_object!(DoubleCollectSnapshot);
lin_shared_object!(AfekSnapshot);
lin_shared_object!(BoundedAfekSnapshot);

#[cfg(test)]
mod tests {
    use super::*;
    use sl_mem::NativeMem;

    #[test]
    fn wrapped_double_collect_scans_through_handles() {
        let mem = NativeMem::new();
        let snap: LinSnap<u64, _> = LinSnap::new(DoubleCollectSnapshot::new(&mem, 3));
        let mut h0 = snap.handle(ProcId(0));
        let mut h2 = snap.handle(ProcId(2));
        h0.update(7);
        let view = h2.scan();
        assert_eq!(view, vec![Some(7), None, None]);
        assert_eq!(view.version(), None);
    }

    #[test]
    fn versioned_scan_reports_increasing_versions() {
        let mem = NativeMem::new();
        let snap: LinSnap<u64, _> = LinSnap::new(DoubleCollectSnapshot::new(&mem, 2));
        let mut h = snap.handle(ProcId(0));
        h.update(1);
        let v1 = h.scan_versioned().version().expect("versioned substrate");
        h.update(2);
        let v2 = h.scan_versioned().version().expect("versioned substrate");
        assert!(v2 > v1, "versions strictly increase: {v1} -> {v2}");
    }

    #[test]
    #[cfg(debug_assertions)] // the guard panics only in debug builds
    fn duplicate_handles_are_rejected() {
        let mem = NativeMem::new();
        let snap: LinSnap<u64, _> = LinSnap::new(AfekSnapshot::new(&mem, 2));
        let _h = snap.handle(ProcId(0));
        let dup = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _dup = snap.handle(ProcId(0));
        }));
        assert!(dup.is_err());
    }
}
