//! [`SharedObject`] and operation-trait implementations for every
//! concrete object in the workspace — the migration of `sl-core`,
//! `sl-snapshot` (via [`crate::LinSnap`]) and `sl-universal` onto the
//! unified API.
//!
//! Guarantee assignments are theorem references:
//!
//! | Object | Guarantee | Why |
//! |--------|-----------|-----|
//! | `SlSnapshot` (all substrate/`R` configs) | [`Strong`] | Theorem 2 (Algorithms 3/4) |
//! | `BoundedSlSnapshot` | [`Strong`] | Theorem 2, fully bounded configuration |
//! | `VersionedSlSnapshot` | [`Strong`] | §4.1 (Denysyuk–Woelfel) |
//! | `AtomicSnapshot` | [`Strong`] | one step per operation (atomic) |
//! | `SlAbaRegister` / `PackedSlAbaRegister` | [`Strong`] | Theorem 1 (Algorithm 2) |
//! | `AtomicAbaRegister` | [`Strong`] | atomic base object of Algorithm 3 |
//! | `AwAbaRegister` | [`Lin`] | **Observation 4**: Algorithm 1 is not strongly linearizable |
//! | `BoundedMaxRegister` | [`Lin`] | checker-discovered: AAC trie reads admit retroactive ordering |
//! | `SlCounter<O>` / `SnapshotMaxRegister<O>` | `O::Guarantee` | §4.5: one snapshot op per operation (composability) |
//! | `Universal<T, O>` | `O::Guarantee` | Theorem 54: the construction preserves strong linearizability |

use sl_core::aba::{
    AbaHandle as CoreAbaHandle, AbaRegister as CoreAbaRegister, AtomicAbaHandle, AtomicAbaRegister,
    AwAbaHandle, AwAbaRegister, PackedSlAbaHandle, PackedSlAbaRegister, SlAbaHandle, SlAbaRegister,
};
use sl_core::{
    AtomicSnapshot, AtomicSnapshotHandle, BoundedMaxRegister, BoundedMaxRegisterHandle,
    BoundedSlSnapshot, BoundedSlSnapshotHandle, CounterHandle, MaxRegisterHandle, SeqValue,
    SeqView, SlCounter, SlSnapshot, SlSnapshotHandle, SnapshotHandle as CoreSnapshotHandle,
    SnapshotMaxRegister, SnapshotObject as CoreSnapshotObject, VersionedHandle,
    VersionedSlSnapshot,
};
use sl_mem::{Mem, NativeMem, Value};
use sl_snapshot::{AfekSnapshot, BoundedAfekSnapshot, DoubleCollectSnapshot};
use sl_spec::ProcId;
use sl_universal::{NodeRef, SimpleType, Universal, UniversalHandle};

use crate::guarantee::{Lin, Strong};
use crate::object::{
    AbaOps, CounterOps, MaxRegisterOps, ObjectHandle, SharedObject, SnapshotOps, UniversalOps,
    VersionedSnapshotOps,
};
use crate::view::View;

/// `SlSnapshot` over the Afek et al. helping substrate (Theorem 2 with a
/// wait-free `S`).
pub type AfekSlSnapshot<V, M> =
    SlSnapshot<V, AfekSnapshot<SeqValue<V>, M>, SlAbaRegister<SeqView<V>, M>>;

/// `SlSnapshot` in the paper's pre-composition configuration: an atomic
/// ABA-detecting register `R` over the double-collect substrate
/// (Algorithm 3 as stated, before §4.3 composability).
pub type AtomicRSlSnapshot<V, M> =
    SlSnapshot<V, DoubleCollectSnapshot<SeqValue<V>, M>, AtomicAbaRegister<SeqView<V>, M>>;

/// The fully bounded Theorem 2 configuration: handshake substrate plus
/// Algorithm-2 register — every base register holds bounded state.
pub type FullyBoundedSlSnapshot<V, M> =
    BoundedSlSnapshot<V, BoundedAfekSnapshot<V, M>, SlAbaRegister<Vec<Option<V>>, M>>;

// ---------------------------------------------------------------------
// Strongly linearizable snapshots (Algorithms 3/4 and models thereof).
// ---------------------------------------------------------------------

macro_rules! strong_snapshot_object {
    ($obj:ty, $handle:ty) => {
        impl<V: Value, M: Mem> SharedObject<M> for $obj {
            type Guarantee = Strong;
            type Handle = $handle;

            fn handle(&self, p: ProcId) -> Self::Handle {
                CoreSnapshotObject::handle(self, p)
            }

            fn processes(&self) -> Option<usize> {
                Some(CoreSnapshotObject::components(self))
            }
        }
    };
}

strong_snapshot_object!(
    sl_core::DcSlSnapshot<V, M>,
    SlSnapshotHandle<V, DoubleCollectSnapshot<SeqValue<V>, M>, SlAbaRegister<SeqView<V>, M>>
);
strong_snapshot_object!(
    AfekSlSnapshot<V, M>,
    SlSnapshotHandle<V, AfekSnapshot<SeqValue<V>, M>, SlAbaRegister<SeqView<V>, M>>
);
strong_snapshot_object!(
    AtomicRSlSnapshot<V, M>,
    SlSnapshotHandle<V, DoubleCollectSnapshot<SeqValue<V>, M>, AtomicAbaRegister<SeqView<V>, M>>
);
strong_snapshot_object!(
    FullyBoundedSlSnapshot<V, M>,
    BoundedSlSnapshotHandle<V, BoundedAfekSnapshot<V, M>, SlAbaRegister<Vec<Option<V>>, M>>
);
strong_snapshot_object!(VersionedSlSnapshot<V, M>, VersionedHandle<V, M>);
strong_snapshot_object!(AtomicSnapshot<V, M>, AtomicSnapshotHandle<V, M>);

/// `ObjectHandle` + `SnapshotOps` for every handle type implementing the
/// `sl-core` snapshot-handle SPI.
macro_rules! snapshot_handle_ops {
    ($handle:ty ; $($generics:tt)*) => {
        impl<$($generics)*> ObjectHandle for $handle {
            fn proc(&self) -> ProcId {
                CoreSnapshotHandle::proc(self)
            }
        }

        impl<$($generics)*> SnapshotOps<V> for $handle {
            fn update(&mut self, value: V) {
                CoreSnapshotHandle::update(self, value);
            }

            fn scan(&mut self) -> View<V> {
                View::new(CoreSnapshotHandle::scan(self))
            }
        }
    };
}

snapshot_handle_ops!(
    SlSnapshotHandle<V, S, R> ;
    V: Value,
    S: sl_snapshot::SnapshotSubstrate<SeqValue<V>>,
    R: CoreAbaRegister<SeqView<V>>
);
snapshot_handle_ops!(
    BoundedSlSnapshotHandle<V, S, R> ;
    V: Value,
    S: sl_snapshot::SnapshotSubstrate<V>,
    R: CoreAbaRegister<Vec<Option<V>>>
);
snapshot_handle_ops!(VersionedHandle<V, M> ; V: Value, M: Mem);
snapshot_handle_ops!(AtomicSnapshotHandle<V, M> ; V: Value, M: Mem);

impl<V: Value, M: Mem> VersionedSnapshotOps<V> for VersionedHandle<V, M> {
    fn scan_versioned(&mut self) -> View<V> {
        let (components, version) = VersionedHandle::scan_with_version(self);
        View::versioned(components, version)
    }
}

// ---------------------------------------------------------------------
// ABA-detecting registers (paper §3).
// ---------------------------------------------------------------------

// Theorem 1 (Algorithm 2): strongly linearizable.
impl<V: Value, M: Mem> SharedObject<M> for SlAbaRegister<V, M> {
    type Guarantee = Strong;
    type Handle = SlAbaHandle<V, M>;

    fn handle(&self, p: ProcId) -> Self::Handle {
        CoreAbaRegister::handle(self, p)
    }

    fn processes(&self) -> Option<usize> {
        Some(SlAbaRegister::processes(self))
    }
}

// Observation 4 (Algorithm 1): linearizable only.
impl<V: Value, M: Mem> SharedObject<M> for AwAbaRegister<V, M> {
    type Guarantee = Lin;
    type Handle = AwAbaHandle<V, M>;

    fn handle(&self, p: ProcId) -> Self::Handle {
        CoreAbaRegister::handle(self, p)
    }

    fn processes(&self) -> Option<usize> {
        Some(AwAbaRegister::processes(self))
    }
}

// Atomic base object: one step per operation; any number of processes.
impl<V: Value, M: Mem> SharedObject<M> for AtomicAbaRegister<V, M> {
    type Guarantee = Strong;
    type Handle = AtomicAbaHandle<V, M>;

    fn handle(&self, p: ProcId) -> Self::Handle {
        CoreAbaRegister::handle(self, p)
    }

    fn processes(&self) -> Option<usize> {
        // The atomic register is a single cell with per-process read
        // cursors; it is not sized to a process count.
        None
    }
}

macro_rules! aba_handle_ops {
    ($handle:ty, $value:ty ; $($generics:tt)*) => {
        impl<$($generics)*> ObjectHandle for $handle {
            fn proc(&self) -> ProcId {
                CoreAbaHandle::proc(self)
            }
        }

        impl<$($generics)*> AbaOps<$value> for $handle {
            fn dwrite(&mut self, value: $value) {
                CoreAbaHandle::dwrite(self, value);
            }

            fn dread(&mut self) -> (Option<$value>, bool) {
                CoreAbaHandle::dread(self)
            }
        }
    };
}

aba_handle_ops!(SlAbaHandle<V, M>, V ; V: Value, M: Mem);
aba_handle_ops!(AwAbaHandle<V, M>, V ; V: Value, M: Mem);
aba_handle_ops!(AtomicAbaHandle<V, M>, V ; V: Value, M: Mem);

/// The packed-word Algorithm 2 is native-only by construction (it
/// bypasses the `Mem` abstraction with raw `AtomicU64`s), so it is a
/// `SharedObject` over [`NativeMem`] exclusively — trying to build it
/// over `SimMem` is a type error rather than a silently unsimulated
/// object.
impl SharedObject<NativeMem> for PackedSlAbaRegister {
    type Guarantee = Strong;
    type Handle = PackedSlAbaHandle;

    fn handle(&self, p: ProcId) -> Self::Handle {
        CoreAbaRegister::handle(self, p)
    }

    fn processes(&self) -> Option<usize> {
        Some(PackedSlAbaRegister::processes(self))
    }
}

impl ObjectHandle for PackedSlAbaHandle {
    fn proc(&self) -> ProcId {
        CoreAbaHandle::proc(self)
    }
}

impl AbaOps<u32> for PackedSlAbaHandle {
    fn dwrite(&mut self, value: u32) {
        CoreAbaHandle::dwrite(self, value);
    }

    fn dread(&mut self) -> (Option<u32>, bool) {
        CoreAbaHandle::dread(self)
    }
}

// ---------------------------------------------------------------------
// §4.5 derived objects: guarantee propagates from the snapshot they are
// built over (each operation performs one snapshot operation, so the
// derivation preserves strong linearizability by composability).
// ---------------------------------------------------------------------

impl<M: Mem, O> SharedObject<M> for SlCounter<O>
where
    O: SharedObject<M> + CoreSnapshotObject<u64>,
{
    type Guarantee = O::Guarantee;
    type Handle = CounterHandle<O>;

    fn handle(&self, p: ProcId) -> Self::Handle {
        SlCounter::handle(self, p)
    }

    fn processes(&self) -> Option<usize> {
        SharedObject::processes(self.snapshot())
    }
}

impl<O: CoreSnapshotObject<u64>> ObjectHandle for CounterHandle<O> {
    fn proc(&self) -> ProcId {
        CounterHandle::proc(self)
    }
}

impl<O: CoreSnapshotObject<u64>> CounterOps for CounterHandle<O> {
    fn inc(&mut self) {
        CounterHandle::inc(self);
    }

    fn read(&mut self) -> u64 {
        CounterHandle::read(self)
    }
}

impl<M: Mem, O> SharedObject<M> for SnapshotMaxRegister<O>
where
    O: SharedObject<M> + CoreSnapshotObject<u64>,
{
    type Guarantee = O::Guarantee;
    type Handle = MaxRegisterHandle<O>;

    fn handle(&self, p: ProcId) -> Self::Handle {
        SnapshotMaxRegister::handle(self, p)
    }

    fn processes(&self) -> Option<usize> {
        SharedObject::processes(self.snapshot())
    }
}

impl<O: CoreSnapshotObject<u64>> ObjectHandle for MaxRegisterHandle<O> {
    fn proc(&self) -> ProcId {
        MaxRegisterHandle::proc(self)
    }
}

impl<O: CoreSnapshotObject<u64>> MaxRegisterOps for MaxRegisterHandle<O> {
    fn max_write(&mut self, v: u64) {
        MaxRegisterHandle::max_write(self, v);
    }

    fn max_read(&mut self) -> u64 {
        MaxRegisterHandle::max_read(self)
    }
}

// ---------------------------------------------------------------------
// §4.1 bounded max-register (AAC trie): linearizable only — the model
// checker exhibits Observation-4-style violations for its reads.
// ---------------------------------------------------------------------

impl<M: Mem> SharedObject<M> for BoundedMaxRegister<M> {
    type Guarantee = Lin;
    type Handle = BoundedMaxRegisterHandle<M>;

    fn handle(&self, p: ProcId) -> Self::Handle {
        BoundedMaxRegister::handle(self, p)
    }

    fn processes(&self) -> Option<usize> {
        // The trie is multi-writer: any number of processes may use it.
        None
    }
}

impl<M: Mem> ObjectHandle for BoundedMaxRegisterHandle<M> {
    fn proc(&self) -> ProcId {
        BoundedMaxRegisterHandle::proc(self)
    }
}

impl<M: Mem> MaxRegisterOps for BoundedMaxRegisterHandle<M> {
    fn max_write(&mut self, v: u64) {
        BoundedMaxRegisterHandle::max_write(self, v);
    }

    fn max_read(&mut self) -> u64 {
        BoundedMaxRegisterHandle::max_read(self)
    }
}

// ---------------------------------------------------------------------
// Universal construction (§5): Theorem 54 — the construction preserves
// the root snapshot's guarantee.
// ---------------------------------------------------------------------

impl<M: Mem, T, O> SharedObject<M> for Universal<T, O>
where
    T: SimpleType,
    O: SharedObject<M> + CoreSnapshotObject<NodeRef<T>>,
{
    type Guarantee = O::Guarantee;
    type Handle = UniversalHandle<T, O>;

    fn handle(&self, p: ProcId) -> Self::Handle {
        Universal::handle(self, p)
    }

    fn processes(&self) -> Option<usize> {
        SharedObject::processes(self.root())
    }
}

impl<T: SimpleType, O: CoreSnapshotObject<NodeRef<T>>> ObjectHandle for UniversalHandle<T, O> {
    fn proc(&self) -> ProcId {
        UniversalHandle::proc(self)
    }
}

impl<T: SimpleType, O: CoreSnapshotObject<NodeRef<T>>> UniversalOps<T> for UniversalHandle<T, O> {
    fn execute(&mut self, op: T::Op) -> T::Resp {
        UniversalHandle::execute(self, op)
    }
}
