//! End-to-end checks of the pooled, parallel exploration harness: the
//! tree and DAG entry points agree with each other and across worker
//! counts (the determinism contract of partitioned source-set DPOR),
//! on objects built through the public `ObjectBuilder` factory.

use sl_api::sim::{explore_object, explore_object_dag, SimExplore};
use sl_api::ObjectBuilder;
use sl_check::TreeDag;
use sl_spec::types::{AbaSpec, SnapshotSpec};
use sl_spec::{AbaOp, SnapshotOp};

type ASpec = AbaSpec<u64>;
type SSpec = SnapshotSpec<u64>;

/// Theorem 12 through the pooled harness: tree and DAG pipelines agree
/// on counts, structure, and verdict at 1, 2, and 4 workers.
#[test]
fn pooled_tree_and_dag_explorations_agree_across_workers() {
    let workload = [
        vec![AbaOp::DWrite(9), AbaOp::DWrite(10)],
        vec![AbaOp::DRead],
    ];
    let mut reference: Option<(usize, u64, u64)> = None;
    for workers in [1usize, 2, 4] {
        let cfg = SimExplore {
            workers,
            ..SimExplore::default()
        };
        let tree = explore_object::<ASpec, _, _>(
            |mem| ObjectBuilder::on(mem).processes(2).aba_register::<u64>(),
            &workload,
            &cfg,
        );
        let dag = explore_object_dag::<ASpec, _, _>(
            |mem| ObjectBuilder::on(mem).processes(2).aba_register::<u64>(),
            &workload,
            &cfg,
        );
        assert!(tree.outcome.exhausted && dag.outcome.exhausted, "{workers}");
        assert_eq!(tree.outcome, dag.outcome, "{workers} workers");
        let tree_hash = TreeDag::from_tree(&tree.tree).structural_hash();
        assert_eq!(
            tree_hash,
            dag.dag.structural_hash(),
            "{workers} workers: tree and sharded DAG hold different transcript sets"
        );
        assert!(tree.check_strong(&ASpec::new(2)).holds);
        assert!(dag.check_strong(&ASpec::new(2)).holds);
        match &reference {
            None => reference = Some((dag.outcome.runs, dag.outcome.pruned, tree_hash)),
            Some((runs, pruned, hash)) => {
                let (runs, pruned, hash) = (*runs, *pruned, *hash);
                assert_eq!(runs, dag.outcome.runs, "{workers} workers");
                assert_eq!(pruned, dag.outcome.pruned, "{workers} workers");
                assert_eq!(hash, tree_hash, "{workers} workers");
            }
        }
    }
}

/// The pooled world truly resets object state between replays: a
/// snapshot exploration whose scans would otherwise observe a previous
/// replay's updates still passes the strong-lin check at every worker
/// count.
#[test]
fn pooled_snapshot_exploration_is_clean_between_replays() {
    for workers in [1usize, 4] {
        let cfg = SimExplore {
            workers,
            ..SimExplore::default()
        };
        let explored = explore_object::<SSpec, _, _>(
            |mem| ObjectBuilder::on(mem).processes(2).atomic_snapshot::<u64>(),
            &[vec![SnapshotOp::Update(5)], vec![SnapshotOp::Scan]],
            &cfg,
        );
        assert!(explored.outcome.exhausted);
        assert!(
            explored.check_strong(&SSpec::new(2)).holds,
            "{workers} workers: stale state leaked across a world reset"
        );
    }
}
