//! The builder matrix: every object family constructed through
//! [`ObjectBuilder`] over **both** backends (`NativeMem` and `SimMem`),
//! across every substrate, driving a short seeded-random history and
//! round-tripping it through the `sl-check` decision procedures.
//!
//! Native objects run their workload directly through the harness
//! entry points; simulator objects run it inside a `SimWorld` under a
//! seeded random adversary, with the history recorded by `EventLog`.
//! Either way, the object's actual responses must be linearizable with
//! respect to the family's sequential specification.

use sl_api::harness::{
    self, roundtrip_counter, roundtrip_max_register, roundtrip_snapshot, CounterStep, MaxStep,
    SnapStep,
};
use sl_api::{
    AbaOps, CounterOps, MaxRegisterOps, ObjectBuilder, SharedObject, SnapshotOps, UniversalOps,
};
use sl_check::check_linearizable;
use sl_mem::{NativeMem, SmallRng};
use sl_sim::{EventLog, Program, SeededRandom, SimMem, SimWorld};
use sl_spec::types::{AbaSpec, CounterSpec, MaxRegisterSpec, SnapshotSpec};
use sl_spec::{
    AbaOp, AbaResp, CounterOp, CounterResp, MaxRegisterOp, MaxRegisterResp, ProcId, SnapshotOp,
    SnapshotResp,
};
use sl_universal::types::CounterType;
use sl_universal::SimpleSpec;

const N: usize = 2;
const OPS_PER_PROC: usize = 2;
const SIM_STEP_BUDGET: u64 = 1_000_000;

fn random_snapshot_script(rng: &mut SmallRng, n: usize, len: usize) -> Vec<SnapStep<u64>> {
    (0..len)
        .map(|_| {
            let p = ProcId(rng.gen_range(n));
            if rng.gen_bool(0.5) {
                SnapStep::Update(p, rng.gen_range(100) as u64)
            } else {
                SnapStep::Scan(p)
            }
        })
        .collect()
}

fn random_counter_script(rng: &mut SmallRng, n: usize, len: usize) -> Vec<CounterStep> {
    (0..len)
        .map(|_| {
            let p = ProcId(rng.gen_range(n));
            if rng.gen_bool(0.5) {
                CounterStep::Inc(p)
            } else {
                CounterStep::Read(p)
            }
        })
        .collect()
}

fn random_max_script(rng: &mut SmallRng, n: usize, len: usize) -> Vec<MaxStep> {
    (0..len)
        .map(|_| {
            let p = ProcId(rng.gen_range(n));
            if rng.gen_bool(0.5) {
                MaxStep::Write(p, rng.gen_range(50) as u64)
            } else {
                MaxStep::Read(p)
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Native backend: drive through the harness entry points.
// ---------------------------------------------------------------------

#[test]
fn native_snapshots_all_substrates_roundtrip() {
    let mem = NativeMem::new();
    let mut rng = SmallRng::new(0x5EED_0001);
    let b = ObjectBuilder::on(&mem).processes(N);
    for round in 0..8 {
        let script = random_snapshot_script(&mut rng, N, 8);
        assert!(
            roundtrip_snapshot::<u64, _, _>(&b.clone().double_collect().snapshot(), N, &script),
            "double-collect round {round}"
        );
        assert!(
            roundtrip_snapshot::<u64, _, _>(&b.clone().afek().snapshot(), N, &script),
            "afek round {round}"
        );
        assert!(
            roundtrip_snapshot::<u64, _, _>(&b.clone().bounded_handshake().snapshot(), N, &script),
            "bounded round {round}"
        );
        assert!(
            roundtrip_snapshot::<u64, _, _>(&b.clone().versioned().snapshot(), N, &script),
            "versioned round {round}"
        );
        assert!(
            roundtrip_snapshot::<u64, _, _>(&b.clone().atomic_r().snapshot(), N, &script),
            "atomic-R round {round}"
        );
        // Lin substrates through the same unified handle model.
        assert!(
            roundtrip_snapshot::<u64, _, _>(&b.clone().lin_snapshot(), N, &script),
            "lin double-collect round {round}"
        );
        assert!(
            roundtrip_snapshot::<u64, _, _>(&b.clone().afek().lin_snapshot(), N, &script),
            "lin afek round {round}"
        );
        assert!(
            roundtrip_snapshot::<u64, _, _>(
                &b.clone().bounded_handshake().lin_snapshot(),
                N,
                &script
            ),
            "lin bounded round {round}"
        );
    }
}

#[test]
fn native_derived_objects_roundtrip() {
    let mem = NativeMem::new();
    let mut rng = SmallRng::new(0x5EED_0002);
    let b = ObjectBuilder::on(&mem).processes(N);
    for round in 0..8 {
        let counters = random_counter_script(&mut rng, N, 10);
        assert!(
            roundtrip_counter(&b.clone().counter(), N, &counters),
            "dc counter round {round}"
        );
        assert!(
            roundtrip_counter(&b.clone().versioned().counter(), N, &counters),
            "versioned counter round {round}"
        );
        let maxes = random_max_script(&mut rng, N, 10);
        assert!(
            roundtrip_max_register(&b.clone().max_register(), N, &maxes),
            "dc max round {round}"
        );
        assert!(
            roundtrip_max_register(&b.clone().bounded_handshake().max_register(), N, &maxes),
            "bounded max round {round}"
        );
        assert!(
            roundtrip_max_register(&b.trie_max_register(64), N, &maxes),
            "trie max round {round}"
        );
    }
}

#[test]
fn native_aba_and_universal_roundtrip() {
    let mem = NativeMem::new();
    let mut rng = SmallRng::new(0x5EED_0003);
    let b = ObjectBuilder::on(&mem).processes(N);
    for _round in 0..8 {
        // ABA register: writer + reader, recorded against AbaSpec.
        let aba = b.aba_register::<u64>();
        let mut w = aba.handle(ProcId(0));
        let mut r = aba.handle(ProcId(1));
        let mut h = sl_spec::History::<AbaSpec<u64>>::new();
        for _ in 0..OPS_PER_PROC {
            let v = rng.gen_range(10) as u64;
            let id = h.invoke(ProcId(0), AbaOp::DWrite(v));
            AbaOps::dwrite(&mut w, v);
            h.respond(id, AbaResp::Ack);
            let id = h.invoke(ProcId(1), AbaOp::DRead);
            let (val, flag) = AbaOps::dread(&mut r);
            h.respond(id, AbaResp::Value(val, flag));
        }
        assert!(harness::linearizable(&AbaSpec::<u64>::new(N), &h));

        // Universal counter over each substrate family.
        let uni = b.universal(CounterType);
        let mut u0 = SharedObject::<NativeMem>::handle(&uni, ProcId(0));
        let mut u1 = SharedObject::<NativeMem>::handle(&uni, ProcId(1));
        let mut total = 0u64;
        for _ in 0..OPS_PER_PROC {
            if rng.gen_bool(0.5) {
                UniversalOps::execute(&mut u0, CounterOp::Inc);
                total += 1;
            }
            assert_eq!(
                UniversalOps::execute(&mut u1, CounterOp::Read),
                CounterResp::Value(total)
            );
        }
    }
}

// ---------------------------------------------------------------------
// Simulator backend: the same families inside a SimWorld under a
// seeded random strong adversary.
// ---------------------------------------------------------------------

fn sim_snapshot_in<O>(world: &SimWorld, obj: &O, seed: u64) -> bool
where
    O: SharedObject<SimMem>,
    O::Handle: SnapshotOps<u64> + 'static,
{
    let log: EventLog<SnapshotSpec<u64>> = EventLog::new(world);
    let mut programs: Vec<Program> = Vec::new();
    for pid in 0..N {
        let mut h = obj.handle(ProcId(pid));
        let log = log.clone();
        programs.push(Box::new(move |ctx| {
            for i in 0..OPS_PER_PROC as u64 {
                ctx.pause();
                if (pid + i as usize).is_multiple_of(2) {
                    let id = log.invoke(ctx.proc_id(), SnapshotOp::Update(pid as u64 * 10 + i));
                    h.update(pid as u64 * 10 + i);
                    log.respond(id, SnapshotResp::Ack);
                } else {
                    let id = log.invoke(ctx.proc_id(), SnapshotOp::Scan);
                    let view = h.scan();
                    log.respond(id, SnapshotResp::View(view.into_vec()));
                }
            }
        }));
    }
    let mut sched = SeededRandom::new(seed);
    let outcome = world.run(programs, &mut sched, SIM_STEP_BUDGET);
    assert!(outcome.completed, "sim run exhausted its step budget");
    check_linearizable(&SnapshotSpec::<u64>::new(N), &log.history()).is_some()
}

fn sim_counter_in<O>(world: &SimWorld, obj: &O, seed: u64) -> bool
where
    O: SharedObject<SimMem>,
    O::Handle: CounterOps + 'static,
{
    let log: EventLog<CounterSpec> = EventLog::new(world);
    let mut programs: Vec<Program> = Vec::new();
    for pid in 0..N {
        let mut h = obj.handle(ProcId(pid));
        let log = log.clone();
        programs.push(Box::new(move |ctx| {
            for i in 0..OPS_PER_PROC as u64 {
                ctx.pause();
                if (pid + i as usize).is_multiple_of(2) {
                    let id = log.invoke(ctx.proc_id(), CounterOp::Inc);
                    h.inc();
                    log.respond(id, CounterResp::Ack);
                } else {
                    let id = log.invoke(ctx.proc_id(), CounterOp::Read);
                    let v = h.read();
                    log.respond(id, CounterResp::Value(v));
                }
            }
        }));
    }
    let mut sched = SeededRandom::new(seed);
    let outcome = world.run(programs, &mut sched, SIM_STEP_BUDGET);
    assert!(outcome.completed, "sim run exhausted its step budget");
    check_linearizable(&CounterSpec, &log.history()).is_some()
}

fn sim_max_in<O>(world: &SimWorld, obj: &O, seed: u64) -> bool
where
    O: SharedObject<SimMem>,
    O::Handle: MaxRegisterOps + 'static,
{
    let log: EventLog<MaxRegisterSpec> = EventLog::new(world);
    let mut programs: Vec<Program> = Vec::new();
    for pid in 0..N {
        let mut h = obj.handle(ProcId(pid));
        let log = log.clone();
        programs.push(Box::new(move |ctx| {
            for i in 0..OPS_PER_PROC as u64 {
                ctx.pause();
                if (pid + i as usize).is_multiple_of(2) {
                    let v = pid as u64 * 7 + i + 1;
                    let id = log.invoke(ctx.proc_id(), MaxRegisterOp::MaxWrite(v));
                    h.max_write(v);
                    log.respond(id, MaxRegisterResp::Ack);
                } else {
                    let id = log.invoke(ctx.proc_id(), MaxRegisterOp::MaxRead);
                    let v = h.max_read();
                    log.respond(id, MaxRegisterResp::Value(v));
                }
            }
        }));
    }
    let mut sched = SeededRandom::new(seed);
    let outcome = world.run(programs, &mut sched, SIM_STEP_BUDGET);
    assert!(outcome.completed, "sim run exhausted its step budget");
    check_linearizable(&MaxRegisterSpec, &log.history()).is_some()
}

fn sim_aba_in<O>(world: &SimWorld, obj: &O, seed: u64) -> bool
where
    O: SharedObject<SimMem>,
    O::Handle: AbaOps<u64> + 'static,
{
    let log: EventLog<AbaSpec<u64>> = EventLog::new(world);
    let mut programs: Vec<Program> = Vec::new();
    for pid in 0..N {
        let mut h = obj.handle(ProcId(pid));
        let log = log.clone();
        programs.push(Box::new(move |ctx| {
            for i in 0..OPS_PER_PROC as u64 {
                ctx.pause();
                if pid == 0 {
                    let id = log.invoke(ctx.proc_id(), AbaOp::DWrite(i));
                    h.dwrite(i);
                    log.respond(id, AbaResp::Ack);
                } else {
                    let id = log.invoke(ctx.proc_id(), AbaOp::DRead);
                    let (v, flag) = h.dread();
                    log.respond(id, AbaResp::Value(v, flag));
                }
            }
        }));
    }
    let mut sched = SeededRandom::new(seed);
    let outcome = world.run(programs, &mut sched, SIM_STEP_BUDGET);
    assert!(outcome.completed, "sim run exhausted its step budget");
    check_linearizable(&AbaSpec::<u64>::new(N), &log.history()).is_some()
}

fn sim_universal_in<O>(world: &SimWorld, obj: &O, seed: u64) -> bool
where
    O: SharedObject<SimMem>,
    O::Handle: UniversalOps<CounterType> + 'static,
{
    let log: EventLog<SimpleSpec<CounterType>> = EventLog::new(world);
    let mut programs: Vec<Program> = Vec::new();
    for pid in 0..N {
        let mut h = obj.handle(ProcId(pid));
        let log = log.clone();
        programs.push(Box::new(move |ctx| {
            for i in 0..OPS_PER_PROC as u64 {
                ctx.pause();
                let op = if (pid + i as usize).is_multiple_of(2) {
                    CounterOp::Inc
                } else {
                    CounterOp::Read
                };
                let id = log.invoke(ctx.proc_id(), op);
                let resp = h.execute(op);
                log.respond(id, resp);
            }
        }));
    }
    let mut sched = SeededRandom::new(seed);
    let outcome = world.run(programs, &mut sched, SIM_STEP_BUDGET);
    assert!(outcome.completed, "sim run exhausted its step budget");
    check_linearizable(&SimpleSpec(CounterType), &log.history()).is_some()
}

/// A fresh world + builder for each sim case (a `SimWorld` is
/// single-shot).
fn sim_builder() -> (SimWorld, ObjectBuilder<SimMem>) {
    let world = SimWorld::new(N);
    let mem = world.mem();
    let builder = ObjectBuilder::on(&mem).processes(N);
    (world, builder)
}

#[test]
fn sim_snapshots_all_substrates_roundtrip() {
    let mut rng = SmallRng::new(0x5EED_1001);
    for _ in 0..3 {
        let seed = rng.next_u64();
        let (world, b) = sim_builder();
        assert!(sim_snapshot_in(&world, &b.snapshot::<u64>(), seed));
        let (world, b) = sim_builder();
        assert!(sim_snapshot_in(&world, &b.afek().snapshot::<u64>(), seed));
        let (world, b) = sim_builder();
        assert!(sim_snapshot_in(
            &world,
            &b.bounded_handshake().snapshot::<u64>(),
            seed
        ));
        let (world, b) = sim_builder();
        assert!(sim_snapshot_in(
            &world,
            &b.versioned().snapshot::<u64>(),
            seed
        ));
        let (world, b) = sim_builder();
        assert!(sim_snapshot_in(
            &world,
            &b.atomic_r().snapshot::<u64>(),
            seed
        ));
        let (world, b) = sim_builder();
        assert!(sim_snapshot_in(&world, &b.lin_snapshot::<u64>(), seed));
    }
}

#[test]
fn sim_derived_aba_and_universal_roundtrip() {
    let mut rng = SmallRng::new(0x5EED_1002);
    for _ in 0..3 {
        let seed = rng.next_u64();
        let (world, b) = sim_builder();
        assert!(sim_counter_in(&world, &b.counter(), seed));
        let (world, b) = sim_builder();
        assert!(sim_max_in(&world, &b.max_register(), seed));
        let (world, b) = sim_builder();
        assert!(sim_max_in(&world, &b.trie_max_register(64), seed));
        let (world, b) = sim_builder();
        assert!(sim_aba_in(&world, &b.aba_register::<u64>(), seed));
        let (world, b) = sim_builder();
        assert!(sim_aba_in(&world, &b.lin_aba_register::<u64>(), seed));
        let (world, b) = sim_builder();
        assert!(sim_aba_in(&world, &b.atomic_aba_register::<u64>(), seed));
        let (world, b) = sim_builder();
        assert!(sim_universal_in(&world, &b.universal(CounterType), seed));
    }
}
