//! The schedule fuzzer over the full builder matrix: every object
//! family × substrate × backend gets seeded-random workloads and
//! adversary schedules, with histories round-tripped through the
//! linearizability checker and — for `Strong`-marked objects — schedule
//! trees through the strong checker. A deliberately broken object at
//! the end proves the fuzzer finds violations and the shrinker
//! minimises them.
//!
//! Budgets here are tier-1-sized; the `sim-deep` CI job rescales via
//! `SL_FUZZ_*` environment variables (see `FuzzConfig::from_env`).

use sl_api::fuzz::{fuzz_native_family, fuzz_sim_family, FailureKind, FuzzConfig};
use sl_api::sim::DriveOps;
use sl_api::{ObjectBuilder, ObjectHandle, SharedObject, SnapshotOps};
use sl_mem::{Mem, NativeMem, Register, SmallRng};
use sl_spec::types::{AbaSpec, CounterSpec, MaxRegisterSpec, SnapshotSpec};
use sl_spec::{AbaOp, CounterOp, CounterResp, MaxRegisterOp, ProcId, SnapshotOp};

fn cfg() -> FuzzConfig {
    let mut cfg = FuzzConfig::from_env();
    // Tier-1 budget unless the environment rescales.
    if std::env::var("SL_FUZZ_WORKLOADS").is_err() {
        cfg.workloads = 4;
    }
    if std::env::var("SL_FUZZ_SCHEDULES").is_err() {
        cfg.schedules_per_workload = 3;
    }
    cfg
}

fn gen_snapshot_op(rng: &mut SmallRng, p: ProcId) -> SnapshotOp<u64> {
    if rng.gen_bool(0.5) {
        SnapshotOp::Update(p.index() as u64 * 100 + rng.gen_range(10) as u64)
    } else {
        SnapshotOp::Scan
    }
}

fn gen_counter_op(rng: &mut SmallRng, _p: ProcId) -> CounterOp {
    if rng.gen_bool(0.5) {
        CounterOp::Inc
    } else {
        CounterOp::Read
    }
}

fn gen_max_op(rng: &mut SmallRng, _p: ProcId) -> MaxRegisterOp {
    if rng.gen_bool(0.5) {
        MaxRegisterOp::MaxWrite(rng.gen_range(4) as u64)
    } else {
        MaxRegisterOp::MaxRead
    }
}

fn gen_aba_op(rng: &mut SmallRng, p: ProcId) -> AbaOp<u64> {
    if rng.gen_bool(0.5) {
        AbaOp::DWrite(p.index() as u64 * 10 + rng.gen_range(4) as u64)
    } else {
        AbaOp::DRead
    }
}

/// One macro arm per substrate so the substrate stays in the builder's
/// type (that is the point of the typestate builder).
macro_rules! fuzz_snapshot_substrates {
    ($($name:ident => $select:ident),* $(,)?) => {
        $(
            #[test]
            fn $name() {
                let cfg = cfg();
                let n = cfg.procs;
                fuzz_sim_family(
                    concat!("snapshot/", stringify!($select), "/sim"),
                    true,
                    |mem: &sl_sim::SimMem| {
                        ObjectBuilder::on(mem).processes(n).$select().snapshot::<u64>()
                    },
                    |h, op| h.drive(op),
                    gen_snapshot_op,
                    &SnapshotSpec::<u64>::new(n),
                    &cfg,
                )
                .assert_clean();
                fuzz_sim_family(
                    concat!("counter/", stringify!($select), "/sim"),
                    true,
                    |mem: &sl_sim::SimMem| {
                        ObjectBuilder::on(mem).processes(n).$select().counter()
                    },
                    |h, op| h.drive(op),
                    gen_counter_op,
                    &CounterSpec,
                    &cfg,
                )
                .assert_clean();
                fuzz_sim_family(
                    concat!("max_register/", stringify!($select), "/sim"),
                    true,
                    |mem: &sl_sim::SimMem| {
                        ObjectBuilder::on(mem).processes(n).$select().max_register()
                    },
                    |h, op| h.drive(op),
                    gen_max_op,
                    &MaxRegisterSpec,
                    &cfg,
                )
                .assert_clean();
                // Native backend: random sequential interleavings.
                fuzz_native_family(
                    concat!("snapshot/", stringify!($select), "/native"),
                    |mem: &NativeMem| {
                        ObjectBuilder::on(mem).processes(n).$select().snapshot::<u64>()
                    },
                    |h, op| h.drive(op),
                    gen_snapshot_op,
                    &SnapshotSpec::<u64>::new(n),
                    &cfg,
                )
                .assert_clean();
            }
        )*
    };
}

fuzz_snapshot_substrates! {
    fuzz_double_collect_substrate => double_collect,
    fuzz_afek_substrate => afek,
    fuzz_bounded_handshake_substrate => bounded_handshake,
    fuzz_versioned_substrate => versioned,
    fuzz_atomic_r_substrate => atomic_r,
}

#[test]
fn fuzz_aba_registers_both_algorithms() {
    let cfg = cfg();
    let n = cfg.procs;
    // Algorithm 2 (Theorem 1): strong — schedule trees included.
    fuzz_sim_family(
        "aba/algorithm2/sim",
        true,
        |mem: &sl_sim::SimMem| ObjectBuilder::on(mem).processes(n).aba_register::<u64>(),
        |h, op| h.drive(op),
        gen_aba_op,
        &AbaSpec::<u64>::new(n),
        &cfg,
    )
    .assert_clean();
    // Algorithm 1 (Observation 4): guarantee marker is Lin, so only
    // per-history linearizability is asserted — exactly what the type
    // system encodes (its schedule trees would legitimately fail the
    // strong checker).
    fuzz_sim_family(
        "aba/algorithm1/sim",
        false,
        |mem: &sl_sim::SimMem| {
            ObjectBuilder::on(mem)
                .processes(n)
                .lin_aba_register::<u64>()
        },
        |h, op| h.drive(op),
        gen_aba_op,
        &AbaSpec::<u64>::new(n),
        &cfg,
    )
    .assert_clean();
    fuzz_native_family(
        "aba/algorithm2/native",
        |mem: &NativeMem| ObjectBuilder::on(mem).processes(n).aba_register::<u64>(),
        |h, op| h.drive(op),
        gen_aba_op,
        &AbaSpec::<u64>::new(n),
        &cfg,
    )
    .assert_clean();
}

#[test]
fn fuzz_lin_substrates_and_trie() {
    let cfg = cfg();
    let n = cfg.procs;
    fuzz_sim_family(
        "lin_snapshot/double_collect/sim",
        false,
        |mem: &sl_sim::SimMem| ObjectBuilder::on(mem).processes(n).lin_snapshot::<u64>(),
        |h, op| h.drive(op),
        gen_snapshot_op,
        &SnapshotSpec::<u64>::new(n),
        &cfg,
    )
    .assert_clean();
    fuzz_sim_family(
        "trie_max_register/sim",
        false,
        |mem: &sl_sim::SimMem| ObjectBuilder::on(mem).processes(n).trie_max_register(4),
        |h, op| h.drive(op),
        gen_max_op,
        &MaxRegisterSpec,
        &cfg,
    )
    .assert_clean();
    fuzz_sim_family(
        "atomic_snapshot/sim",
        true,
        |mem: &sl_sim::SimMem| ObjectBuilder::on(mem).processes(n).atomic_snapshot::<u64>(),
        |h, op| h.drive(op),
        gen_snapshot_op,
        &SnapshotSpec::<u64>::new(n),
        &cfg,
    )
    .assert_clean();
}

#[test]
fn fuzz_universal_construction() {
    use sl_api::UniversalOps;
    use sl_universal::types::CounterType;
    let cfg = cfg();
    let n = cfg.procs;
    // The universal construction's ops belong to its SimpleType, so it
    // goes through the explicit-apply entry point.
    fuzz_sim_family(
        "universal/counter/sim",
        true,
        |mem: &sl_sim::SimMem| ObjectBuilder::on(mem).processes(n).universal(CounterType),
        |h, op: &CounterOp| -> CounterResp { UniversalOps::execute(h, *op) },
        gen_counter_op,
        &CounterSpec,
        &cfg,
    )
    .assert_clean();
}

// --- the planted bug ---------------------------------------------------

/// A deliberately broken snapshot: `scan` never reports component 0
/// unless process 0 is the scanner. Used to prove the fuzzer finds
/// violations and the shrinker minimises them.
#[derive(Clone)]
struct BrokenSnapshot<M: Mem> {
    regs: Vec<M::Reg<Option<u64>>>,
}

struct BrokenHandle<M: Mem> {
    p: ProcId,
    regs: Vec<M::Reg<Option<u64>>>,
}

impl<M: Mem> BrokenSnapshot<M> {
    fn new(mem: &M, n: usize) -> Self {
        BrokenSnapshot {
            regs: (0..n)
                .map(|i| mem.alloc(&format!("B.reg[{i}]"), None))
                .collect(),
        }
    }
}

impl<M: Mem> SharedObject<M> for BrokenSnapshot<M> {
    type Guarantee = sl_api::Lin;
    type Handle = BrokenHandle<M>;
    fn handle(&self, p: ProcId) -> BrokenHandle<M> {
        BrokenHandle {
            p,
            regs: self.regs.clone(),
        }
    }
    fn processes(&self) -> Option<usize> {
        Some(self.regs.len())
    }
}

impl<M: Mem> ObjectHandle for BrokenHandle<M> {
    fn proc(&self) -> ProcId {
        self.p
    }
}

impl<M: Mem> SnapshotOps<u64> for BrokenHandle<M> {
    fn update(&mut self, value: u64) {
        self.regs[self.p.index()].write(Some(value));
    }
    fn scan(&mut self) -> sl_api::View<u64> {
        let components = self
            .regs
            .iter()
            .enumerate()
            .map(|(i, r)| {
                if i == 0 && self.p.index() != 0 {
                    None // the bug: p0's component is dropped
                } else {
                    r.read()
                }
            })
            .collect();
        sl_api::View::new(components)
    }
}

#[test]
fn fuzzer_finds_and_shrinks_planted_bug() {
    let cfg = FuzzConfig {
        workloads: 32,
        procs: 2,
        ops_per_proc: 3,
        ..FuzzConfig::default()
    };
    let report = fuzz_sim_family(
        "broken_snapshot/sim",
        false,
        |mem: &sl_sim::SimMem| BrokenSnapshot::new(mem, 2),
        |h, op| h.drive(op),
        |rng, p| {
            if p.index() == 0 || rng.gen_bool(0.3) {
                SnapshotOp::Update(p.index() as u64 + 1)
            } else {
                SnapshotOp::Scan
            }
        },
        &SnapshotSpec::<u64>::new(2),
        &cfg,
    );
    let failure = report
        .failure
        .clone()
        .expect("the planted bug must be found");
    assert_eq!(failure.kind, FailureKind::Linearizability);
    // The minimal counterexample is one completed update by p0 plus one
    // scan by p1: the shrinker must get down to exactly two operations.
    let shrunk_ops: usize = failure.workload.iter().map(Vec::len).sum();
    assert_eq!(
        shrunk_ops,
        2,
        "locally minimal counterexample: {}",
        report.render()
    );
    assert!(
        failure.ops_shrink.0 > failure.ops_shrink.1,
        "shrinker must have removed operations"
    );
    // The rendered trace points into this test file (allocation sites).
    assert!(
        failure.trace.iter().any(|l| l.contains("fuzz_matrix.rs")),
        "trace lines carry allocation sites: {:#?}",
        failure.trace
    );
}

/// Guarantee-marker sanity: Algorithm 1 is `Lin` in the type system,
/// and the schedule-tree check the fuzzer would run for `Strong`
/// objects does reject it on the right family (the Observation 4
/// separation, found by fuzzing rather than construction) — kept as a
/// deep-mode test because it needs enough random schedules to hit the
/// family.
#[test]
#[ignore = "deep: run with --ignored (sim-deep CI job)"]
fn fuzzing_algorithm1_as_strong_finds_observation4() {
    let mut cfg = FuzzConfig::from_env();
    cfg.workloads = 200;
    cfg.schedules_per_workload = 8;
    cfg.ops_per_proc = 4;
    let report = fuzz_sim_family(
        "aba/algorithm1-as-strong/sim",
        true, // deliberately run the strong checker on a Lin object
        |mem: &sl_sim::SimMem| {
            ObjectBuilder::on(mem)
                .processes(2)
                .lin_aba_register::<u64>()
        },
        |h, op| h.drive(op),
        |rng, p| {
            if p.index() == 0 {
                AbaOp::DWrite(7)
            } else if rng.gen_bool(0.8) {
                AbaOp::DRead
            } else {
                AbaOp::DWrite(9)
            }
        },
        &AbaSpec::<u64>::new(2),
        &cfg,
    );
    if let Some(f) = &report.failure {
        assert_eq!(f.kind, FailureKind::StrongLinearizability);
        assert!(
            f.schedules.len() >= 2,
            "a strong violation needs a branching family"
        );
    }
    // Not finding it within budget is acceptable (random schedules);
    // the obs4 explorer test finds it deterministically.
}
