//! End-to-end crash-resilience gate for the object-DAG pipeline: an
//! exploration interrupted by schedule budgets and resumed from its
//! checkpoint must union to the *bit-identical* result of the
//! uninterrupted run — same merged-DAG structural hash, same strong-lin
//! verdict and conflict depth, same exploration counters — at every
//! worker count. The partial rounds' shards and the resumed rounds'
//! shards overlap on abandoned subtrees; hash-consing in
//! [`TreeDag::merge`] dedupes the overlap, so the union is exact.

use sl_api::sim::{explore_object_dag, explore_object_dag_resumable, SimExplore};
use sl_api::ObjectBuilder;
use sl_check::{check_strongly_linearizable_dag, TreeDag};
use sl_sim::{CheckpointPolicy, CheckpointStore, PruneMode, ResumeSession};
use sl_spec::types::AbaSpec;
use sl_spec::AbaOp;

type ASpec = AbaSpec<u64>;

fn resume_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sl-api-resume-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn interrupted_dag_exploration_unions_to_the_uninterrupted_result() {
    let workload = [
        vec![AbaOp::DWrite(9), AbaOp::DWrite(10)],
        vec![AbaOp::DRead],
    ];
    let factory = |mem: &sl_sim::SimMem| ObjectBuilder::on(mem).processes(2).aba_register::<u64>();
    let spec = ASpec::new(2);

    for workers in [1usize, 2, 4] {
        let cfg = SimExplore {
            mode: PruneMode::OptimalDpor,
            workers,
            ..SimExplore::default()
        };
        let reference = explore_object_dag::<ASpec, _, _>(factory, &workload, &cfg);
        assert!(reference.outcome.exhausted, "{workers} workers");
        let ref_report = reference.check_strong(&spec);

        // Re-run the same exploration in small schedule-budget chunks,
        // each round draining to a checkpoint and the next resuming it.
        let dir = resume_dir(&format!("dag-{workers}"));
        let store = CheckpointStore::new(&dir, "aba-2x2");
        let mut shards: Vec<TreeDag<ASpec>> = Vec::new();
        let mut rounds = 0usize;
        let last = loop {
            rounds += 1;
            assert!(rounds < 100, "resume loop failed to converge");
            let session = ResumeSession {
                policy: CheckpointPolicy {
                    every_replays: 3,
                    // The budget counts the union of resumed base and
                    // live schedules, so a fixed increment per round
                    // drains each round after ~120 fresh replays (the
                    // workload explores ~1.1k schedules in total).
                    max_schedules: Some(120 * rounds as u64),
                    deadline: None,
                },
                ..ResumeSession::new(&store)
            };
            let round =
                explore_object_dag_resumable::<ASpec, _, _>(factory, &workload, &cfg, &session);
            let drained = round.outcome.drained;
            shards.push(round.dag);
            if !drained {
                break round.outcome;
            }
            assert!(round.outcome.partial, "a drained outcome is partial");
            assert!(store.exists(), "a drained round leaves its checkpoint");
        };

        assert!(rounds > 1, "the budget must actually interrupt the run");
        assert!(last.exhausted && !last.partial, "{workers} workers");
        assert!(!store.exists(), "a finished run deletes its checkpoint");
        assert_eq!(last.runs, reference.outcome.runs, "{workers} workers");
        assert_eq!(last.cut_runs, reference.outcome.cut_runs);
        assert_eq!(last.pruned, reference.outcome.pruned);

        let union = TreeDag::merge(shards);
        assert_eq!(
            union.structural_hash(),
            reference.dag.structural_hash(),
            "merged DAG union must be bit-identical at {workers} workers"
        );
        let report = check_strongly_linearizable_dag(&spec, &union);
        assert_eq!(report.holds, ref_report.holds);
        assert_eq!(report.conflict_depth, ref_report.conflict_depth);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
