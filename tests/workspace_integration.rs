//! Cross-crate integration tests exercising the full public API through
//! the umbrella crate, the way a downstream user would.

use strongly_linearizable::check::{check_linearizable, check_strongly_linearizable, HistoryTree};
use strongly_linearizable::core::aba::{AbaHandle, AbaRegister, AwAbaRegister, SlAbaRegister};
use strongly_linearizable::core::{
    BoundedMaxRegister, SlCounter, SlSnapshot, SnapshotHandle, SnapshotMaxRegister,
    SnapshotObject, VersionedSlSnapshot,
};
use strongly_linearizable::mem::NativeMem;
use strongly_linearizable::prelude::*;
use strongly_linearizable::sim::{EventLog, Program, SeededRandom, SimWorld};
use strongly_linearizable::spec::types::SnapshotSpec;
use strongly_linearizable::spec::{CounterOp, CounterResp, SnapshotOp, SnapshotResp};
use strongly_linearizable::universal::types::CounterType;
use strongly_linearizable::universal::{SimpleSpec, Universal};

#[test]
fn full_stack_native_smoke() {
    let mem = NativeMem::new();
    let n = 4;

    // Theorem 2 object.
    let snap = SlSnapshot::with_double_collect(&mem, n);
    crossbeam::scope(|s| {
        for p in 0..n {
            let snap = snap.clone();
            s.spawn(move |_| {
                let mut h = snap.handle(ProcId(p));
                for i in 0..50u64 {
                    h.update(i);
                    assert_eq!(h.scan()[p], Some(i));
                }
            });
        }
    })
    .unwrap();

    // §4.5 derived objects.
    let counter = SlCounter::new(SlSnapshot::with_double_collect(&mem, n));
    let maxreg = SnapshotMaxRegister::new(SlSnapshot::with_double_collect(&mem, n));
    crossbeam::scope(|s| {
        for p in 0..n {
            let counter = counter.clone();
            let maxreg = maxreg.clone();
            s.spawn(move |_| {
                let mut c = counter.handle(ProcId(p));
                let mut m = maxreg.handle(ProcId(p));
                for i in 0..50 {
                    c.inc();
                    m.max_write(p as u64 * 100 + i);
                }
            });
        }
    })
    .unwrap();
    assert_eq!(counter.handle(ProcId(0)).read(), 200);
    assert_eq!(maxreg.handle(ProcId(0)).max_read(), 349);

    // §4.1 baseline behaves identically (but grows).
    let versioned: VersionedSlSnapshot<u64, _> = VersionedSlSnapshot::new(&mem, 2);
    let mut vh = versioned.handle(ProcId(0));
    vh.update(1);
    assert_eq!(vh.scan(), vec![Some(1), None]);
    assert!(versioned.space_cells() > 0);

    // §4.1 bounded max-register.
    let bm = BoundedMaxRegister::new(&mem, 256);
    bm.max_write(200);
    assert_eq!(bm.max_read(), 200);
}

#[test]
fn simulated_histories_check_out_end_to_end() {
    // Drive the Theorem-2 snapshot in the simulator through the umbrella
    // crate and check linearizability of the recorded history.
    let n = 3;
    let world = SimWorld::new(n);
    let mem = world.mem();
    let snap = SlSnapshot::with_double_collect(&mem, n);
    let log: EventLog<SnapshotSpec<u64>> = EventLog::new(&world);
    let mut programs: Vec<Program> = Vec::new();
    for pid in 0..n {
        let mut h = snap.handle(ProcId(pid));
        let log = log.clone();
        programs.push(Box::new(move |ctx| {
            let id = log.invoke(ctx.proc_id(), SnapshotOp::Update(pid as u64));
            h.update(pid as u64);
            log.respond(id, SnapshotResp::Ack);
            let id = log.invoke(ctx.proc_id(), SnapshotOp::Scan);
            let v = h.scan();
            log.respond(id, SnapshotResp::View(v));
        }));
    }
    let mut sched = SeededRandom::new(99);
    let outcome = world.run(programs, &mut sched, 1_000_000);
    assert!(outcome.completed);
    assert!(check_linearizable(&SnapshotSpec::<u64>::new(n), &log.history()).is_some());
}

#[test]
fn observation4_separation_via_umbrella() {
    // The headline result, via the public API: Algorithm 1 and
    // Algorithm 2 run the same adversarial family; only Algorithm 2
    // admits a strong linearization function.
    use strongly_linearizable::sim::Scripted;
    use strongly_linearizable::spec::types::AbaSpec;
    use strongly_linearizable::spec::{AbaOp, AbaResp};

    type Spec = AbaSpec<u64>;

    fn family<R: AbaRegister<u64>>(
        make: impl Fn(&strongly_linearizable::sim::SimMem, usize) -> R,
        script: &[usize],
    ) -> Vec<strongly_linearizable::check::TreeStep<Spec>> {
        let world = SimWorld::new(2);
        let mem = world.mem();
        let reg = make(&mem, 2);
        let log: EventLog<Spec> = EventLog::new(&world);
        let mut w = reg.handle(ProcId(0));
        let wl = log.clone();
        let mut r = reg.handle(ProcId(1));
        let rl = log.clone();
        let programs: Vec<Program> = vec![
            Box::new(move |ctx| {
                for _ in 0..5 {
                    ctx.pause();
                    let id = wl.invoke(ctx.proc_id(), AbaOp::DWrite(7));
                    w.dwrite(7);
                    wl.respond(id, AbaResp::Ack);
                }
            }),
            Box::new(move |ctx| {
                for _ in 0..2 {
                    ctx.pause();
                    let id = rl.invoke(ctx.proc_id(), AbaOp::DRead);
                    let (v, a) = r.dread();
                    rl.respond(id, AbaResp::Value(v, a));
                }
            }),
        ];
        let mut sched = Scripted::new(script.to_vec());
        let outcome = world.run(programs, &mut sched, 10_000);
        log.transcript(&outcome)
    }

    let s = vec![0, 0, 0, 1, 1, 1, 0, 0, 0];
    let mut t1 = s.clone();
    t1.extend([0; 9]);
    t1.extend([1; 24]);
    let mut t2 = s;
    t2.extend([1; 24]);

    let spec = Spec::new(2);
    let aw_tree = HistoryTree::from_transcripts(&[
        family(AwAbaRegister::<u64, _>::new, &t1),
        family(AwAbaRegister::<u64, _>::new, &t2),
    ]);
    assert!(!check_strongly_linearizable(&spec, &aw_tree).holds);

    let sl_tree = HistoryTree::from_transcripts(&[
        family(SlAbaRegister::<u64, _>::new, &t1),
        family(SlAbaRegister::<u64, _>::new, &t2),
    ]);
    assert!(check_strongly_linearizable(&spec, &sl_tree).holds);
}

#[test]
fn universal_counter_over_theorem2_snapshot() {
    let mem = NativeMem::new();
    let counter = Universal::new(CounterType, SlSnapshot::with_double_collect(&mem, 2), 2);
    let mut h0 = counter.handle(ProcId(0));
    let mut h1 = counter.handle(ProcId(1));
    h0.execute(CounterOp::Inc);
    h1.execute(CounterOp::Inc);
    assert_eq!(h0.execute(CounterOp::Read), CounterResp::Value(2));

    // And its histories check against the simple-type spec.
    let _spec = SimpleSpec(CounterType);
}
