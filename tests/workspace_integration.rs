//! Cross-crate integration tests exercising the full public API through
//! the umbrella crate, the way a downstream user would — everything
//! goes through the unified `sl-api` surface.

use strongly_linearizable::check::{check_linearizable, check_strongly_linearizable, HistoryTree};
use strongly_linearizable::prelude::*;
use strongly_linearizable::sim::{Program, Scripted, SimMem};
use strongly_linearizable::spec::types::SnapshotSpec;
use strongly_linearizable::spec::{CounterOp, CounterResp, SnapshotOp, SnapshotResp};
use strongly_linearizable::universal::types::CounterType;
use strongly_linearizable::universal::SimpleSpec;

#[test]
fn full_stack_native_smoke() {
    let mem = NativeMem::new();
    let n = 4;
    let builder = ObjectBuilder::on(&mem).processes(n);

    // Theorem 2 object.
    let snap = builder.snapshot::<u64>();
    std::thread::scope(|s| {
        for p in 0..n {
            let snap = snap.clone();
            s.spawn(move || {
                let mut h = snap.handle(ProcId(p));
                for i in 0..50u64 {
                    h.update(i);
                    assert_eq!(h.scan()[p], Some(i));
                }
            });
        }
    });

    // §4.5 derived objects; the guarantee propagates (composability).
    let counter = builder.counter();
    let maxreg = builder.max_register();
    std::thread::scope(|s| {
        for p in 0..n {
            let counter = counter.clone();
            let maxreg = maxreg.clone();
            s.spawn(move || {
                let mut c = counter.handle(ProcId(p));
                let mut m = maxreg.handle(ProcId(p));
                for i in 0..50 {
                    c.inc();
                    m.max_write(p as u64 * 100 + i);
                }
            });
        }
    });
    assert_eq!(counter.handle(ProcId(0)).read(), 200);
    assert_eq!(maxreg.handle(ProcId(0)).max_read(), 349);

    // §4.1 baseline behaves identically (but grows), and its scans
    // carry versions.
    let versioned = ObjectBuilder::on(&mem)
        .processes(2)
        .versioned()
        .snapshot::<u64>();
    let mut vh = SharedObject::<NativeMem>::handle(&versioned, ProcId(0));
    vh.update(1);
    let view = vh.scan_versioned();
    assert_eq!(view, vec![Some(1), None]);
    assert!(view.version().is_some(), "§4.1 views are versioned");
    assert!(versioned.space_cells() > 0);

    // §4.1 bounded trie max-register — linearizable only, and its type
    // says so.
    fn lin_only<O: SharedObject<NativeMem, Guarantee = Lin>>(_: &O) {}
    let bm = builder.trie_max_register(256);
    lin_only(&bm);
    let mut bmh = SharedObject::<NativeMem>::handle(&bm, ProcId(0));
    bmh.max_write(200);
    assert_eq!(bmh.max_read(), 200);
}

#[test]
fn guarantee_markers_gate_strong_only_code() {
    fn strong_only<M: Mem, O: SharedObject<M, Guarantee = Strong>>(_: &O) {}
    let mem = NativeMem::new();
    let b = ObjectBuilder::on(&mem).processes(2);
    strong_only(&b.snapshot::<u64>());
    strong_only(&b.aba_register::<u64>());
    strong_only(&b.counter());
    strong_only(&b.universal(CounterType));
    // And the negative direction is a compile error, verified by the
    // `compile_fail` doctest on `sl_api::Guarantee`'s module.
}

#[test]
fn simulated_histories_check_out_end_to_end() {
    // Drive the Theorem-2 snapshot in the simulator through the umbrella
    // crate and check linearizability of the recorded history.
    let n = 3;
    let world = SimWorld::new(n);
    let mem = world.mem();
    let snap = ObjectBuilder::on(&mem).processes(n).snapshot::<u64>();
    let log: EventLog<SnapshotSpec<u64>> = EventLog::new(&world);
    let mut programs: Vec<Program> = Vec::new();
    for pid in 0..n {
        let mut h = snap.handle(ProcId(pid));
        let log = log.clone();
        programs.push(Box::new(move |ctx| {
            let id = log.invoke(ctx.proc_id(), SnapshotOp::Update(pid as u64));
            h.update(pid as u64);
            log.respond(id, SnapshotResp::Ack);
            let id = log.invoke(ctx.proc_id(), SnapshotOp::Scan);
            // (Inherent `scan` returns the raw vector; the unified
            // `SnapshotOps::scan` returns a typed `View`.)
            let v = SnapshotOps::scan(&mut h);
            log.respond(id, SnapshotResp::View(v.into_vec()));
        }));
    }
    let mut sched = SeededRandom::new(99);
    let outcome = world.run(programs, &mut sched, 1_000_000);
    assert!(outcome.completed);
    assert!(check_linearizable(&SnapshotSpec::<u64>::new(n), &log.history()).is_some());
}

#[test]
fn observation4_separation_via_umbrella() {
    // The headline result, via the public API: Algorithm 1 and
    // Algorithm 2 run the same adversarial family; only Algorithm 2
    // admits a strong linearization function. The two are built by the
    // same builder but carry different guarantee types.
    use strongly_linearizable::spec::types::AbaSpec;
    use strongly_linearizable::spec::{AbaOp, AbaResp};

    type Spec = AbaSpec<u64>;

    fn family<O>(
        make: impl Fn(&ObjectBuilder<SimMem>) -> O,
        script: &[usize],
    ) -> Vec<strongly_linearizable::check::TreeStep<Spec>>
    where
        O: SharedObject<SimMem>,
        O::Handle: AbaOps<u64> + 'static,
    {
        let world = SimWorld::new(2);
        let mem = world.mem();
        let reg = make(&ObjectBuilder::on(&mem).processes(2));
        let log: EventLog<Spec> = EventLog::new(&world);
        let mut w = reg.handle(ProcId(0));
        let wl = log.clone();
        let mut r = reg.handle(ProcId(1));
        let rl = log.clone();
        let programs: Vec<Program> = vec![
            Box::new(move |ctx| {
                for _ in 0..5 {
                    ctx.pause();
                    let id = wl.invoke(ctx.proc_id(), AbaOp::DWrite(7));
                    w.dwrite(7);
                    wl.respond(id, AbaResp::Ack);
                }
            }),
            Box::new(move |ctx| {
                for _ in 0..2 {
                    ctx.pause();
                    let id = rl.invoke(ctx.proc_id(), AbaOp::DRead);
                    let (v, a) = r.dread();
                    rl.respond(id, AbaResp::Value(v, a));
                }
            }),
        ];
        let mut sched = Scripted::new(script.to_vec());
        let outcome = world.run(programs, &mut sched, 10_000);
        log.transcript(&outcome)
    }

    let s = vec![0, 0, 0, 1, 1, 1, 0, 0, 0];
    let mut t1 = s.clone();
    t1.extend([0; 9]);
    t1.extend([1; 24]);
    let mut t2 = s;
    t2.extend([1; 24]);

    let spec = Spec::new(2);
    let aw_tree = HistoryTree::from_transcripts(&[
        family(|b| b.lin_aba_register::<u64>(), &t1),
        family(|b| b.lin_aba_register::<u64>(), &t2),
    ]);
    assert!(!check_strongly_linearizable(&spec, &aw_tree).holds);

    let sl_tree = HistoryTree::from_transcripts(&[
        family(|b| b.aba_register::<u64>(), &t1),
        family(|b| b.aba_register::<u64>(), &t2),
    ]);
    assert!(check_strongly_linearizable(&spec, &sl_tree).holds);
}

#[test]
fn universal_counter_over_theorem2_snapshot() {
    let mem = NativeMem::new();
    let counter = ObjectBuilder::on(&mem).processes(2).universal(CounterType);
    let mut h0 = counter.handle(ProcId(0));
    let mut h1 = counter.handle(ProcId(1));
    h0.execute(CounterOp::Inc);
    h1.execute(CounterOp::Inc);
    assert_eq!(h0.execute(CounterOp::Read), CounterResp::Value(2));

    // And its histories check against the simple-type spec.
    let _spec = SimpleSpec(CounterType);
}

#[test]
#[cfg(debug_assertions)] // the guard panics only in debug builds
fn duplicate_handle_guard_fires_through_the_umbrella() {
    let mem = NativeMem::new();
    let snap = ObjectBuilder::on(&mem).processes(2).snapshot::<u64>();
    let _h = snap.handle(ProcId(0));
    let dup = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _dup = snap.handle(ProcId(0));
    }));
    assert!(dup.is_err(), "second live handle for p0 must panic");
}

/// The rename shims of the `sl-api` transition are gone: substrate
/// code uses the current names (`SnapshotSubstrate`, `SeqView`)
/// directly, and consumer code goes through `sl_api` handles.
#[test]
fn renamed_entry_points_are_canonical() {
    use strongly_linearizable::snapshot::{DoubleCollectSnapshot, SnapshotSubstrate};

    let mem = NativeMem::new();
    fn substrate_style<S: SnapshotSubstrate<u64>>(snap: &S) {
        snap.update(ProcId(0), 9);
        assert_eq!(snap.scan(ProcId(1)), vec![Some(9), None]);
    }
    substrate_style(&DoubleCollectSnapshot::<u64, _>::new(&mem, 2));

    let _view: strongly_linearizable::core::SeqView<u64> = vec![None, Some((1, 1))];
}
